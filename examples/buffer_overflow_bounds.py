"""Full memory safety: the bounds-checking extension (§8).

Builds a program with both a temporal error (use-after-free) and a spatial
error (heap buffer overflow into an adjacent object) and shows which
configurations catch which:

* UAF-only Watchdog catches the temporal error but not the overflow,
* the bounds-extended configurations (fused single µop or separate µop)
  catch both — full memory safety.

Run with::

    python examples/buffer_overflow_bounds.py
"""

from repro import Machine, ProgramBuilder, WatchdogConfig


def overflow_program():
    """Write one element past the end of a 4-element array."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 32)              # int64 buffer[4]
        main.malloc("r2", 32)              # adjacent object holding a secret
        main.mov_imm("r8", 0x5EC2E7)
        main.store("r2", "r8", 0)
        main.mov_imm("r9", 0x41414141)
        for index in range(5):             # off-by-one: indexes 0..4
            main.store("r1", "r9", 8 * index)
        main.free("r1")
        main.free("r2")
    return builder.build()


def uaf_program():
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 32)
        main.mov("r2", "r1")
        main.free("r1")
        main.load("r3", "r2", 0)
    return builder.build()


CONFIGS = (
    ("baseline (no protection)", WatchdogConfig.disabled()),
    ("Watchdog UAF-only", WatchdogConfig.isa_assisted_uaf()),
    ("Watchdog + bounds (fused 1 uop)", WatchdogConfig.full_safety_fused()),
    ("Watchdog + bounds (2 uops)", WatchdogConfig.full_safety_two_uops()),
)


def main():
    programs = (("heap buffer overflow", overflow_program()),
                ("use-after-free", uaf_program()))
    for program_name, program in programs:
        print(f"=== {program_name} ===")
        for config_name, config in CONFIGS:
            result = Machine(config).run(program)
            verdict = (f"DETECTED ({result.violation_kind})" if result.detected
                       else "not detected")
            print(f"  {config_name:<34} {verdict}")
        print()


if __name__ == "__main__":
    main()
