"""Overhead study on the SPEC-like synthetic workloads.

A scaled-down version of the Figure 7 / Figure 9 / Figure 11 experiments:
picks a handful of benchmarks (or all twenty with ``--all``), times them under
the baseline and several Watchdog configurations on the out-of-order timing
model, and prints per-benchmark slowdowns plus geometric means.

Run with::

    python examples/spec_overhead_study.py              # 6 benchmarks, quick
    python examples/spec_overhead_study.py --all        # all twenty
"""

import argparse

from repro import Simulator, WatchdogConfig, benchmark_names
from repro.sim.stats import geometric_mean_overhead

QUICK_BENCHMARKS = ("gzip", "mcf", "gcc", "perl", "lbm", "hmmer")

CONFIGS = (
    ("conservative", WatchdogConfig.conservative_uaf()),
    ("isa-assisted", WatchdogConfig.isa_assisted_uaf()),
    ("no-lock-cache", WatchdogConfig.no_lock_cache()),
    ("bounds-2uop", WatchdogConfig.full_safety_two_uops()),
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true",
                        help="run all twenty SPEC-like benchmarks")
    parser.add_argument("--instructions", type=int, default=6000,
                        help="dynamic macro instructions per run")
    args = parser.parse_args()

    benchmarks = benchmark_names() if args.all else QUICK_BENCHMARKS
    simulator = Simulator()

    header = f"{'benchmark':<10}" + "".join(f"{name:>16}" for name, _ in CONFIGS)
    print(header)
    print("-" * len(header))

    overheads = {name: [] for name, _ in CONFIGS}
    for benchmark in benchmarks:
        baseline = simulator.run_benchmark(benchmark, WatchdogConfig.disabled(),
                                           instructions=args.instructions, seed=7)
        row = f"{benchmark:<10}"
        for name, config in CONFIGS:
            outcome = simulator.run_benchmark(benchmark, config,
                                              instructions=args.instructions, seed=7)
            overhead = outcome.cycles / baseline.cycles - 1.0
            overheads[name].append(overhead)
            row += f"{100 * overhead:>15.1f}%"
        print(row)

    print("-" * len(header))
    row = f"{'geo.mean':<10}"
    for name, _ in CONFIGS:
        row += f"{100 * geometric_mean_overhead(overheads[name]):>15.1f}%"
    print(row)
    print("\npaper geo-means: conservative 25%, ISA-assisted 15%, "
          "no lock cache 24%, bounds (2 uops) 24%")


if __name__ == "__main__":
    main()
