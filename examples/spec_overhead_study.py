"""Overhead study on the SPEC-like synthetic workloads.

A scaled-down version of the Figure 7 / Figure 9 / Figure 11 experiments,
driven through the sweep engine: the study is *declared* as an
:class:`ExperimentSpec` (benchmark × configuration grid), executed serially
or on a process pool, and — when caching is enabled — resolved instantly on
repeated runs.

Run with::

    python examples/spec_overhead_study.py               # 6 benchmarks, quick
    python examples/spec_overhead_study.py --all -j 4    # all twenty, 4 workers
    python examples/spec_overhead_study.py --cache-dir /tmp/repro-cache
"""

import argparse
import time

from repro import WatchdogConfig, benchmark_names
from repro.sim.cache import ResultCache
from repro.sim.engine import SweepEngine
from repro.sim.spec import ExperimentSettings, ExperimentSpec
from repro.sim.stats import geometric_mean_overhead

QUICK_BENCHMARKS = ("gzip", "mcf", "gcc", "perl", "lbm", "hmmer")

CONFIGS = {
    "conservative": WatchdogConfig.conservative_uaf(),
    "isa-assisted": WatchdogConfig.isa_assisted_uaf(),
    "no-lock-cache": WatchdogConfig.no_lock_cache(),
    "bounds-2uop": WatchdogConfig.full_safety_two_uops(),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true",
                        help="run all twenty SPEC-like benchmarks")
    parser.add_argument("--instructions", type=int, default=6000,
                        help="dynamic macro instructions per run")
    parser.add_argument("--workers", "-j", type=int, default=1,
                        help="worker processes (results identical to serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="enable the persistent result cache at this path")
    args = parser.parse_args()

    benchmarks = tuple(benchmark_names()) if args.all else QUICK_BENCHMARKS
    settings = ExperimentSettings(benchmarks=benchmarks,
                                  instructions=args.instructions, seed=7)
    spec = ExperimentSpec.build("overhead-study", CONFIGS, settings=settings)

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    engine = SweepEngine(workers=args.workers, cache=cache)

    started = time.perf_counter()
    cells = engine.run_spec(spec)
    elapsed = time.perf_counter() - started

    header = f"{'benchmark':<10}" + "".join(f"{name:>16}" for name in CONFIGS)
    print(header)
    print("-" * len(header))

    overheads = {name: [] for name in CONFIGS}
    for benchmark in benchmarks:
        baseline = cells[benchmark, "baseline"]
        row = f"{benchmark:<10}"
        for name in CONFIGS:
            overhead = cells[benchmark, name].overhead_vs(baseline)
            overheads[name].append(overhead)
            row += f"{100 * overhead:>15.1f}%"
        print(row)

    print("-" * len(header))
    row = f"{'geo.mean':<10}"
    for name in CONFIGS:
        row += f"{100 * geometric_mean_overhead(overheads[name]):>15.1f}%"
    print(row)
    print(f"\n{len(cells)} cells in {elapsed:.1f}s "
          f"({engine.simulated_cells} simulated, workers={engine.workers}"
          + (f", cache hits {cache.hits}" if cache else "") + ")")
    print("paper geo-means: conservative 25%, ISA-assisted 15%, "
          "no lock cache 24%, bounds (2 uops) 24%")


if __name__ == "__main__":
    main()
