"""Custom memory allocators and Watchdog (§7).

Programs that carve objects out of a larger region with their own allocator
get, by default, region-granularity checking: Watchdog only knows about the
big region's identifier, so a use-after-free of a *sub-object* inside a still
-live region goes unnoticed.  If the custom allocator is instrumented — i.e.
it calls into the runtime (``malloc``/``free``) per sub-object, or equivalently
issues ``setident``/``getident`` itself — the checking becomes exact.

This example builds both variants of the same pool-allocator bug and shows
that only the instrumented pool detects the dangling sub-object access.

Run with::

    python examples/custom_allocator_instrumentation.py
"""

from repro import Machine, ProgramBuilder, WatchdogConfig


def uninstrumented_pool_program():
    """A pool allocator that hands out 32-byte slots from one big malloc.

    Slot 0 is "freed" (only in the pool's own bookkeeping, which Watchdog
    cannot see) and then accessed again — the classic custom-allocator blind
    spot the paper describes in §7.
    """
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 256)           # the pool region
        main.mov("r2", "r1")             # slot 0 = pool + 0
        main.add_imm("r3", "r1", 32)     # slot 1 = pool + 32
        main.mov_imm("r8", 0x11)
        main.store("r2", "r8", 0)        # use slot 0
        # pool_free(slot 0): only flips a bit in the pool header (not modelled)
        main.mov_imm("r9", 0)
        main.store("r1", "r9", 248)
        main.load("r10", "r2", 0)        # dangling use of slot 0: NOT detected
        main.free("r1")
    return builder.build()


def instrumented_pool_program():
    """The same logic with the pool instrumented: each slot is a runtime
    allocation, so its identifier is invalidated when the slot is freed."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r2", 32)            # slot 0 (instrumented)
        main.malloc("r3", 32)            # slot 1 (instrumented)
        main.mov_imm("r8", 0x11)
        main.store("r2", "r8", 0)
        main.free("r2")                  # pool_free(slot 0) -> getident/invalidate
        main.load("r10", "r2", 0)        # dangling use of slot 0: DETECTED
        main.free("r3")
    return builder.build()


def main():
    config = WatchdogConfig.isa_assisted_uaf()
    for name, program in (("uninstrumented pool (region-granularity checking)",
                           uninstrumented_pool_program()),
                          ("instrumented pool (exact checking)",
                           instrumented_pool_program())):
        result = Machine(config).run(program)
        verdict = (f"DETECTED {result.violation_kind}" if result.detected
                   else "no violation reported")
        print(f"{name:<52} -> {verdict}")
    print("\nAs §7 explains: with an uninstrumented custom allocator Watchdog "
          "checks the enclosing region's allocation status; instrumenting the "
          "allocator restores exact per-object detection.")


if __name__ == "__main__":
    main()
