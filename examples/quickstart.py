"""Quickstart: detect the Figure 1 use-after-free bugs with Watchdog.

Builds the two motivating programs from the paper's Figure 1 — a heap
use-after-free through an aliased pointer and a stack use-after-free through
a published local address — and runs them on the functional machine with and
without Watchdog.

Run with::

    python examples/quickstart.py
"""

from repro import Machine, ProgramBuilder, WatchdogConfig


def heap_use_after_free():
    """Figure 1 (left): q aliases p, p is freed and reallocated, *q is read."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 8)           # p = malloc(8)
        main.mov("r2", "r1")           # q = p
        main.free("r1")                # free(p)
        main.malloc("r3", 8)           # r = malloc(8)  (reuses p's chunk)
        main.load("r4", "r2")          # ... = *q       (dangling!)
    return builder.build()


def stack_use_after_free():
    """Figure 1 (right): foo() publishes &a in a global; main dereferences it
    after foo's frame has been popped."""
    builder = ProgramBuilder()
    with builder.function("foo") as foo:
        foo.stack_alloc("r1", 8)       # int a;
        foo.global_addr("r2", 0)       # q (a global pointer slot)
        foo.store_ptr("r2", "r1")      # q = &a
        foo.ret()
    with builder.function("main") as main:
        main.call("foo")
        main.global_addr("r2", 0)
        main.load_ptr("r3", "r2")      # reload q
        main.load("r4", "r3")          # ... = *q       (stale stack address!)
    return builder.build()


def run(name, program):
    print(f"--- {name} ---")
    for label, config in (("unprotected baseline", WatchdogConfig.disabled()),
                          ("Watchdog (ISA-assisted)", WatchdogConfig.isa_assisted_uaf())):
        result = Machine(config).run(program)
        if result.detected:
            print(f"  {label:<26} DETECTED: {result.violation_kind} "
                  f"at address {result.violation.address:#x}")
        else:
            print(f"  {label:<26} completed silently "
                  f"({result.instructions_executed} instructions)")
    print()


def main():
    run("heap use-after-free (Figure 1, left)", heap_use_after_free())
    run("stack use-after-free (Figure 1, right)", stack_use_after_free())


if __name__ == "__main__":
    main()
