"""Use-after-free exploitation scenarios and how Watchdog stops them.

Replays the exploit scenarios from ``repro.workloads.attacks``: on the
unprotected baseline the attacker's planted value reaches the victim (the
essence of real CVE-class use-after-free exploits, §1); under Watchdog every
scenario is stopped by an identifier-check exception before the corrupted
value is consumed.

Run with::

    python examples/use_after_free_attack.py
"""

from repro import Machine, WatchdogConfig
from repro.isa.registers import parse_reg
from repro.workloads.attacks import ATTACKER_VALUE, all_attack_scenarios


def describe_baseline(scenario):
    result = Machine(WatchdogConfig.disabled()).run(scenario.program())
    observed = result.registers.read(parse_reg(scenario.observed_register))
    if result.detected:
        return "baseline unexpectedly detected the error"
    if observed == ATTACKER_VALUE:
        return (f"attack SUCCEEDS silently: victim read attacker value "
                f"{observed:#x}")
    return f"attack completed silently (victim read {observed:#x})"


def describe_watchdog(scenario):
    config = (WatchdogConfig.full_safety_two_uops() if scenario.requires_bounds
              else WatchdogConfig.isa_assisted_uaf())
    label = "Watchdog+bounds" if scenario.requires_bounds else "Watchdog"
    result = Machine(config).run(scenario.program())
    if result.detected:
        return f"{label} DETECTS it: {result.violation_kind}"
    return f"{label} missed it (unexpected)"


def main():
    for scenario in all_attack_scenarios():
        print(f"=== {scenario.name} ===")
        print(f"    {scenario.description}")
        print(f"    without protection : {describe_baseline(scenario)}")
        print(f"    with protection    : {describe_watchdog(scenario)}")
        print()


if __name__ == "__main__":
    main()
