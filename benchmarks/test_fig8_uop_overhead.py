"""Figure 8: µop overhead and breakdown.

Paper averages: total ≈44%; checks ≈29%, pointer loads ≈4%, pointer stores
≈2%, other (selects, frame management, allocator instrumentation) ≈9%.
"""

from benchmarks.helpers import report
from repro.experiments import fig8_uop_overhead as fig8


def test_fig8_uop_overhead(benchmark, sweep):
    result = benchmark.pedantic(fig8.run, kwargs={"sweep": sweep},
                                rounds=1, iterations=1)
    report(result, fig8.EXPECTED)

    total = result.summary["total_avg_percent"]
    checks = result.summary["checks_avg_percent"]
    loads = result.summary["pointer_loads_avg_percent"]
    stores = result.summary["pointer_stores_avg_percent"]
    other = result.summary["other_avg_percent"]
    # Shape: checks dominate the injected µops; pointer metadata stores are
    # rarer than pointer metadata loads; the total sits in the ~40% range.
    assert checks > other > loads > stores
    assert 30.0 <= total <= 60.0
    assert 20.0 <= checks <= 40.0
    # The breakdown must account for the whole overhead.
    assert abs(total - (checks + loads + stores + other)) < 1.0
