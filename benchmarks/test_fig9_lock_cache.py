"""Figure 9: performance with and without the lock location cache.

Paper geo-means: 15% with the 4KB lock location cache, 24% without it; the
lock cache misses less than once per 1000 instructions for 17 of the 20
benchmarks.
"""

from benchmarks.helpers import report
from repro.experiments import fig9_lock_cache as fig9


def test_fig9_lock_location_cache(benchmark, sweep):
    result = benchmark.pedantic(fig9.run, kwargs={"sweep": sweep},
                                rounds=1, iterations=1)
    report(result, fig9.EXPECTED)

    with_cache = result.summary["with-lock-cache_geomean_percent"]
    without_cache = result.summary["without-lock-cache_geomean_percent"]
    # Shape: removing the dedicated lock-location bandwidth makes checks
    # contend with program loads for the data-cache ports and costs several
    # additional points of overhead.
    assert without_cache > with_cache
    assert without_cache - with_cache >= 3.0
    # Lock location locality: the vast majority of benchmarks stay below one
    # lock-cache miss per 1000 µops (paper: 17 of 20 per 1000 instructions).
    assert result.summary["benchmarks_below_1_mpki"] >= 15
