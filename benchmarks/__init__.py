"""Benchmark harness package (see ``tests/__init__.py`` for why a package)."""
