"""Figure 11: integrating bounds checking (full memory safety).

Paper geo-means: Watchdog (UAF only) ≈15%, +bounds fused into the check µop
≈18%, +bounds as a separate µop ≈24%.
"""

from benchmarks.helpers import report
from repro.experiments import fig11_bounds_checking as fig11


def test_fig11_bounds_checking(benchmark, sweep):
    result = benchmark.pedantic(fig11.run, kwargs={"sweep": sweep},
                                rounds=1, iterations=1)
    report(result, fig11.EXPECTED)

    uaf_only = result.summary["watchdog_geomean_percent"]
    fused = result.summary["bounds_fused_geomean_percent"]
    two_uops = result.summary["bounds_two_uop_geomean_percent"]
    # Shape: full memory safety costs more than UAF-only checking; performing
    # the bound comparison in the existing check µop is cheaper than injecting
    # a second µop per memory access.
    assert uaf_only < two_uops
    assert fused <= two_uops
    assert fused >= uaf_only * 0.95
    assert two_uops < 60.0
