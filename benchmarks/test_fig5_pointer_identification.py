"""Figure 5: fraction of memory accesses classified as pointer operations.

Paper: conservative ≈31% average, ISA-assisted ≈18% average.
"""

from benchmarks.helpers import report
from repro.experiments import fig5_pointer_identification as fig5


def test_fig5_pointer_identification(benchmark, sweep):
    result = benchmark.pedantic(fig5.run, kwargs={"sweep": sweep},
                                rounds=1, iterations=1)
    report(result, fig5.EXPECTED)

    conservative = result.summary["conservative_avg_percent"]
    isa = result.summary["isa_assisted_avg_percent"]
    # Shape: ISA-assisted identification marks substantially fewer accesses,
    # and the averages land near the paper's 31% / 18%.
    assert conservative > isa
    assert 20.0 <= conservative <= 45.0
    assert 10.0 <= isa <= 28.0
    # Per-benchmark shape: pointer-dense integer codes classify far more
    # accesses than the float/array codes.
    assert result.series["isa-assisted"]["mcf"] > result.series["isa-assisted"]["lbm"]
    assert result.series["conservative"]["gcc"] > result.series["conservative"]["milc"]
