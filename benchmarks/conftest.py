"""Shared fixtures for the benchmark harness.

Every figure benchmark runs the full twenty-benchmark sweep of the paper's
evaluation.  The sweep is shared (session scope) so that configurations used
by several figures (e.g. the ISA-assisted baseline appears in Figures 7, 8,
9, 10 and 11) are simulated once.

Scale can be adjusted with the ``REPRO_BENCH_INSTRUCTIONS`` environment
variable (default 8000 dynamic macro instructions per benchmark per
configuration — the scale the reproduction was calibrated at).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.common import ExperimentSettings, OverheadSweep  # noqa: E402

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))


@pytest.fixture(scope="session")
def settings():
    return ExperimentSettings(instructions=DEFAULT_INSTRUCTIONS)


@pytest.fixture(scope="session")
def sweep(settings):
    return OverheadSweep(settings)


def report(result, expected):
    """Print a paper-vs-measured report for one experiment."""
    lines = [f"\n=== {result.name} ===", result.format_table(),
             "--- paper vs measured ---"]
    for key, paper_value in expected.items():
        measured = result.summary.get(key)
        measured_text = f"{measured:.1f}" if isinstance(measured, float) else str(measured)
        lines.append(f"{key:<40} paper={paper_value:<8} measured={measured_text}")
    print("\n".join(lines))
