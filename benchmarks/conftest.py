"""Shared fixtures for the benchmark harness.

Every figure benchmark runs the full twenty-benchmark sweep of the paper's
evaluation.  The sweep is shared (session scope) so that configurations used
by several figures (e.g. the ISA-assisted baseline appears in Figures 7, 8,
9, 10 and 11) are simulated once — and, thanks to the persistent result
cache, at most once *ever* per (configuration, scale): warm reruns of the
harness skip straight to the reports.

Environment knobs:

* ``REPRO_BENCH_INSTRUCTIONS`` — dynamic macro instructions per benchmark per
  configuration (default 8000, the scale the reproduction was calibrated at),
* ``REPRO_BENCH_WORKERS`` — worker processes for the sweep engine (default
  1 = serial; parallel runs produce identical results),
* ``REPRO_BENCH_CACHE`` — result-cache directory; ``0`` disables caching
  (default: ``benchmarks/.cache``).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.common import ExperimentSettings, OverheadSweep  # noqa: E402
from repro.sim.cache import ResultCache  # noqa: E402
from repro.sim.engine import SweepEngine  # noqa: E402

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "8000"))
DEFAULT_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE", os.path.join(os.path.dirname(__file__), ".cache"))


@pytest.fixture(scope="session")
def settings():
    return ExperimentSettings(instructions=DEFAULT_INSTRUCTIONS)


@pytest.fixture(scope="session")
def sweep(settings):
    cache = None
    if DEFAULT_CACHE_DIR and DEFAULT_CACHE_DIR != "0":
        cache = ResultCache(DEFAULT_CACHE_DIR)
    engine = SweepEngine(workers=DEFAULT_WORKERS, cache=cache)
    return OverheadSweep(settings, engine=engine)
