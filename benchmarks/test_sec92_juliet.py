"""§9.2: efficacy against the Juliet-style CWE-416/562 use-after-free suite.

Paper: all 291 use-after-free test cases detected, zero false positives.
"""

from benchmarks.helpers import report
from repro.experiments import sec92_juliet


def test_sec92_juliet_suite(benchmark):
    result = benchmark.pedantic(sec92_juliet.run, rounds=1, iterations=1)
    report(result, sec92_juliet.EXPECTED)

    assert result.summary["cases"] == 291
    assert result.summary["detected"] == 291
    assert result.summary["missed"] == 0
    assert result.summary["false_positives"] == 0
