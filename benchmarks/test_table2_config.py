"""Table 2: simulated processor configuration."""

from benchmarks.helpers import report
from repro.experiments import table2_config


def test_table2_configuration(benchmark):
    result = benchmark.pedantic(table2_config.run, rounds=1, iterations=1)
    report(result, table2_config.EXPECTED)
    print(table2_config.format_table())
    assert result.summary["mismatches_vs_paper"] == 0
