"""Shared reporting helpers for the benchmark harness.

Importable as :mod:`benchmarks.helpers` — benchmark modules must not import
from ``conftest`` (two conftest modules in one session shadow each other).
"""


def report(result, expected):
    """Print a paper-vs-measured report for one experiment."""
    lines = [f"\n=== {result.name} ===", result.format_table(),
             "--- paper vs measured ---"]
    for key, paper_value in expected.items():
        measured = result.summary.get(key)
        measured_text = f"{measured:.1f}" if isinstance(measured, float) else str(measured)
        lines.append(f"{key:<40} paper={paper_value:<8} measured={measured_text}")
    print("\n".join(lines))
