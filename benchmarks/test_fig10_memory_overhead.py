"""Figure 10: shadow metadata memory overhead (words and pages).

Paper geo-means: 32% counted in words touched, 56% counted in 4KB pages
touched (page-granularity allocation of the shadow space fragments it).
"""

from benchmarks.helpers import report
from repro.experiments import fig10_memory_overhead as fig10


def test_fig10_memory_overhead(benchmark, sweep):
    result = benchmark.pedantic(fig10.run, kwargs={"sweep": sweep},
                                rounds=1, iterations=1)
    report(result, fig10.EXPECTED)

    words = result.summary["words_geomean_percent"]
    pages = result.summary["pages_geomean_percent"]
    # Shape: page-granularity accounting always costs more than word
    # accounting (fragmentation), both are well below the 2x worst case on
    # average, and words land in the tens of percent.
    assert pages > words > 0
    assert words <= 100.0
    assert pages <= 200.0   # worst case is two shadow pages per data page
    # Per-benchmark: pointer-dense benchmarks have higher word overhead than
    # the float codes with almost no pointers.
    assert result.series["words"]["mcf"] > result.series["words"]["lbm"]
