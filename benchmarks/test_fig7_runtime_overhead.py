"""Figure 7: runtime overhead of use-after-free checking.

Paper geo-means: conservative ≈25%, ISA-assisted ≈15%; §9.3 reports ≈11% with
idealized shadow accesses.
"""

from benchmarks.helpers import report
from repro.experiments import fig7_runtime_overhead as fig7


def test_fig7_runtime_overhead(benchmark, sweep):
    result = benchmark.pedantic(fig7.run, kwargs={"sweep": sweep},
                                rounds=1, iterations=1)
    report(result, fig7.EXPECTED)

    conservative = result.summary["conservative_geomean_percent"]
    isa = result.summary["isa-assisted_geomean_percent"]
    ideal = result.summary["ideal-shadow_geomean_percent"]
    # Shape: both configurations cost something; conservative identification
    # costs more than ISA-assisted; idealizing the shadow accesses reduces the
    # overhead further; magnitudes are in the paper's low-tens-of-percent
    # regime rather than the 2x of software-only approaches.
    assert conservative > isa > 0
    assert ideal < isa
    assert isa < 40.0
    assert conservative < 50.0


def test_ideal_shadow_ablation(sweep):
    """§9.3: shadow-access cache pressure accounts for part of the overhead."""
    result = fig7.run(sweep=sweep)
    assert result.summary["ideal-shadow_geomean_percent"] < \
        result.summary["isa-assisted_geomean_percent"]
