"""Ablations: idealized shadow accesses (§9.3) and rename-time copy elimination (§6.2)."""

from benchmarks.helpers import report
from repro.experiments import ablations


def test_design_ablations(benchmark, sweep):
    result = benchmark.pedantic(ablations.run, kwargs={"sweep": sweep},
                                rounds=1, iterations=1)
    report(result, ablations.EXPECTED)

    isa = result.summary["isa-assisted_geomean_percent"]
    ideal = result.summary["ideal-shadow_geomean_percent"]
    no_elim = result.summary["no-copy-elimination_geomean_percent"]
    # Idealizing the shadow accesses isolates the cache-pressure component.
    assert ideal < isa
    # Disabling copy elimination adds explicit metadata-copy µops, so it can
    # only cost more front-end bandwidth than the optimized design.
    assert no_elim >= isa * 0.95
