"""Table 1: comparison of use-after-free checking approaches."""

from benchmarks.helpers import report
from repro.experiments import table1_comparison


def test_table1_comparison(benchmark):
    result = benchmark.pedantic(table1_comparison.run, rounds=1, iterations=1)
    report(result, {"mismatches_vs_paper": 0})
    print(table1_comparison.format_table())
    # Every qualitative column derived from the executable models must match
    # the paper's table.
    assert result.summary["mismatches_vs_paper"] == 0
    assert result.summary["approaches"] == 11
