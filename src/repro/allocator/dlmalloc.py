"""A DL-malloc-style heap allocator.

The paper's evaluation uses a modified DL-malloc (§9.1).  The property of
DL-malloc that matters for Watchdog is *reuse*: freed memory is promptly
recycled for later allocations of similar size, which is exactly the scenario
in which location-based checkers lose track of dangling pointers and
identifier-based checkers do not (§2).  This module implements a boundary-tag
allocator with segregated size bins and immediate coalescing of adjacent free
chunks, operating on the heap segment of the simulated address space.

Addresses returned are always 16-byte aligned (so pointers stored in
allocations are word aligned, an assumption of the shadow-space scheme,
§3.3).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AllocatorError, OutOfMemoryError
from repro.memory.address_space import AddressSpace, Segment

ALIGNMENT = 16
MIN_CHUNK = 32

#: Size-class upper bounds for the segregated bins (bytes).  Requests above
#: the last bound go to the "large" bin which is kept sorted by size.
BIN_BOUNDS = (32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)


def _round_up(size: int, alignment: int = ALIGNMENT) -> int:
    return (size + alignment - 1) & ~(alignment - 1)


@dataclass
class _Chunk:
    """A contiguous region of heap, either free or allocated."""

    base: int
    size: int
    free: bool = True

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class AllocatorStats:
    """Counters describing allocator behaviour."""

    mallocs: int = 0
    frees: int = 0
    bytes_requested: int = 0
    bytes_allocated: int = 0
    peak_live_bytes: int = 0
    live_bytes: int = 0
    reuses: int = 0
    splits: int = 0
    coalesces: int = 0


class DlMallocAllocator:
    """Boundary-tag free-list allocator with segregated size bins."""

    def __init__(self, memory: AddressSpace, heap: Optional[Segment] = None):
        self.memory = memory
        self.heap = heap or memory.layout.heap
        self._wilderness = self.heap.base
        #: base address -> chunk for every chunk carved so far.
        self._chunks: Dict[int, _Chunk] = {}
        #: free chunks per bin index: list of (size, base) kept sorted.
        self._bins: List[List[Tuple[int, int]]] = [[] for _ in range(len(BIN_BOUNDS) + 1)]
        #: end address -> base of a *free* chunk, for O(1) backward coalescing.
        self._free_by_end: Dict[int, int] = {}
        self.stats = AllocatorStats()

    # -- bins ------------------------------------------------------------------
    @staticmethod
    def _bin_index(size: int) -> int:
        for i, bound in enumerate(BIN_BOUNDS):
            if size <= bound:
                return i
        return len(BIN_BOUNDS)

    def _bin_insert(self, chunk: _Chunk) -> None:
        entry = (chunk.size, chunk.base)
        bisect.insort(self._bins[self._bin_index(chunk.size)], entry)
        self._free_by_end[chunk.end] = chunk.base

    def _bin_remove(self, chunk: _Chunk) -> None:
        bin_list = self._bins[self._bin_index(chunk.size)]
        index = bisect.bisect_left(bin_list, (chunk.size, chunk.base))
        if index < len(bin_list) and bin_list[index] == (chunk.size, chunk.base):
            bin_list.pop(index)
        if self._free_by_end.get(chunk.end) == chunk.base:
            del self._free_by_end[chunk.end]

    def _find_free(self, size: int) -> Optional[_Chunk]:
        """Best-fit search starting from the request's bin."""
        for bin_index in range(self._bin_index(size), len(self._bins)):
            for chunk_size, base in self._bins[bin_index]:
                if chunk_size >= size:
                    chunk = self._chunks[base]
                    self._bin_remove(chunk)
                    return chunk
        return None

    # -- malloc / free -----------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; return the (16-byte-aligned) base address."""
        if size <= 0:
            raise AllocatorError(f"malloc size must be positive, got {size}")
        request = max(_round_up(size), MIN_CHUNK)
        chunk = self._find_free(request)
        if chunk is not None:
            self.stats.reuses += 1
            chunk.free = False
            self._maybe_split(chunk, request)
        else:
            chunk = self._extend_wilderness(request)
        self.stats.mallocs += 1
        self.stats.bytes_requested += size
        self.stats.bytes_allocated += chunk.size
        self.stats.live_bytes += chunk.size
        self.stats.peak_live_bytes = max(self.stats.peak_live_bytes,
                                         self.stats.live_bytes)
        return chunk.base

    def _extend_wilderness(self, request: int) -> _Chunk:
        base = self._wilderness
        if base + request > self.heap.limit:
            raise OutOfMemoryError(
                f"heap exhausted: need {request} bytes at {base:#x}")
        self._wilderness += request
        chunk = _Chunk(base=base, size=request, free=False)
        self._chunks[base] = chunk
        return chunk

    def _maybe_split(self, chunk: _Chunk, request: int) -> None:
        """Split the tail of an oversized chunk back into the free lists."""
        if chunk.size - request < MIN_CHUNK:
            return
        remainder = _Chunk(base=chunk.base + request, size=chunk.size - request,
                           free=True)
        chunk.size = request
        self._chunks[remainder.base] = remainder
        self._bin_insert(remainder)
        self.stats.splits += 1

    def free(self, address: int) -> int:
        """Free the chunk at ``address``; return the size that was freed."""
        chunk = self._chunks.get(address)
        if chunk is None or chunk.free:
            raise AllocatorError(f"free of invalid or already-free chunk {address:#x}")
        chunk.free = True
        self.stats.frees += 1
        self.stats.live_bytes -= chunk.size
        size = chunk.size
        chunk = self._coalesce(chunk)
        self._bin_insert(chunk)
        return size

    def _coalesce(self, chunk: _Chunk) -> _Chunk:
        """Merge ``chunk`` with free neighbours (boundary-tag coalescing)."""
        successor = self._chunks.get(chunk.end)
        if successor is not None and successor.free:
            self._bin_remove(successor)
            del self._chunks[successor.base]
            chunk.size += successor.size
            self.stats.coalesces += 1
        predecessor_base = self._free_by_end.get(chunk.base)
        predecessor = self._chunks.get(predecessor_base) if predecessor_base is not None else None
        if predecessor is not None and predecessor.free:
            self._bin_remove(predecessor)
            del self._chunks[chunk.base]
            predecessor.size += chunk.size
            self.stats.coalesces += 1
            return predecessor
        return chunk

    # -- introspection -----------------------------------------------------------
    def chunk_size(self, address: int) -> int:
        """Size of the allocated chunk at ``address``."""
        chunk = self._chunks.get(address)
        if chunk is None:
            raise AllocatorError(f"no chunk at {address:#x}")
        return chunk.size

    def is_allocated(self, address: int) -> bool:
        """True if ``address`` is the base of a currently-allocated chunk."""
        chunk = self._chunks.get(address)
        return chunk is not None and not chunk.free

    def owns(self, address: int) -> bool:
        """True if ``address`` falls inside any chunk ever carved (allocated
        or free) — i.e. inside the heap's used extent."""
        return self.heap.base <= address < self._wilderness

    @property
    def heap_used_bytes(self) -> int:
        return self._wilderness - self.heap.base
