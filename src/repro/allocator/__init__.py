"""Runtime memory allocator substrate.

The paper modifies the standard DL-malloc allocator so that every heap
allocation informs the hardware of its identifier via the new ``setident``
instruction and every deallocation retrieves and invalidates it via
``getident`` (Figure 3a/3b, §9.1).  The runtime also detects double frees and
frees of never-allocated pointers by checking identifier validity inside
``free()`` (§4.1).

* :mod:`repro.allocator.dlmalloc` — a boundary-tag, size-binned free-list
  allocator managing the heap segment (the substrate DL-malloc stands in for),
* :mod:`repro.allocator.runtime` — the instrumented ``malloc``/``free``
  runtime that couples the allocator to the Watchdog identifier machinery.
"""

from repro.allocator.dlmalloc import DlMallocAllocator, AllocatorStats
from repro.allocator.runtime import InstrumentedRuntime, AllocationRecord

__all__ = [
    "DlMallocAllocator",
    "AllocatorStats",
    "InstrumentedRuntime",
    "AllocationRecord",
]
