"""The instrumented malloc/free runtime (Figure 3a/3b).

On ``malloc`` the runtime allocates heap memory, creates a fresh lock-and-key
identifier (unique key, lock location from the LIFO free list, key written to
the lock location) and conveys it to the hardware with ``setident``.  On
``free`` it retrieves the pointer's identifier with ``getident``, *checks it is
still valid* (catching double frees and frees of pointers that never came from
malloc, §4.1), writes ``INVALID`` to the lock location, and recycles the lock
location.

The runtime is software in the paper; here it manipulates the same simulated
memory and identifier table the hardware uses, and reports how many dynamic
instructions each call would execute so the timing model can charge for them
(they appear in the "Other" segment of Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.allocator.dlmalloc import DlMallocAllocator
from repro.core.identifier import IdentifierTable, Identifier, INVALID_KEY
from repro.core.metadata import PointerMetadata
from repro.errors import AllocatorError, DoubleFreeError, InvalidFreeError
from repro.memory.address_space import AddressSpace

#: Approximate dynamic instruction counts of the allocator fast paths, used by
#: the timing model to charge for runtime work.  The *extra* instructions of
#: the instrumented runtime (identifier allocation, setident/getident) are
#: reported separately.
BASELINE_MALLOC_INSTRUCTIONS = 60
BASELINE_FREE_INSTRUCTIONS = 45
INSTRUMENTATION_MALLOC_INSTRUCTIONS = 12
INSTRUMENTATION_FREE_INSTRUCTIONS = 10


@dataclass
class AllocationRecord:
    """Bookkeeping for one live heap allocation."""

    base: int
    size: int
    metadata: PointerMetadata

    @property
    def identifier(self) -> Identifier:
        return self.metadata.identifier


class InstrumentedRuntime:
    """DL-malloc instrumented with setident/getident identifier management."""

    def __init__(self, memory: AddressSpace,
                 allocator: Optional[DlMallocAllocator] = None,
                 identifiers: Optional[IdentifierTable] = None,
                 track_bounds: bool = False):
        self.memory = memory
        self.allocator = allocator or DlMallocAllocator(memory)
        self.identifiers = identifiers or IdentifierTable(memory)
        self.track_bounds = track_bounds
        self._live: Dict[int, AllocationRecord] = {}
        self.malloc_calls = 0
        self.free_calls = 0
        self.double_frees_detected = 0
        self.invalid_frees_detected = 0
        self.runtime_instructions = 0
        self.instrumentation_instructions = 0

    # -- allocation -------------------------------------------------------------
    def malloc(self, size: int) -> Tuple[int, PointerMetadata]:
        """Allocate ``size`` bytes; return the pointer and its metadata.

        The metadata is what ``setident`` hands to the hardware: it becomes
        the sidecar metadata of the destination register (Figure 3a).
        """
        base = self.allocator.malloc(size)
        identifier = self.identifiers.allocate_identifier()
        metadata = PointerMetadata.for_allocation(
            identifier, base, size, with_bounds=self.track_bounds)
        self._live[base] = AllocationRecord(base=base, size=size, metadata=metadata)
        self.malloc_calls += 1
        self.runtime_instructions += BASELINE_MALLOC_INSTRUCTIONS
        self.instrumentation_instructions += INSTRUMENTATION_MALLOC_INSTRUCTIONS
        return base, metadata

    # -- deallocation -----------------------------------------------------------
    def free(self, pointer: int, metadata: Optional[PointerMetadata]) -> int:
        """Free ``pointer``; raises on double free / invalid free.

        ``metadata`` is the identifier retrieved via ``getident`` from the
        pointer being freed (Figure 3b).  The runtime checks that it is still
        valid before invalidating it.
        """
        self.free_calls += 1
        self.runtime_instructions += BASELINE_FREE_INSTRUCTIONS
        self.instrumentation_instructions += INSTRUMENTATION_FREE_INSTRUCTIONS

        if metadata is None:
            self.invalid_frees_detected += 1
            raise InvalidFreeError(
                f"free of pointer {pointer:#x} with no allocation identifier",
                address=pointer)

        if not self.identifiers.is_valid(metadata.identifier):
            self.double_frees_detected += 1
            raise DoubleFreeError(
                f"free of pointer {pointer:#x} whose identifier is already invalid "
                f"({metadata.identifier})", address=pointer)

        record = self._live.get(pointer)
        if record is None or record.identifier != metadata.identifier:
            self.invalid_frees_detected += 1
            raise InvalidFreeError(
                f"free of pointer {pointer:#x} that is not an allocation base",
                address=pointer)

        # Invalidate the identifier first (the security-critical step), then
        # return the memory to the allocator for reuse.
        self.identifiers.invalidate(metadata.identifier)
        del self._live[pointer]
        size = self.allocator.free(pointer)
        return size

    # -- queries -----------------------------------------------------------------
    def live_allocations(self) -> int:
        return len(self._live)

    def record_for(self, pointer: int) -> Optional[AllocationRecord]:
        """The live allocation record whose base is ``pointer``, if any."""
        return self._live.get(pointer)

    def record_containing(self, address: int) -> Optional[AllocationRecord]:
        """The live allocation containing ``address``, if any (O(n) scan,
        used only by tests and the location-based baseline)."""
        for record in self._live.values():
            if record.base <= address < record.base + record.size:
                return record
        return None

    def total_live_bytes(self) -> int:
        return sum(record.size for record in self._live.values())
