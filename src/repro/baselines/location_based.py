"""Location-based use-after-free checking (§2.1).

Location-based approaches (Valgrind Memcheck, Jones & Kelly, MemTracker, LBA,
SafeProc) track the allocated/deallocated status of *addresses*: an auxiliary
shadow structure is updated on malloc/free and consulted on every access.
The approach detects accesses to memory that is currently unallocated, but
once a freed region is reallocated to a new object, a stale pointer into it
dereferences "allocated" memory and the error is missed — the fundamental
limitation Table 1 records in the "Comprehensive" column.

This module implements the checker over the same event-trace abstraction the
Table 1 harness replays through every approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.errors import ProgramError


@dataclass
class LocationCheckStats:
    """Counters describing one replay."""

    accesses: int = 0
    violations: int = 0
    allocations: int = 0
    frees: int = 0


class LocationBasedChecker:
    """Shadow allocation-status checker (word granularity)."""

    #: Metadata organisation as Table 1 reports it.
    metadata = "disjoint"
    #: Location-based checking keys off addresses only, so arbitrary casts of
    #: the *pointer value* cannot corrupt its metadata.
    survives_arbitrary_casts = True

    def __init__(self) -> None:
        self._allocated_words: Set[int] = set()
        self.stats = LocationCheckStats()

    # -- event handling -------------------------------------------------------------
    @staticmethod
    def _words(base: int, size: int):
        word = base & ~7
        end = base + max(size, 1)
        while word < end:
            yield word
            word += 8

    def on_alloc(self, base: int, size: int) -> None:
        self.stats.allocations += 1
        for word in self._words(base, size):
            self._allocated_words.add(word)

    def on_free(self, base: int, size: int) -> None:
        self.stats.frees += 1
        for word in self._words(base, size):
            self._allocated_words.discard(word)

    def check_access(self, address: int, size: int = 8) -> bool:
        """True if the access passes (the location is currently allocated)."""
        self.stats.accesses += 1
        ok = all(word in self._allocated_words for word in self._words(address, size))
        if not ok:
            self.stats.violations += 1
        return ok

    # -- introspection ----------------------------------------------------------------
    @property
    def allocated_words(self) -> int:
        return len(self._allocated_words)

    def is_allocated(self, address: int) -> bool:
        return (address & ~7) in self._allocated_words
