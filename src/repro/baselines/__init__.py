"""Baseline checkers and the Table 1 comparison harness.

Watchdog is compared (Table 1, §2) against two families of prior approaches:

* **location-based** checking — an auxiliary structure records which
  addresses are currently allocated; accesses to unallocated addresses are
  flagged.  Cheap, but blind to use-after-free once the memory has been
  reallocated (:mod:`repro.baselines.location_based`),
* **identifier-based** checking — each allocation gets a unique identifier
  checked on every access.  Comprehensive, but software implementations are
  slow and inline-metadata variants are broken by arbitrary casts
  (:mod:`repro.baselines.sw_identifier`).

:mod:`repro.baselines.comparison` replays a common set of error scenarios
through every checker model to *derive* the qualitative columns of Table 1
(comprehensive detection, safety under arbitrary casts) rather than assert
them, and attaches the representative overhead/instrumentation data the paper
tabulates.
"""

from repro.baselines.location_based import LocationBasedChecker
from repro.baselines.sw_identifier import (
    DisjointIdentifierChecker,
    InlineIdentifierChecker,
)
from repro.baselines.comparison import (
    ApproachSummary,
    ComparisonHarness,
    MemoryEvent,
    EventKind,
    standard_scenarios,
)

__all__ = [
    "LocationBasedChecker",
    "DisjointIdentifierChecker",
    "InlineIdentifierChecker",
    "ApproachSummary",
    "ComparisonHarness",
    "MemoryEvent",
    "EventKind",
    "standard_scenarios",
]
