"""Table 1 comparison harness.

Table 1 compares representative location-based and identifier-based
approaches along five axes: instrumentation method, runtime overhead,
metadata organisation, safety under arbitrary casts, and comprehensive
detection in the presence of reallocation.  The qualitative columns are
*derived* here by replaying two witness scenarios through executable models
of each approach:

* **reallocation scenario** — pointer `p` is freed, the memory is immediately
  reallocated to a new object, and `p` is then dereferenced.  Identifier
  approaches flag it; location approaches do not (§2.1),
* **cast scenario** — a type-punning store overwrites the words around a
  pointer before it is (legitimately) dereferenced, then the object is freed
  and the pointer dereferenced again.  Inline-metadata approaches lose the
  stale-identifier information and miss the second dereference; disjoint
  approaches keep working (§2.2).

The instrumentation method and representative overhead columns are the
published characteristics of each system (they cannot be measured from
here); Watchdog's own overhead is measured by the Figure 7 experiment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.location_based import LocationBasedChecker
from repro.baselines.sw_identifier import (
    DisjointIdentifierChecker,
    InlineIdentifierChecker,
)


class EventKind(enum.Enum):
    """Events in an abstract allocation/access trace."""

    ALLOC = "alloc"
    FREE = "free"
    ACCESS = "access"
    CAST = "cast"


@dataclass
class MemoryEvent:
    """One event in a Table 1 witness scenario.

    ``pointer`` names the pointer variable used for the access (identifier
    approaches key metadata off it); ``allocation`` names the allocation the
    pointer refers to; ``address``/``size`` give the concrete location used
    by location-based approaches.
    """

    kind: EventKind
    pointer: Optional[str] = None
    allocation: Optional[int] = None
    address: int = 0
    size: int = 8
    #: For ACCESS events: is this dereference a temporal error the checker
    #: *should* flag?
    is_error: bool = False


def reallocation_scenario() -> List[MemoryEvent]:
    """Use-after-free where the chunk is reallocated before the access."""
    return [
        MemoryEvent(EventKind.ALLOC, pointer="p", allocation=1, address=0x1000, size=64),
        MemoryEvent(EventKind.ACCESS, pointer="p", allocation=1, address=0x1008),
        MemoryEvent(EventKind.FREE, pointer="p", allocation=1, address=0x1000, size=64),
        # The same address range is immediately reused by a new allocation.
        MemoryEvent(EventKind.ALLOC, pointer="q", allocation=2, address=0x1000, size=64),
        MemoryEvent(EventKind.ACCESS, pointer="q", allocation=2, address=0x1010),
        # Dangling dereference of p: temporal error that should be detected.
        MemoryEvent(EventKind.ACCESS, pointer="p", allocation=1, address=0x1008,
                    is_error=True),
    ]


def cast_corruption_scenario(with_cast: bool = True) -> List[MemoryEvent]:
    """Use-after-free preceded (optionally) by a metadata-clobbering cast.

    The "Casts" column of Table 1 asks whether arbitrary casts *degrade* an
    approach's safety, so this scenario is evaluated twice — with and without
    the cast — and an approach is cast-safe iff its detection outcome is the
    same in both runs.  (Location-based approaches miss the error either way,
    but the cast is not what costs them; inline-metadata identifier schemes
    detect it without the cast and miss it with the cast.)
    """
    events = [
        MemoryEvent(EventKind.ALLOC, pointer="p", allocation=1, address=0x2000, size=64),
    ]
    if with_cast:
        events.append(MemoryEvent(EventKind.CAST, pointer="p", allocation=1,
                                  address=0x2000))
    events.extend([
        MemoryEvent(EventKind.ACCESS, pointer="p", allocation=1, address=0x2008),
        MemoryEvent(EventKind.FREE, pointer="p", allocation=1, address=0x2000, size=64),
        MemoryEvent(EventKind.ACCESS, pointer="p", allocation=1, address=0x2008,
                    is_error=True),
    ])
    return events


def standard_scenarios() -> Dict[str, List[MemoryEvent]]:
    """The witness scenarios used to derive the Table 1 columns."""
    return {
        "reallocation": reallocation_scenario(),
        "cast-corruption": cast_corruption_scenario(with_cast=True),
        "cast-control": cast_corruption_scenario(with_cast=False),
    }


# ----------------------------------------------------------------------------- replay
def _replay_location(events: List[MemoryEvent]) -> Tuple[int, int]:
    """Replay through a location-based checker; return (errors, detected)."""
    checker = LocationBasedChecker()
    errors = detected = 0
    for event in events:
        if event.kind is EventKind.ALLOC:
            checker.on_alloc(event.address, event.size)
        elif event.kind is EventKind.FREE:
            checker.on_free(event.address, event.size)
        elif event.kind is EventKind.ACCESS:
            ok = checker.check_access(event.address, 8)
            if event.is_error:
                errors += 1
                if not ok:
                    detected += 1
        # CAST events do not affect a location-based checker.
    return errors, detected


def _replay_identifier(events: List[MemoryEvent], checker) -> Tuple[int, int]:
    """Replay through an identifier-based checker; return (errors, detected)."""
    keys: Dict[int, int] = {}
    errors = detected = 0
    for event in events:
        if event.kind is EventKind.ALLOC:
            key = checker.on_alloc(event.allocation, event.size)
            keys[event.allocation] = key
            checker.on_pointer_created(event.pointer, event.allocation, key)
        elif event.kind is EventKind.FREE:
            checker.on_free(event.allocation)
        elif event.kind is EventKind.CAST:
            checker.on_arbitrary_cast(event.pointer)
        elif event.kind is EventKind.ACCESS:
            ok = checker.check_access(event.pointer)
            if event.is_error:
                errors += 1
                if not ok:
                    detected += 1
    return errors, detected


# ----------------------------------------------------------------------------- summaries
@dataclass
class ApproachSummary:
    """One row of Table 1."""

    name: str
    category: str                 # "location" or "identifier"
    instrumentation: str          # Binary / Compiler / Source / Hybrid / H/W
    runtime_overhead: str         # representative factor as the paper prints it
    metadata: str                 # Disjoint / Inline / Split / —
    safe_with_casts: bool
    comprehensive: bool

    def as_row(self) -> str:
        casts = "Y" if self.safe_with_casts else "N"
        compre = "Y" if self.comprehensive else "N"
        return (f"{self.name:<10} {self.category:<10} {self.instrumentation:<9} "
                f"{self.runtime_overhead:>7} {self.metadata:<9} {casts:^5} {compre:^7}")


#: (name, category, instrumentation, representative overhead, checker factory)
_APPROACHES: List[Tuple[str, str, str, str, Callable[[], object]]] = [
    ("MC",       "location",   "Binary",   "10x",  LocationBasedChecker),
    ("JK",       "location",   "Compiler", "10x",  LocationBasedChecker),
    ("LBA",      "location",   "H/W",      "1.2x", LocationBasedChecker),
    ("SProc",    "location",   "H/W",      "1.2x", LocationBasedChecker),
    ("MTrac",    "location",   "H/W",      "1.2x", LocationBasedChecker),
    ("SafeC",    "identifier", "Source",   "10x",  InlineIdentifierChecker),
    ("P&F",      "identifier", "Source",   "5x",   InlineIdentifierChecker),
    ("MSCC",     "identifier", "Source",   "2x",   InlineIdentifierChecker),
    ("Chuang",   "identifier", "Hybrid",   "1.2x", InlineIdentifierChecker),
    ("CETS",     "identifier", "Compiler", "2x",   DisjointIdentifierChecker),
    ("Watchdog", "identifier", "H/W",      "1.2x", DisjointIdentifierChecker),
]


class ComparisonHarness:
    """Derives the Table 1 rows by replaying the witness scenarios."""

    def __init__(self) -> None:
        self.scenarios = standard_scenarios()

    def _detections(self, factory: Callable[[], object], category: str,
                    scenario: str) -> Tuple[int, int]:
        """Replay one scenario through a fresh checker; return (errors, detected)."""
        events = self.scenarios[scenario]
        checker = factory()
        if category == "location":
            return _replay_location(events)
        return _replay_identifier(events, checker)

    def _evaluate(self, factory: Callable[[], object], category: str,
                  scenario: str) -> bool:
        """True if a fresh checker detects every error in the scenario."""
        errors, detected = self._detections(factory, category, scenario)
        return errors > 0 and detected == errors

    def _cast_safe(self, factory: Callable[[], object], category: str) -> bool:
        """Casts are safe iff they do not change what the approach detects."""
        _, with_cast = self._detections(factory, category, "cast-corruption")
        _, without_cast = self._detections(factory, category, "cast-control")
        return with_cast == without_cast

    def summaries(self) -> List[ApproachSummary]:
        """One summary per approach, columns derived from the scenarios."""
        rows: List[ApproachSummary] = []
        for name, category, instrumentation, overhead, factory in _APPROACHES:
            comprehensive = self._evaluate(factory, category, "reallocation")
            safe_with_casts = self._cast_safe(factory, category)
            checker = factory()
            metadata = getattr(checker, "metadata", "disjoint").capitalize()
            rows.append(ApproachSummary(
                name=name, category=category, instrumentation=instrumentation,
                runtime_overhead=overhead, metadata=metadata,
                safe_with_casts=safe_with_casts, comprehensive=comprehensive))
        return rows

    def format_table(self) -> str:
        """Render the comparison as a Table 1-style text table."""
        header = (f"{'Approach':<10} {'Category':<10} {'Instrum.':<9} "
                  f"{'Runtime':>7} {'Metadata':<9} {'Casts':^5} {'Compre.':^7}")
        lines = [header, "-" * len(header)]
        lines.extend(summary.as_row() for summary in self.summaries())
        return "\n".join(lines)

    def watchdog_summary(self) -> ApproachSummary:
        for summary in self.summaries():
            if summary.name == "Watchdog":
                return summary
        raise KeyError("Watchdog row missing")
