"""Identifier-based checker models: inline-metadata and disjoint-metadata
software variants (§2.2, §2.3).

Both variants associate a unique identifier with every allocation and check
it on every access, so both detect use-after-free even after reallocation.
They differ in where the per-pointer metadata lives:

* **inline** (SafeC, Patil & Fischer, MSCC, Chuang et al.): the identifier is
  stored next to the pointer (a fat pointer).  Memory layout changes break
  binary compatibility, and an arbitrary cast or type-punning store can
  overwrite the metadata, silently disabling detection — which is exactly
  what the Table 1 "Casts" column records,
* **disjoint** (CETS, and Watchdog itself): the identifier lives in a shadow
  space keyed by the pointer's *location*, so program stores can never
  clobber it.

The classes also carry the representative runtime-overhead factors the paper
tabulates for the software implementations (they are inputs to Table 1, not
measured here — this reproduction measures Watchdog's own overhead in the
Figure 7/9/11 experiments).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProgramError


@dataclass
class IdentifierCheckStats:
    accesses: int = 0
    violations: int = 0
    allocations: int = 0
    frees: int = 0
    metadata_corruptions: int = 0


class _IdentifierCheckerBase:
    """Shared lock-and-key style bookkeeping for the software models."""

    metadata = "unspecified"
    survives_arbitrary_casts = False
    representative_overhead = 1.0

    def __init__(self) -> None:
        self._next_key = itertools.count(1)
        #: allocation id -> (key, valid?)
        self._allocations: Dict[int, Tuple[int, bool]] = {}
        self.stats = IdentifierCheckStats()

    def on_alloc(self, allocation_id: int, size: int) -> int:
        self.stats.allocations += 1
        key = next(self._next_key)
        self._allocations[allocation_id] = (key, True)
        return key

    def on_free(self, allocation_id: int) -> None:
        self.stats.frees += 1
        entry = self._allocations.get(allocation_id)
        if entry is None:
            return
        key, _ = entry
        self._allocations[allocation_id] = (key, False)

    def _key_is_valid(self, allocation_id: int, key: Optional[int]) -> bool:
        entry = self._allocations.get(allocation_id)
        if entry is None or key is None:
            return False
        current_key, valid = entry
        return valid and current_key == key


class DisjointIdentifierChecker(_IdentifierCheckerBase):
    """CETS-style software checker: disjoint metadata, comprehensive, ~2x."""

    metadata = "disjoint"
    survives_arbitrary_casts = True
    representative_overhead = 2.0

    def __init__(self) -> None:
        super().__init__()
        #: pointer name -> (allocation id, key); disjoint from program data,
        #: so program stores cannot touch it.
        self._pointer_metadata: Dict[str, Tuple[int, int]] = {}

    def on_pointer_created(self, pointer: str, allocation_id: int, key: int) -> None:
        self._pointer_metadata[pointer] = (allocation_id, key)

    def on_pointer_copied(self, source: str, dest: str) -> None:
        if source in self._pointer_metadata:
            self._pointer_metadata[dest] = self._pointer_metadata[source]
        else:
            self._pointer_metadata.pop(dest, None)

    def on_arbitrary_cast(self, pointer: str) -> None:
        """A cast/type-pun writes through the pointer's storage.  Disjoint
        metadata is unaffected (§2.2)."""
        return

    def check_access(self, pointer: str) -> bool:
        self.stats.accesses += 1
        entry = self._pointer_metadata.get(pointer)
        if entry is None:
            self.stats.violations += 1
            return False
        allocation_id, key = entry
        ok = self._key_is_valid(allocation_id, key)
        if not ok:
            self.stats.violations += 1
        return ok


class InlineIdentifierChecker(DisjointIdentifierChecker):
    """Fat-pointer style checker: identifier stored next to the pointer.

    Identical detection power to the disjoint variant *until* an arbitrary
    cast or type-punning store overwrites the inline metadata, after which
    checks on that pointer are performed against garbage and silently pass —
    the incompatibility/corruption problem §2.2 describes.
    """

    metadata = "inline"
    survives_arbitrary_casts = False
    representative_overhead = 5.0

    def on_arbitrary_cast(self, pointer: str) -> None:
        """The cast clobbers the words adjacent to the pointer — i.e. the
        inline identifier.  Model: the pointer's metadata is destroyed and
        subsequent checks cannot observe the stale identifier."""
        if pointer in self._pointer_metadata:
            self.stats.metadata_corruptions += 1
            del self._pointer_metadata[pointer]

    def check_access(self, pointer: str) -> bool:
        self.stats.accesses += 1
        entry = self._pointer_metadata.get(pointer)
        if entry is None:
            # Corrupted/absent inline metadata: the check compares against
            # whatever bytes are there and (unsoundly) passes.
            return True
        allocation_id, key = entry
        ok = self._key_is_valid(allocation_id, key)
        if not ok:
            self.stats.violations += 1
        return ok
