"""Program model: a small C-like layer on top of the macro ISA.

The paper's workloads are C programs (SPEC benchmarks, the Juliet test suite,
exploit proof-of-concepts).  This package provides the equivalent substrate
for the reproduction:

* :mod:`repro.program.ir` — programs as functions made of operations
  (macro instructions, ``malloc``/``free`` runtime calls, stack allocations,
  calls and returns),
* :mod:`repro.program.builder` — a fluent builder API used by the examples,
  the Juliet-style generator and the tests,
* :mod:`repro.program.compiler` — the pointer-annotation pass that produces
  the ISA-assisted load/store variants (§5.2) from the program's dataflow,
* :mod:`repro.program.machine` — the functional machine that executes a
  program under a given Watchdog configuration, raising
  :class:`~repro.errors.MemorySafetyViolation` on detected errors and
  optionally recording a dynamic trace for the timing model.
"""

from repro.program.ir import OpKind, Operation, Function, Program
from repro.program.builder import ProgramBuilder, FunctionBuilder
from repro.program.compiler import annotate_pointer_hints, PointerAnnotationStats
from repro.program.machine import Machine, ExecutionResult

__all__ = [
    "OpKind",
    "Operation",
    "Function",
    "Program",
    "ProgramBuilder",
    "FunctionBuilder",
    "annotate_pointer_hints",
    "PointerAnnotationStats",
    "Machine",
    "ExecutionResult",
]
