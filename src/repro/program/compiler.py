"""Compiler support: the pointer-annotation pass for ISA-assisted
identification (§5.2).

With ISA-assisted identification, "the compiler, which generally knows which
operations are manipulating pointers, is responsible for conservatively
selecting the proper load/store variants".  This pass plays that role for
programs built through :mod:`repro.program.builder`: it performs a simple
abstract interpretation over each function, tracking which registers may hold
pointers (values produced by ``malloc``, ``stack_alloc``, ``global_addr``, or
propagated through moves and pointer arithmetic), and rewrites the
``pointer_hint`` of every 64-bit integer load/store accordingly:

* a store whose *value* register may hold a pointer → ``POINTER`` variant,
* a load whose destination is later used as an address, or that reads a slot
  a pointer was stored to → ``POINTER`` variant (approximated conservatively:
  loads from a base register that has had a pointer stored through it are
  annotated as pointer loads),
* everything else → ``NOT_POINTER`` variant.

The pass is conservative in the direction the paper requires: when in doubt a
memory operation keeps (or gains) the pointer annotation, never loses one it
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.isa.instructions import (
    Instruction,
    Opcode,
    PointerHint,
    SELECT_PROPAGATORS,
    SINGLE_SOURCE_PROPAGATORS,
    NON_POINTER_PRODUCERS,
)
from repro.isa.registers import ArchReg, STACK_POINTER
from repro.program.ir import OpKind, Operation, Program


@dataclass
class PointerAnnotationStats:
    """What the pass did, for reporting and tests."""

    loads_annotated_pointer: int = 0
    loads_annotated_non_pointer: int = 0
    stores_annotated_pointer: int = 0
    stores_annotated_non_pointer: int = 0

    @property
    def total_annotated(self) -> int:
        return (self.loads_annotated_pointer + self.loads_annotated_non_pointer
                + self.stores_annotated_pointer + self.stores_annotated_non_pointer)


def _may_hold_pointer_after(inst: Instruction, pointers: Set[ArchReg]) -> None:
    """Update the may-hold-pointer register set for one ALU instruction."""
    if inst.dest is None or not inst.dest.is_int:
        return
    op = inst.opcode
    if op in SINGLE_SOURCE_PROPAGATORS:
        if inst.srcs and inst.srcs[0] in pointers:
            pointers.add(inst.dest)
        else:
            pointers.discard(inst.dest)
    elif op in SELECT_PROPAGATORS:
        if any(src in pointers for src in inst.srcs):
            pointers.add(inst.dest)
        else:
            pointers.discard(inst.dest)
    elif op is Opcode.LEA_GLOBAL:
        pointers.add(inst.dest)
    elif op in NON_POINTER_PRODUCERS or op is Opcode.MOV_RI:
        pointers.discard(inst.dest)


def annotate_pointer_hints(program: Program) -> PointerAnnotationStats:
    """Rewrite load/store pointer hints in place; return statistics."""
    stats = PointerAnnotationStats()

    for function in program.functions.values():
        # Registers that may currently hold a pointer.
        pointers: Set[ArchReg] = {STACK_POINTER}
        # Alias groups: registers produced by copying/offsetting one another
        # share a group id, so a pointer stored through one alias is visible
        # to loads through any of its aliases (keeps the pass conservative).
        alias_group: Dict[ArchReg, int] = {}
        next_group = [0]
        # Alias groups through which a pointer value has been stored; loads
        # through a register of such a group may read a pointer back.
        pointer_base_groups: Set[int] = set()

        def group_of(register: ArchReg) -> int:
            if register not in alias_group:
                alias_group[register] = next_group[0]
                next_group[0] += 1
            return alias_group[register]

        def fresh_group(register: ArchReg) -> None:
            alias_group[register] = next_group[0]
            next_group[0] += 1

        for operation in function:
            if operation.kind is OpKind.MALLOC or operation.kind is OpKind.STACK_ALLOC \
                    or operation.kind is OpKind.GLOBAL_ADDR:
                assert operation.dest is not None
                pointers.add(operation.dest)
                fresh_group(operation.dest)
                continue
            if operation.kind is OpKind.FREE:
                continue
            if operation.kind is not OpKind.MACRO:
                continue

            inst = operation.instruction
            assert inst is not None

            if inst.opcode is Opcode.STORE:
                value_reg = inst.srcs[1]
                if inst.may_carry_pointer and value_reg in pointers:
                    inst.pointer_hint = PointerHint.POINTER
                    pointer_base_groups.add(group_of(inst.srcs[0]))
                    stats.stores_annotated_pointer += 1
                else:
                    inst.pointer_hint = PointerHint.NOT_POINTER
                    stats.stores_annotated_non_pointer += 1
                continue

            if inst.opcode is Opcode.LOAD:
                base_reg = inst.srcs[0]
                if inst.may_carry_pointer and group_of(base_reg) in pointer_base_groups:
                    inst.pointer_hint = PointerHint.POINTER
                    if inst.dest is not None:
                        pointers.add(inst.dest)
                        fresh_group(inst.dest)
                    stats.loads_annotated_pointer += 1
                else:
                    inst.pointer_hint = PointerHint.NOT_POINTER
                    if inst.dest is not None:
                        pointers.discard(inst.dest)
                        fresh_group(inst.dest)
                    stats.loads_annotated_non_pointer += 1
                continue

            if inst.opcode in (Opcode.FLOAD, Opcode.FSTORE):
                inst.pointer_hint = PointerHint.NOT_POINTER
                continue

            _may_hold_pointer_after(inst, pointers)
            # Maintain alias groups: copies and pointer arithmetic keep the
            # source's group; anything else defines a fresh value.
            if inst.dest is not None and inst.dest.is_int:
                if inst.opcode in SINGLE_SOURCE_PROPAGATORS and inst.srcs:
                    alias_group[inst.dest] = group_of(inst.srcs[0])
                else:
                    fresh_group(inst.dest)

    return stats
