"""Program intermediate representation.

A :class:`Program` is a set of named functions; each :class:`Function` is a
straight-line sequence of :class:`Operation` objects.  Operations are either
ordinary macro instructions (executed through the decoder/µop machinery) or
high-level operations the machine interprets directly:

* ``MALLOC`` / ``FREE`` — calls into the instrumented runtime (Figure 3a/3b),
* ``STACK_ALLOC`` — take the address of a local variable in the current stack
  frame (the pattern behind the stack-based dangling pointer of Figure 1),
* ``CALL`` / ``RETURN`` — function call and return (which, under Watchdog,
  trigger the stack-frame identifier µops of Figure 3c/3d),
* ``GLOBAL_ADDR`` — PC-relative address of a global variable, which carries
  the single global identifier (§7).

Control flow inside a function is deliberately omitted: the workload
generators unroll loops when they build programs, which keeps the functional
machine trivially correct while still exercising every Watchdog mechanism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProgramError
from repro.isa.instructions import Instruction
from repro.isa.registers import ArchReg


class OpKind(enum.Enum):
    """Kinds of operations the functional machine interprets."""

    MACRO = "macro"
    MALLOC = "malloc"
    FREE = "free"
    STACK_ALLOC = "stack-alloc"
    GLOBAL_ADDR = "global-addr"
    CALL = "call"
    RETURN = "return"


@dataclass
class Operation:
    """One operation in a function body."""

    kind: OpKind
    instruction: Optional[Instruction] = None
    dest: Optional[ArchReg] = None
    src: Optional[ArchReg] = None
    size: int = 0
    offset: int = 0
    callee: Optional[str] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.kind is OpKind.MACRO and self.instruction is None:
            raise ProgramError("MACRO operation requires an instruction")
        if self.kind is OpKind.MALLOC and (self.dest is None or self.size <= 0):
            raise ProgramError("MALLOC requires a destination register and size > 0")
        if self.kind is OpKind.FREE and self.src is None:
            raise ProgramError("FREE requires a source register")
        if self.kind is OpKind.STACK_ALLOC and (self.dest is None or self.size <= 0):
            raise ProgramError("STACK_ALLOC requires a destination register and size > 0")
        if self.kind is OpKind.CALL and not self.callee:
            raise ProgramError("CALL requires a callee name")
        if self.kind is OpKind.GLOBAL_ADDR and self.dest is None:
            raise ProgramError("GLOBAL_ADDR requires a destination register")

    def __str__(self) -> str:
        if self.kind is OpKind.MACRO:
            return str(self.instruction)
        parts = [self.kind.value]
        if self.dest is not None:
            parts.append(str(self.dest))
        if self.src is not None:
            parts.append(str(self.src))
        if self.size:
            parts.append(f"size={self.size}")
        if self.callee:
            parts.append(f"-> {self.callee}")
        return " ".join(parts)


@dataclass
class Function:
    """A named straight-line function."""

    name: str
    operations: List[Operation] = field(default_factory=list)
    #: Bytes of stack the function's locals occupy (grown by STACK_ALLOC).
    frame_bytes: int = 0

    def append(self, operation: Operation) -> None:
        self.operations.append(operation)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)


@dataclass
class Program:
    """A whole program: functions plus the entry-point name."""

    functions: Dict[str, Function] = field(default_factory=dict)
    entry: str = "main"
    #: Global pointer slots (offsets in the global segment) initialized to
    #: point at other globals; their shadow metadata is pre-set to the global
    #: identifier (§7).
    initialized_global_pointers: Tuple[int, ...] = ()

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise ProgramError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise ProgramError(f"unknown function {name!r}") from None

    def validate(self) -> None:
        """Check call targets exist and the entry point is defined."""
        if self.entry not in self.functions:
            raise ProgramError(f"entry function {self.entry!r} is not defined")
        for function in self.functions.values():
            for operation in function:
                if operation.kind is OpKind.CALL and operation.callee not in self.functions:
                    raise ProgramError(
                        f"{function.name} calls unknown function {operation.callee!r}")

    def all_instructions(self):
        """Iterate over every macro instruction in the program (static code)."""
        for function in self.functions.values():
            for operation in function:
                if operation.kind is OpKind.MACRO:
                    yield operation.instruction

    @property
    def static_operation_count(self) -> int:
        return sum(len(function) for function in self.functions.values())
