"""The functional machine.

Executes a :class:`~repro.program.ir.Program` under a given Watchdog
configuration.  Every macro instruction is expanded through the Watchdog µop
injector, and the machine then interprets each µop:

* ``CHECK`` — identifier (and, when enabled, bounds) validation against the
  metadata of the address register (§3.2, §8),
* ``LOAD``/``STORE`` — the actual data access on the simulated memory,
* ``SHADOW_LOAD``/``SHADOW_STORE`` — metadata movement to/from the disjoint
  shadow space (§3.3),
* ``LOCK_PUSH``/``LOCK_POP`` — stack-frame identifier management (Fig 3c/3d),
* ALU µops — data computation plus functional metadata propagation (§6.2).

High-level operations (``MALLOC``, ``FREE``, ``STACK_ALLOC``, ``GLOBAL_ADDR``,
``CALL``, ``RETURN``) are interpreted directly, calling into the instrumented
runtime and the stack-frame manager.

The machine optionally records the dynamic trace (macro instructions with
effective addresses and lock addresses), which can be fed to the timing model
so that detection experiments and timing experiments share one execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import WatchdogConfig
from repro.core.metadata import PointerMetadata
from repro.core.watchdog import Watchdog
from repro.errors import MemorySafetyViolation, ProgramError, SimulationError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.microops import MicroOp, UopKind
from repro.isa.registers import ArchReg, RegisterFile, STACK_POINTER, WORD_MASK
from repro.program.ir import Function, OpKind, Operation, Program
from repro.sim.trace import DynamicOp

#: Maximum dynamic operations executed before the machine assumes runaway.
DEFAULT_OPERATION_LIMIT = 2_000_000


@dataclass
class ExecutionResult:
    """Outcome of running a program on the functional machine."""

    detected: bool
    violation: Optional[MemorySafetyViolation]
    operations_executed: int
    instructions_executed: int
    uops_executed: int
    registers: RegisterFile
    trace: List[DynamicOp] = field(default_factory=list)

    @property
    def violation_kind(self) -> Optional[str]:
        return self.violation.kind if self.violation is not None else None


class Machine:
    """Functional executor for programs under a Watchdog configuration."""

    def __init__(self, config: Optional[WatchdogConfig] = None,
                 watchdog: Optional[Watchdog] = None,
                 record_trace: bool = False,
                 operation_limit: int = DEFAULT_OPERATION_LIMIT):
        self.watchdog = watchdog or Watchdog(config or WatchdogConfig())
        self.config = self.watchdog.config
        self.memory = self.watchdog.memory
        self.registers = RegisterFile()
        self.record_trace = record_trace
        self.operation_limit = operation_limit
        self.trace: List[DynamicOp] = []
        self.operations_executed = 0
        self.instructions_executed = 0
        self.uops_executed = 0
        # Stack management: the stack grows downward from the top of the
        # stack segment; each frame's locals are bump-allocated below rsp.
        self._stack_top = self.memory.layout.stack.limit - 16
        self.registers.write(STACK_POINTER, self._stack_top)
        self._frame_cursor = [self._stack_top]

    # -- trace helpers --------------------------------------------------------------
    def _record(self, inst: Instruction, address: Optional[int] = None) -> None:
        if not self.record_trace:
            return
        lock_address = None
        if address is not None and inst.is_memory:
            metadata = self.watchdog.get_register_metadata(inst.address_reg)
            if metadata is not None:
                lock_address = metadata.identifier.lock
        self.trace.append(DynamicOp(instruction=inst, address=address,
                                    lock_address=lock_address))

    # -- effective addresses -----------------------------------------------------------
    def _effective_address(self, inst: Instruction) -> int:
        base = self.registers.read(inst.srcs[0])
        return (base + inst.imm) & WORD_MASK

    # -- ALU semantics --------------------------------------------------------------------
    def _alu_value(self, inst: Instruction) -> int:
        op = inst.opcode
        read = self.registers.read
        if op is Opcode.MOV_RR or op is Opcode.FMOV:
            return read(inst.srcs[0])
        if op is Opcode.MOV_RI:
            return inst.imm & WORD_MASK
        if op is Opcode.ADD_RR or op is Opcode.FADD:
            return (read(inst.srcs[0]) + read(inst.srcs[1])) & WORD_MASK
        if op is Opcode.ADD_RI or op is Opcode.LEA:
            return (read(inst.srcs[0]) + inst.imm) & WORD_MASK
        if op is Opcode.SUB_RR:
            return (read(inst.srcs[0]) - read(inst.srcs[1])) & WORD_MASK
        if op is Opcode.SUB_RI:
            return (read(inst.srcs[0]) - inst.imm) & WORD_MASK
        if op is Opcode.MUL_RR or op is Opcode.FMUL:
            return (read(inst.srcs[0]) * read(inst.srcs[1])) & WORD_MASK
        if op is Opcode.DIV_RR or op is Opcode.FDIV:
            divisor = read(inst.srcs[1])
            return (read(inst.srcs[0]) // divisor) & WORD_MASK if divisor else 0
        if op is Opcode.AND_RR:
            return read(inst.srcs[0]) & read(inst.srcs[1])
        if op is Opcode.OR_RR:
            return read(inst.srcs[0]) | read(inst.srcs[1])
        if op is Opcode.XOR_RR:
            return read(inst.srcs[0]) ^ read(inst.srcs[1])
        if op is Opcode.SHL_RI:
            return (read(inst.srcs[0]) << (inst.imm & 63)) & WORD_MASK
        if op is Opcode.SHR_RI:
            return read(inst.srcs[0]) >> (inst.imm & 63)
        if op is Opcode.ADD32_RR:
            return (read(inst.srcs[0]) + read(inst.srcs[1])) & 0xFFFF_FFFF
        if op in (Opcode.CMP_RR, Opcode.CMP_RI):
            return read(inst.srcs[0])
        raise ProgramError(f"no ALU semantics for {op}")

    # -- macro instruction execution ---------------------------------------------------------
    def _execute_macro(self, inst: Instruction, pc: int) -> None:
        self.instructions_executed += 1
        uops = self.watchdog.expand(inst)
        self.uops_executed += sum(uop.uop_cost for uop in uops)

        address: Optional[int] = None
        if inst.is_memory:
            address = self._effective_address(inst)
        self._record(inst, address)

        has_shadow_load = any(u.kind is UopKind.SHADOW_LOAD for u in uops)

        for uop in uops:
            kind = uop.kind
            if kind is UopKind.CHECK:
                assert address is not None
                self.watchdog.check_access(inst.address_reg, address,
                                           int(inst.size), pc=pc)
            elif kind is UopKind.BOUNDS_CHECK:
                # Functionally folded into check_access (which performs the
                # bounds comparison whenever bounds are enabled); the separate
                # µop only matters for timing.
                continue
            elif kind is UopKind.LOAD:
                assert address is not None and inst.dest is not None
                value = self.memory.load(address, int(inst.size))
                self.registers.write(inst.dest, value)
                self.watchdog.note_data_access(address, int(inst.size))
                if not has_shadow_load:
                    self.watchdog.note_non_pointer_load(inst.dest)
            elif kind is UopKind.STORE:
                assert address is not None
                value = self.registers.read(inst.srcs[1])
                self.memory.store(address, value, int(inst.size))
                self.watchdog.note_data_access(address, int(inst.size))
            elif kind is UopKind.SHADOW_LOAD:
                assert address is not None and inst.dest is not None
                self.watchdog.shadow_load(inst.dest, address)
            elif kind is UopKind.SHADOW_STORE:
                assert address is not None
                self.watchdog.shadow_store(address, inst.srcs[1])
            elif kind in (UopKind.ALU, UopKind.MUL, UopKind.DIV, UopKind.FP):
                if inst.dest is not None:
                    self.registers.write(inst.dest, self._alu_value(inst))
                self.watchdog.propagate(inst)
            elif kind in (UopKind.META_SELECT, UopKind.NOP, UopKind.BRANCH,
                          UopKind.LOCK_PUSH, UopKind.LOCK_POP,
                          UopKind.SETIDENT, UopKind.GETIDENT, UopKind.SETBOUNDS):
                # META_SELECT is folded into propagate(); frame µops are
                # handled at the CALL/RETURN operation level; the runtime
                # interface µops are handled by the MALLOC/FREE operations.
                continue
            else:
                raise SimulationError(f"machine cannot execute µop kind {kind}")

    # -- high-level operations ------------------------------------------------------------------
    def _execute_operation(self, operation: Operation, function: Function, pc: int,
                           call_stack: List[Tuple[Function, int]]) -> Optional[int]:
        """Execute one operation; return a new pc when control transfers."""
        kind = operation.kind

        if kind is OpKind.MACRO:
            assert operation.instruction is not None
            self._execute_macro(operation.instruction, pc)
            return None

        if kind is OpKind.MALLOC:
            assert operation.dest is not None
            pointer = self.watchdog.malloc(operation.size, operation.dest)
            self.registers.write(operation.dest, pointer)
            self.instructions_executed += 1
            return None

        if kind is OpKind.FREE:
            assert operation.src is not None
            pointer = self.registers.read(operation.src)
            self.watchdog.free(operation.src, pointer)
            self.instructions_executed += 1
            return None

        if kind is OpKind.STACK_ALLOC:
            assert operation.dest is not None
            self._frame_cursor[-1] -= max(operation.size, 8)
            address = self._frame_cursor[-1] & ~7
            self._frame_cursor[-1] = address
            self.registers.write(operation.dest, address)
            if self.config.enabled:
                metadata = self.watchdog.frames.current_frame_metadata(
                    frame_base=address, frame_size=operation.size)
                self.watchdog.set_register_metadata(operation.dest, metadata)
            self.instructions_executed += 1
            return None

        if kind is OpKind.GLOBAL_ADDR:
            assert operation.dest is not None
            address = self.memory.layout.globals_seg.base + operation.offset
            self.registers.write(operation.dest, address)
            if self.config.enabled:
                self.watchdog.set_register_metadata(operation.dest,
                                                    self.watchdog.global_metadata())
            self.instructions_executed += 1
            return None

        if kind is OpKind.CALL:
            callee = operation.callee
            assert callee is not None
            self.watchdog.on_call()
            new_sp = self.registers.read(STACK_POINTER) - 64
            self.registers.write(STACK_POINTER, new_sp)
            self._frame_cursor.append(new_sp)
            call_stack.append((function, pc + 1))
            self.instructions_executed += 1
            return -1  # signal: enter callee at pc 0

        if kind is OpKind.RETURN:
            self.watchdog.on_return()
            self._frame_cursor.pop()
            if len(self._frame_cursor) == 0:
                self._frame_cursor.append(self._stack_top)
            self.registers.write(STACK_POINTER,
                                 self._frame_cursor[-1])
            self.instructions_executed += 1
            return -2  # signal: return to caller

        raise SimulationError(f"machine cannot execute operation kind {kind}")

    # -- the run loop ------------------------------------------------------------------------------
    def run(self, program: Program, raise_on_violation: bool = False) -> ExecutionResult:
        """Execute ``program`` from its entry point."""
        program.validate()
        for offset in program.initialized_global_pointers:
            self.watchdog.initialize_global_pointer(
                self.memory.layout.globals_seg.base + offset)

        function = program.function(program.entry)
        pc = 0
        call_stack: List[Tuple[Function, int]] = []
        violation: Optional[MemorySafetyViolation] = None

        try:
            while True:
                if self.operations_executed >= self.operation_limit:
                    raise SimulationError("operation limit exceeded (runaway program?)")
                if pc >= len(function.operations):
                    if not call_stack:
                        break
                    function, pc = call_stack.pop()
                    continue
                operation = function.operations[pc]
                self.operations_executed += 1
                transfer = self._execute_operation(operation, function, pc, call_stack)
                if transfer == -1:
                    function = program.function(operation.callee)  # type: ignore[arg-type]
                    pc = 0
                    continue
                if transfer == -2:
                    if not call_stack:
                        break
                    function, pc = call_stack.pop()
                    continue
                pc += 1
        except MemorySafetyViolation as exc:
            violation = exc
            if raise_on_violation:
                raise

        detected = violation is not None or bool(self.watchdog.violations)
        if violation is None and self.watchdog.violations:
            first = self.watchdog.violations[0]
            violation = MemorySafetyViolation(first.message, address=first.address,
                                              pc=first.pc)
            violation.kind = first.kind  # type: ignore[misc]

        return ExecutionResult(
            detected=detected,
            violation=violation,
            operations_executed=self.operations_executed,
            instructions_executed=self.instructions_executed,
            uops_executed=self.uops_executed,
            registers=self.registers,
            trace=self.trace,
        )
