"""Fluent builder API for constructing programs.

The builder is the reproduction's stand-in for writing small C programs: the
examples, the Juliet-style use-after-free suite and many tests construct
programs through it.  Every method appends one operation to the current
function and returns the builder so calls can be chained.

Example (the heap use-after-free of Figure 1, left)::

    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 8)            # p = malloc(8)
        main.mov("r2", "r1")            # q = p
        main.free("r1")                 # free(p)
        main.malloc("r3", 8)            # r = malloc(8)
        main.load("r4", "r2")           # ... = *q   <- dangling dereference
    program = builder.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.errors import ProgramError
from repro.isa.instructions import AccessSize, Instruction, Opcode, PointerHint
from repro.isa.registers import ArchReg, parse_reg
from repro.program.ir import Function, OpKind, Operation, Program

RegLike = Union[str, ArchReg]


def _reg(value: RegLike) -> ArchReg:
    if isinstance(value, ArchReg):
        return value
    return parse_reg(value)


def _size(size_bytes: int) -> AccessSize:
    try:
        return AccessSize(size_bytes)
    except ValueError:
        raise ProgramError(f"unsupported access size {size_bytes}") from None


class FunctionBuilder:
    """Builds one function; obtained from :meth:`ProgramBuilder.function`."""

    def __init__(self, name: str):
        self._function = Function(name=name)

    # -- data movement / arithmetic -------------------------------------------------
    def mov(self, dest: RegLike, src: RegLike) -> "FunctionBuilder":
        """``dest = src`` (propagates pointer metadata, §6.2 case one)."""
        return self._macro(Instruction(Opcode.MOV_RR, dest=_reg(dest), srcs=(_reg(src),)))

    def mov_imm(self, dest: RegLike, value: int) -> "FunctionBuilder":
        """``dest = constant`` (destination metadata becomes invalid)."""
        return self._macro(Instruction(Opcode.MOV_RI, dest=_reg(dest), imm=value))

    def add(self, dest: RegLike, a: RegLike, b: RegLike) -> "FunctionBuilder":
        """``dest = a + b`` (either source may be the pointer; select, §6.2)."""
        return self._macro(Instruction(Opcode.ADD_RR, dest=_reg(dest),
                                       srcs=(_reg(a), _reg(b))))

    def add_imm(self, dest: RegLike, src: RegLike, imm: int) -> "FunctionBuilder":
        """``dest = src + imm`` (pointer arithmetic; metadata copied)."""
        return self._macro(Instruction(Opcode.ADD_RI, dest=_reg(dest),
                                       srcs=(_reg(src),), imm=imm))

    def sub_imm(self, dest: RegLike, src: RegLike, imm: int) -> "FunctionBuilder":
        return self._macro(Instruction(Opcode.SUB_RI, dest=_reg(dest),
                                       srcs=(_reg(src),), imm=imm))

    def mul(self, dest: RegLike, a: RegLike, b: RegLike) -> "FunctionBuilder":
        """``dest = a * b`` (never a pointer; metadata invalidated)."""
        return self._macro(Instruction(Opcode.MUL_RR, dest=_reg(dest),
                                       srcs=(_reg(a), _reg(b))))

    def xor(self, dest: RegLike, a: RegLike, b: RegLike) -> "FunctionBuilder":
        return self._macro(Instruction(Opcode.XOR_RR, dest=_reg(dest),
                                       srcs=(_reg(a), _reg(b))))

    # -- memory -----------------------------------------------------------------------
    def load(self, dest: RegLike, address: RegLike, offset: int = 0,
             size: int = 8, hint: PointerHint = PointerHint.UNKNOWN) -> "FunctionBuilder":
        """``dest = memory[address + offset]``."""
        return self._macro(Instruction(Opcode.LOAD, dest=_reg(dest),
                                       srcs=(_reg(address),), imm=offset,
                                       size=_size(size), pointer_hint=hint))

    def store(self, address: RegLike, value: RegLike, offset: int = 0,
              size: int = 8, hint: PointerHint = PointerHint.UNKNOWN) -> "FunctionBuilder":
        """``memory[address + offset] = value``."""
        return self._macro(Instruction(Opcode.STORE, srcs=(_reg(address), _reg(value)),
                                       imm=offset, size=_size(size), pointer_hint=hint))

    def load_ptr(self, dest: RegLike, address: RegLike, offset: int = 0) -> "FunctionBuilder":
        """A load the compiler annotated as loading a pointer (§5.2)."""
        return self.load(dest, address, offset, hint=PointerHint.POINTER)

    def store_ptr(self, address: RegLike, value: RegLike, offset: int = 0) -> "FunctionBuilder":
        """A store the compiler annotated as storing a pointer (§5.2)."""
        return self.store(address, value, offset, hint=PointerHint.POINTER)

    def fload(self, dest: RegLike, address: RegLike, offset: int = 0) -> "FunctionBuilder":
        """Floating-point load (never a pointer operation, §5.1)."""
        return self._macro(Instruction(Opcode.FLOAD, dest=_reg(dest),
                                       srcs=(_reg(address),), imm=offset))

    def fstore(self, address: RegLike, value: RegLike, offset: int = 0) -> "FunctionBuilder":
        return self._macro(Instruction(Opcode.FSTORE, srcs=(_reg(address), _reg(value)),
                                       imm=offset))

    # -- allocation / deallocation -------------------------------------------------------
    def malloc(self, dest: RegLike, size: int) -> "FunctionBuilder":
        """``dest = malloc(size)`` through the instrumented runtime."""
        self._function.append(Operation(kind=OpKind.MALLOC, dest=_reg(dest), size=size))
        return self

    def free(self, pointer: RegLike) -> "FunctionBuilder":
        """``free(pointer)`` through the instrumented runtime."""
        self._function.append(Operation(kind=OpKind.FREE, src=_reg(pointer)))
        return self

    def stack_alloc(self, dest: RegLike, size: int) -> "FunctionBuilder":
        """``dest = &local`` — address of ``size`` bytes in the current frame."""
        self._function.append(Operation(kind=OpKind.STACK_ALLOC, dest=_reg(dest), size=size))
        self._function.frame_bytes += size
        return self

    def global_addr(self, dest: RegLike, offset: int = 0) -> "FunctionBuilder":
        """``dest = &global`` — PC-relative global address (global id, §7)."""
        self._function.append(Operation(kind=OpKind.GLOBAL_ADDR, dest=_reg(dest),
                                        offset=offset))
        return self

    # -- control ----------------------------------------------------------------------------
    def call(self, callee: str) -> "FunctionBuilder":
        """Call another function (triggers the Figure 3c identifier push)."""
        self._function.append(Operation(kind=OpKind.CALL, callee=callee))
        return self

    def ret(self) -> "FunctionBuilder":
        """Return from the current function (Figure 3d identifier pop)."""
        self._function.append(Operation(kind=OpKind.RETURN))
        return self

    def nop(self) -> "FunctionBuilder":
        return self._macro(Instruction(Opcode.NOP))

    # -- plumbing -------------------------------------------------------------------------------
    def _macro(self, instruction: Instruction) -> "FunctionBuilder":
        self._function.append(Operation(kind=OpKind.MACRO, instruction=instruction))
        return self

    def build(self) -> Function:
        return self._function


class ProgramBuilder:
    """Builds a whole :class:`~repro.program.ir.Program`."""

    def __init__(self, entry: str = "main"):
        self._program = Program(entry=entry)

    @contextmanager
    def function(self, name: str) -> Iterator[FunctionBuilder]:
        """Context manager adding a function when the block exits."""
        builder = FunctionBuilder(name)
        yield builder
        self._program.add_function(builder.build())

    def add_function(self, function: Function) -> "ProgramBuilder":
        self._program.add_function(function)
        return self

    def build(self) -> Program:
        self._program.validate()
        return self._program
