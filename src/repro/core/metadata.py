"""Per-pointer metadata.

Every pointer — in a register (sidecar, §3.4) or in memory (shadow space,
§3.3) — carries an allocation :class:`~repro.core.identifier.Identifier`.
With the bounds extension (§8) the metadata widens to also carry a 64-bit
``base`` and 64-bit ``bound``, for a total of 256 bits per pointer.

``None`` is used throughout the library to mean "no metadata / not a pointer"
(the invalid mapping "−" of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.identifier import GLOBAL_KEY, Identifier
from repro.errors import ProgramError

#: Re-exported for convenience: the key of the always-valid global identifier.
GLOBAL_IDENTIFIER_KEY = GLOBAL_KEY

#: Metadata sizes in 64-bit words (shadow-space footprint and shadow-µop
#: width): identifier only = 128 bits; identifier + base/bound = 256 bits.
METADATA_WORDS_UAF = 2
METADATA_WORDS_FULL = 4


@dataclass(frozen=True)
class PointerMetadata:
    """Identifier plus optional base/bound attached to a pointer value."""

    identifier: Identifier
    base: Optional[int] = None
    bound: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.base is None) != (self.bound is None):
            raise ProgramError("base and bound must be set together")
        if self.base is not None and self.bound is not None and self.bound < self.base:
            raise ProgramError(f"bound {self.bound:#x} precedes base {self.base:#x}")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def for_allocation(cls, identifier: Identifier, base: int, size: int,
                       with_bounds: bool = True) -> "PointerMetadata":
        """Metadata for a fresh allocation of ``size`` bytes at ``base``."""
        if with_bounds:
            return cls(identifier=identifier, base=base, bound=base + size)
        return cls(identifier=identifier)

    # -- properties -----------------------------------------------------------
    @property
    def has_bounds(self) -> bool:
        return self.base is not None

    @property
    def is_global(self) -> bool:
        return self.identifier.key == GLOBAL_IDENTIFIER_KEY

    @property
    def size_words(self) -> int:
        """Shadow-space footprint of this record in 64-bit words."""
        return METADATA_WORDS_FULL if self.has_bounds else METADATA_WORDS_UAF

    # -- checks ----------------------------------------------------------------
    def contains(self, address: int, access_size: int = 1) -> bool:
        """Byte-granularity bounds test for an access at ``address`` (§8)."""
        if not self.has_bounds:
            return True
        assert self.base is not None and self.bound is not None
        return self.base <= address and address + access_size <= self.bound

    def with_bounds(self, base: int, bound: int) -> "PointerMetadata":
        """Return a copy carrying the given bounds (``setbounds``)."""
        return PointerMetadata(identifier=self.identifier, base=base, bound=bound)

    def __str__(self) -> str:
        if self.has_bounds:
            return (f"meta({self.identifier}, base={self.base:#x}, "
                    f"bound={self.bound:#x})")
        return f"meta({self.identifier})"
