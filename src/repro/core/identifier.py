"""Lock-and-key allocation identifiers (§4.1).

Each memory allocation receives a unique identifier made of two parts:

* a **key** — a 64-bit unsigned integer that is never reused, and
* a **lock** — the address of an 8-byte *lock location* in a dedicated region
  of memory.

The invariant is: *the identifier is valid iff the word at the lock location
equals the key*.  Allocation writes the key into the lock location;
deallocation overwrites it with ``INVALID``; because keys are unique, a lock
location reused by a later allocation can never spuriously match a stale
key.  A validity check is therefore a single load plus an equality compare
(Figure 4b).

Lock locations themselves are recycled through a LIFO free list (§4.2), which
is what gives the lock location cache its locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import OutOfMemoryError, ProgramError
from repro.isa.registers import WORD_BYTES
from repro.memory.address_space import AddressSpace, Segment

#: Value written to a lock location on deallocation.  Key generation starts
#: above zero so no valid key ever equals it.
INVALID_KEY = 0

#: Key reserved for the single *global identifier* shared by all pointers to
#: the global/data segment (§7).  Its lock location always holds this key, so
#: checks on global pointers always pass.
GLOBAL_KEY = 1

#: First key handed out for ordinary allocations.
FIRST_DYNAMIC_KEY = 2


@dataclass(frozen=True)
class Identifier:
    """A lock-and-key identifier: 64-bit key plus 64-bit lock address."""

    key: int
    lock: int

    def __post_init__(self) -> None:
        if self.key < 0 or self.lock < 0:
            raise ProgramError("identifier key/lock must be non-negative")

    @property
    def is_global(self) -> bool:
        return self.key == GLOBAL_KEY

    def __str__(self) -> str:
        return f"id(key={self.key}, lock={self.lock:#x})"


class KeyGenerator:
    """Monotonically increasing 64-bit key source (keys are never reused)."""

    def __init__(self, first_key: int = FIRST_DYNAMIC_KEY):
        if first_key <= INVALID_KEY:
            raise ProgramError("first key must be greater than the INVALID key")
        self._next = first_key

    def next_key(self) -> int:
        key = self._next
        self._next += 1
        return key

    @property
    def keys_issued(self) -> int:
        return self._next - FIRST_DYNAMIC_KEY


class LockLocationAllocator:
    """Allocates 8-byte lock locations from a dedicated memory region.

    Freed lock locations are recycled LIFO (§4.2: "lock locations are
    reallocated using a LIFO free list"), which concentrates the working set
    of lock locations and is the reason a tiny 4KB lock location cache is
    effective.
    """

    def __init__(self, memory: AddressSpace, region: Optional[Segment] = None):
        self.memory = memory
        self.region = region or memory.layout.lock_region
        self._bump = self.region.base
        self._free_list: List[int] = []
        self.allocated = 0
        self.recycled = 0

    def allocate(self) -> int:
        """Return the address of a fresh (or recycled) lock location."""
        if self._free_list:
            self.recycled += 1
            self.allocated += 1
            return self._free_list.pop()
        if self._bump + WORD_BYTES > self.region.limit:
            raise OutOfMemoryError("lock location region exhausted")
        address = self._bump
        self._bump += WORD_BYTES
        self.allocated += 1
        return address

    def release(self, lock_address: int) -> None:
        """Return a lock location to the LIFO free list."""
        if not self.region.contains(lock_address):
            raise ProgramError(f"lock address {lock_address:#x} outside lock region")
        self._free_list.append(lock_address)

    @property
    def live_lock_locations(self) -> int:
        """Lock locations currently in use (allocated and not yet released)."""
        total_distinct = (self._bump - self.region.base) // WORD_BYTES
        return total_distinct - len(self._free_list)

    @property
    def free_list_depth(self) -> int:
        return len(self._free_list)


class IdentifierTable:
    """Issues identifiers and maintains the lock-location invariant in memory.

    This is the mechanism shared by the heap runtime (software, Figure 3a/3b)
    and the hardware stack-frame manager (Figure 3c/3d): allocate a key and a
    lock location, write the key to the lock location; on deallocation write
    ``INVALID_KEY`` and recycle the lock location.
    """

    def __init__(self, memory: AddressSpace,
                 keys: Optional[KeyGenerator] = None,
                 locks: Optional[LockLocationAllocator] = None):
        self.memory = memory
        self.keys = keys or KeyGenerator()
        self.locks = locks or LockLocationAllocator(memory)
        self._global: Optional[Identifier] = None

    def allocate_identifier(self) -> Identifier:
        """Create a new valid identifier (key written to its lock location)."""
        key = self.keys.next_key()
        lock = self.locks.allocate()
        self.memory.store_word(lock, key)
        return Identifier(key=key, lock=lock)

    def invalidate(self, ident: Identifier) -> None:
        """Mark ``ident`` invalid and recycle its lock location."""
        self.memory.store_word(ident.lock, INVALID_KEY)
        self.locks.release(ident.lock)

    def is_valid(self, ident: Identifier) -> bool:
        """Functional validity check: does the lock location hold the key?"""
        return self.memory.load_word(ident.lock) == ident.key

    def global_identifier(self) -> Identifier:
        """The single always-valid identifier for the global segment (§7)."""
        if self._global is None:
            lock = self.locks.allocate()
            self.memory.store_word(lock, GLOBAL_KEY)
            self._global = Identifier(key=GLOBAL_KEY, lock=lock)
        return self._global
