"""µop injection (§3, Figures 2 and 3).

Watchdog augments instruction execution by injecting µops around the baseline
µops produced by the decoder:

* before every load and store: a ``CHECK`` µop that validates the address
  register's identifier (§3.2); with the two-µop bounds configuration an
  additional ``BOUNDS_CHECK`` µop (§8),
* for loads/stores classified as pointer operations: a ``SHADOW_LOAD`` /
  ``SHADOW_STORE`` µop that moves metadata between the shadow space and the
  destination/source register's sidecar (§3.3, Figure 2a/2b),
* for two-register-source arithmetic (either input may be the pointer): a
  ``META_SELECT`` µop (§6.2); single-source propagation and invalidation are
  handled at rename time and cost no µop,
* on calls and returns: the four-µop stack-frame identifier sequences of
  Figure 3c/3d, modelled as one ``LOCK_PUSH`` / ``LOCK_POP`` µop with
  ``uop_cost = 4``.

The injector also accumulates the per-category µop counts that drive the
Figure 8 breakdown (checks / pointer loads / pointer stores / other).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import BoundsCheckMode, WatchdogConfig
from repro.core.pointer_id import PointerIdentifier, make_identifier
from repro.isa.decoder import Decoder
from repro.isa.instructions import (
    Instruction,
    Opcode,
    SELECT_PROPAGATORS,
)
from repro.isa.microops import MicroOp, UopKind
from repro.isa.registers import STACK_POINTER


@dataclass
class InjectionStats:
    """Dynamic µop counts, split the way Figure 8 reports them."""

    baseline_uops: int = 0
    check_uops: int = 0
    bounds_check_uops: int = 0
    pointer_load_uops: int = 0
    pointer_store_uops: int = 0
    select_uops: int = 0
    frame_uops: int = 0
    other_uops: int = 0

    @property
    def injected_uops(self) -> int:
        return (self.check_uops + self.bounds_check_uops + self.pointer_load_uops
                + self.pointer_store_uops + self.select_uops + self.frame_uops
                + self.other_uops)

    @property
    def total_uops(self) -> int:
        return self.baseline_uops + self.injected_uops

    def overhead_fraction(self) -> float:
        """Injected µops as a fraction of baseline µops (Figure 8 bar height)."""
        if self.baseline_uops == 0:
            return 0.0
        return self.injected_uops / self.baseline_uops

    def breakdown(self) -> dict:
        """Figure 8 segments as fractions of the baseline µop count."""
        base = max(self.baseline_uops, 1)
        return {
            "checks": (self.check_uops + self.bounds_check_uops) / base,
            "pointer_loads": self.pointer_load_uops / base,
            "pointer_stores": self.pointer_store_uops / base,
            "other": (self.select_uops + self.frame_uops + self.other_uops) / base,
        }


class UopInjector:
    """Wraps the decoder and injects Watchdog µops per the configuration."""

    def __init__(self, config: WatchdogConfig,
                 pointer_identifier: Optional[PointerIdentifier] = None,
                 decoder: Optional[Decoder] = None):
        self.config = config
        self.decoder = decoder or Decoder()
        self.pointer_identifier = pointer_identifier or make_identifier(config.conservative)
        self.stats = InjectionStats()
        #: Stamp of the most recent :meth:`expand` call.  Every µop of one
        #: expansion carries the same stamp, and stamps increase monotonically
        #: per dynamic macro instance, so the timing model can count macro
        #: instructions without relying on (reusable) object identity.
        self.last_macro_seq = -1

    # -- helpers -----------------------------------------------------------------
    def _check_uops(self, inst: Instruction) -> List[MicroOp]:
        """The check µop(s) inserted before a memory access."""
        address_reg = inst.address_reg
        assert address_reg is not None
        uops = [MicroOp(kind=UopKind.CHECK, srcs=(address_reg,),
                        meta_srcs=(address_reg,), imm=inst.imm, size=inst.size,
                        injected=True, macro=inst)]
        self.stats.check_uops += 1
        if self.config.bounds_mode is BoundsCheckMode.SEPARATE_UOP:
            uops.append(MicroOp(kind=UopKind.BOUNDS_CHECK, srcs=(address_reg,),
                                meta_srcs=(address_reg,), imm=inst.imm,
                                size=inst.size, injected=True, macro=inst))
            self.stats.bounds_check_uops += 1
        return uops

    def _shadow_uop_cost(self) -> int:
        """Shadow transfers widen with the bounds extension (256-bit metadata
        needs twice the shadow traffic, §8)."""
        return 2 if self.config.bounds_enabled else 1

    # -- main entry point -----------------------------------------------------------
    def expand(self, inst: Instruction) -> List[MicroOp]:
        """Decode ``inst`` and inject the Watchdog µops around it.

        Every returned µop is stamped with a fresh ``macro_seq``: one stamp
        per dynamic expansion, shared by all µops of the expansion.
        """
        uops = self._expand(inst)
        self.last_macro_seq = stamp = self.last_macro_seq + 1
        for uop in uops:
            uop.macro_seq = stamp
        return uops

    def _expand(self, inst: Instruction) -> List[MicroOp]:
        baseline = self.decoder.decode(inst)
        self.stats.baseline_uops += sum(uop.uop_cost for uop in baseline)

        if not self.config.enabled:
            return baseline

        uops: List[MicroOp] = []
        op = inst.opcode

        if inst.is_load:
            is_pointer = self.pointer_identifier.is_pointer_operation(inst)
            uops.extend(self._check_uops(inst))
            uops.extend(baseline)
            if is_pointer:
                shadow = MicroOp(kind=UopKind.SHADOW_LOAD, dest=None,
                                 srcs=(inst.srcs[0],), meta_dest=inst.dest,
                                 meta_srcs=(inst.srcs[0],), imm=inst.imm,
                                 uop_cost=self._shadow_uop_cost(),
                                 injected=True, macro=inst)
                uops.append(shadow)
                self.stats.pointer_load_uops += shadow.uop_cost
            return uops

        if inst.is_store:
            is_pointer = self.pointer_identifier.is_pointer_operation(inst)
            uops.extend(self._check_uops(inst))
            if is_pointer:
                shadow = MicroOp(kind=UopKind.SHADOW_STORE, dest=None,
                                 srcs=(inst.srcs[0],),
                                 meta_srcs=(inst.srcs[0], inst.srcs[1]),
                                 imm=inst.imm, uop_cost=self._shadow_uop_cost(),
                                 injected=True, macro=inst)
                uops.append(shadow)
                self.stats.pointer_store_uops += shadow.uop_cost
            uops.extend(baseline)
            return uops

        if op is Opcode.CALL:
            uops.extend(baseline)
            frame = MicroOp(kind=UopKind.LOCK_PUSH, dest=STACK_POINTER,
                            meta_dest=STACK_POINTER, uop_cost=4, injected=True,
                            macro=inst)
            uops.append(frame)
            self.stats.frame_uops += frame.uop_cost
            return uops

        if op is Opcode.RET:
            frame = MicroOp(kind=UopKind.LOCK_POP, dest=STACK_POINTER,
                            meta_dest=STACK_POINTER, uop_cost=4, injected=True,
                            macro=inst)
            uops.append(frame)
            self.stats.frame_uops += frame.uop_cost
            uops.extend(baseline)
            return uops

        if op in SELECT_PROPAGATORS:
            uops.extend(baseline)
            select = MicroOp(kind=UopKind.META_SELECT, dest=None,
                             meta_dest=inst.dest, meta_srcs=inst.srcs,
                             injected=True, macro=inst)
            uops.append(select)
            self.stats.select_uops += 1
            return uops

        if op in (Opcode.SETIDENT, Opcode.GETIDENT, Opcode.SETBOUNDS):
            # Runtime interface instructions; baseline accounting already
            # counted their own µop, the extra lock-location write/read is
            # charged as "other".
            self.stats.other_uops += 1
            return baseline

        return baseline

    def expand_block(self, instructions) -> List[MicroOp]:
        """Expand a sequence of macro instructions into one µop list."""
        uops: List[MicroOp] = []
        for inst in instructions:
            uops.extend(self.expand(inst))
        return uops


# -- template compilation ------------------------------------------------------------
#
# For a fixed configuration (and the default, stateless pointer identifiers)
# the expansion of a macro instruction is a pure function of the instruction's
# *static identity*: opcode, register operands, access size and pointer hint.
# The compiled trace pipeline therefore runs the injector once per identity,
# snapshots the µop list and the statistics it contributed, and replays that
# template for every later dynamic instance — a list lookup instead of
# re-running decode + injection per instance.

#: Field order used by template statistic deltas (mirrors InjectionStats).
STAT_FIELDS = ("baseline_uops", "check_uops", "bounds_check_uops",
               "pointer_load_uops", "pointer_store_uops", "select_uops",
               "frame_uops", "other_uops")


@dataclass(frozen=True)
class InjectionTemplate:
    """The precompiled expansion of one static instruction identity.

    ``uops`` is the exact µop list the injector produced (shared, never
    mutated); ``stat_delta`` / ``pointer_delta`` are the per-expansion
    contributions to :class:`InjectionStats` and
    :class:`~repro.core.pointer_id.PointerIdStats`, so a trace's totals are
    ``sum(instances(t) * t.delta for t in templates)`` — bit-identical to
    accumulating them one dynamic instance at a time.
    """

    uops: tuple
    stat_delta: tuple
    pointer_delta: tuple

    @property
    def total_cost(self) -> int:
        return sum(u.uop_cost for u in self.uops)


def stats_snapshot(stats: InjectionStats) -> tuple:
    """The stat fields as a plain tuple (for cheap delta computation)."""
    return tuple(getattr(stats, name) for name in STAT_FIELDS)


def compile_template(injector: UopInjector, inst: Instruction,
                     expand=None) -> InjectionTemplate:
    """Run one expansion of ``inst`` and capture the µop list + stat deltas.

    ``expand`` defaults to the injector's raw expansion; callers that wrap
    the injector (e.g. the trace expander's copy-elimination ablation, which
    appends its own µop and contributes to the statistics) pass their full
    expansion so the template captures exactly what one dynamic instance
    would have produced.
    """
    identifier = injector.pointer_identifier
    before = stats_snapshot(injector.stats)
    before_ptr = (identifier.stats.memory_ops, identifier.stats.pointer_ops)
    uops = expand(inst) if expand is not None else injector._expand(inst)
    after = stats_snapshot(injector.stats)
    after_ptr = (identifier.stats.memory_ops, identifier.stats.pointer_ops)
    return InjectionTemplate(
        uops=tuple(uops),
        stat_delta=tuple(a - b for a, b in zip(after, before)),
        pointer_delta=(after_ptr[0] - before_ptr[0], after_ptr[1] - before_ptr[1]),
    )
