"""Decoupled register metadata and rename-time copy elimination (§6).

Each architectural register maps to *two* physical registers: one for the
data value and one for the 128-bit (or 256-bit, with bounds) metadata.  The
map table therefore holds a pair of mappings per logical register
(Figure 6).  Three propagation cases are handled at rename:

1. single-source operations (move, add-immediate, …) copy the metadata by
   *remapping* — the destination's metadata mapping is set to the source's
   metadata physical register, no µop executes and no value is copied
   (physical register sharing à la RENO [30]),
2. operations that can never produce a pointer set the destination's metadata
   mapping to the invalid mapping "−",
3. two-register-source operations where either input may be the pointer get a
   ``META_SELECT`` µop (injected earlier); the renamer allocates a fresh
   metadata physical register for its result.

Because several logical registers can share one metadata physical register,
the metadata physical registers are reference counted [33] and freed only
when the last mapping is overwritten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import WatchdogConfig
from repro.errors import SimulationError
from repro.isa.instructions import (
    Instruction,
    NON_POINTER_PRODUCERS,
    Opcode,
    SELECT_PROPAGATORS,
    SINGLE_SOURCE_PROPAGATORS,
)
from repro.isa.microops import MicroOp, UopKind
from repro.isa.registers import ArchReg

#: Sentinel physical register id for the invalid metadata mapping "−".
INVALID_MAPPING = -1


@dataclass
class RenameStats:
    """Counters for the metadata renaming machinery."""

    metadata_copies_eliminated: int = 0
    metadata_invalidations: int = 0
    metadata_registers_allocated: int = 0
    metadata_registers_freed: int = 0
    select_allocations: int = 0


@dataclass
class RenameResult:
    """Physical metadata mapping changes performed for one µop."""

    uop: MicroOp
    meta_sources: Tuple[int, ...] = ()
    meta_dest: int = INVALID_MAPPING
    eliminated_copy: bool = False


class ReferenceCountedPool:
    """Pool of metadata physical registers with reference counting [33]."""

    def __init__(self, size: int):
        self.size = size
        self._free: List[int] = list(range(size - 1, -1, -1))
        self._refcounts: Dict[int, int] = {}

    def allocate(self) -> int:
        if not self._free:
            raise SimulationError("metadata physical register file exhausted")
        reg = self._free.pop()
        self._refcounts[reg] = 1
        return reg

    def add_reference(self, reg: int) -> None:
        if reg == INVALID_MAPPING:
            return
        self._refcounts[reg] = self._refcounts.get(reg, 0) + 1

    def release(self, reg: int) -> bool:
        """Drop one reference; return True if the register was freed."""
        if reg == INVALID_MAPPING:
            return False
        count = self._refcounts.get(reg, 0) - 1
        if count <= 0:
            self._refcounts.pop(reg, None)
            self._free.append(reg)
            return True
        self._refcounts[reg] = count
        return False

    def refcount(self, reg: int) -> int:
        return self._refcounts.get(reg, 0)

    @property
    def free_registers(self) -> int:
        return len(self._free)

    @property
    def live_registers(self) -> int:
        return self.size - len(self._free)


class MetadataRenamer:
    """Map-table extension holding the per-register metadata mappings."""

    def __init__(self, config: Optional[WatchdogConfig] = None,
                 num_metadata_physical_registers: int = 160):
        self.config = config or WatchdogConfig()
        self.pool = ReferenceCountedPool(num_metadata_physical_registers)
        #: logical register -> metadata physical register (or INVALID_MAPPING).
        self._maptable: Dict[ArchReg, int] = {}
        self.stats = RenameStats()

    # -- map-table helpers -----------------------------------------------------
    def mapping_of(self, reg: ArchReg) -> int:
        return self._maptable.get(reg, INVALID_MAPPING)

    def _set_mapping(self, reg: ArchReg, new_mapping: int) -> None:
        old = self._maptable.get(reg, INVALID_MAPPING)
        if old != INVALID_MAPPING:
            if self.pool.release(old):
                self.stats.metadata_registers_freed += 1
        if new_mapping == INVALID_MAPPING:
            self._maptable[reg] = INVALID_MAPPING
        else:
            self._maptable[reg] = new_mapping

    def assign_fresh(self, reg: ArchReg) -> int:
        """Allocate a fresh metadata physical register and map ``reg`` to it.

        Used when metadata *values* arrive from outside the register dataflow:
        shadow loads, ``setident``, and the stack-frame manager writing the
        stack pointer's identifier.
        """
        fresh = self.pool.allocate()
        self.stats.metadata_registers_allocated += 1
        self._set_mapping(reg, fresh)
        return fresh

    def invalidate(self, reg: ArchReg) -> None:
        """Map ``reg`` to the invalid mapping (non-pointer value)."""
        self.stats.metadata_invalidations += 1
        self._set_mapping(reg, INVALID_MAPPING)

    # -- per-µop renaming -----------------------------------------------------------
    def rename(self, uop: MicroOp) -> RenameResult:
        """Apply the metadata-mapping rules of §6.2 to one µop."""
        macro = uop.macro
        meta_sources = tuple(self.mapping_of(r) for r in uop.meta_srcs)

        # Watchdog µops that *produce* register metadata.
        if uop.kind in (UopKind.SHADOW_LOAD, UopKind.SETIDENT, UopKind.LOCK_PUSH,
                        UopKind.LOCK_POP, UopKind.SETBOUNDS):
            dest = uop.meta_dest
            if dest is None:
                return RenameResult(uop=uop, meta_sources=meta_sources)
            fresh = self.assign_fresh(dest)
            return RenameResult(uop=uop, meta_sources=meta_sources, meta_dest=fresh)

        if uop.kind is UopKind.META_SELECT:
            dest = uop.meta_dest
            if dest is None:
                return RenameResult(uop=uop, meta_sources=meta_sources)
            fresh = self.pool.allocate()
            self.stats.metadata_registers_allocated += 1
            self.stats.select_allocations += 1
            self._set_mapping(dest, fresh)
            return RenameResult(uop=uop, meta_sources=meta_sources, meta_dest=fresh)

        # Baseline µops: propagation policy depends on the macro opcode.
        if macro is None or uop.dest is None or not uop.dest.is_int:
            return RenameResult(uop=uop, meta_sources=meta_sources)

        opcode = macro.opcode

        if uop.kind is UopKind.LOAD:
            # The data load itself does not change metadata; the paired
            # SHADOW_LOAD (if any) installs it.  A non-pointer load leaves the
            # destination with no valid metadata.
            if not self.config.enabled:
                return RenameResult(uop=uop, meta_sources=meta_sources)
            self.invalidate(uop.dest)
            return RenameResult(uop=uop, meta_sources=meta_sources)

        if opcode in SINGLE_SOURCE_PROPAGATORS and self.config.copy_elimination:
            source_mapping = self.mapping_of(macro.srcs[0]) if macro.srcs else INVALID_MAPPING
            self.pool.add_reference(source_mapping)
            self._set_mapping(uop.dest, source_mapping)
            self.stats.metadata_copies_eliminated += 1
            return RenameResult(uop=uop, meta_sources=(source_mapping,),
                                meta_dest=source_mapping, eliminated_copy=True)

        if opcode in SINGLE_SOURCE_PROPAGATORS and not self.config.copy_elimination:
            # Ablation: without copy elimination the metadata must be copied
            # into a fresh physical register by an explicit µop (charged by
            # the caller); the mapping still updates.
            fresh = self.pool.allocate()
            self.stats.metadata_registers_allocated += 1
            self._set_mapping(uop.dest, fresh)
            return RenameResult(uop=uop, meta_sources=meta_sources, meta_dest=fresh)

        if opcode in NON_POINTER_PRODUCERS or opcode is Opcode.MOV_RI:
            self.invalidate(uop.dest)
            return RenameResult(uop=uop, meta_sources=meta_sources)

        if opcode in SELECT_PROPAGATORS:
            # The mapping is updated by the paired META_SELECT µop.
            return RenameResult(uop=uop, meta_sources=meta_sources)

        return RenameResult(uop=uop, meta_sources=meta_sources)

    # -- introspection -------------------------------------------------------------
    def live_metadata_registers(self) -> int:
        return self.pool.live_registers

    def mapped_registers(self) -> Dict[ArchReg, int]:
        return {reg: mapping for reg, mapping in self._maptable.items()
                if mapping != INVALID_MAPPING}
