"""Watchdog configuration.

The evaluation explores several configurations of the same hardware:

* pointer identification: conservative vs ISA-assisted (§5, Figures 5 and 7),
* the dedicated lock location cache: present or absent (§4.2, Figure 9),
* the bounds extension: disabled, fused into the existing check µop, or
  implemented as a second injected µop (§8, Figure 11),
* idealized shadow accesses (cache-pressure isolation, §9.3),
* rename-time metadata copy elimination (§6.2; disabling it is an ablation
  this reproduction adds to quantify the design choice).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class PointerIdentificationMode(enum.Enum):
    """How loads/stores are classified as pointer operations (§5)."""

    CONSERVATIVE = "conservative"
    ISA_ASSISTED = "isa-assisted"


class BoundsCheckMode(enum.Enum):
    """Whether and how bounds checking is performed (§8)."""

    NONE = "none"
    FUSED_SINGLE_UOP = "fused-1uop"
    SEPARATE_UOP = "separate-2uop"


@dataclass(frozen=True)
class WatchdogConfig:
    """Complete configuration of the Watchdog hardware."""

    enabled: bool = True
    pointer_identification: PointerIdentificationMode = PointerIdentificationMode.ISA_ASSISTED
    bounds_mode: BoundsCheckMode = BoundsCheckMode.NONE
    lock_cache_enabled: bool = True
    ideal_shadow: bool = False
    copy_elimination: bool = True
    #: Raise on the first violation (production behaviour).  When False the
    #: violation is recorded and execution continues, which some experiments
    #: use to count every violation in a run.
    halt_on_violation: bool = True

    # -- derived properties ------------------------------------------------------
    @property
    def bounds_enabled(self) -> bool:
        return self.bounds_mode is not BoundsCheckMode.NONE

    @property
    def metadata_words(self) -> int:
        """Shadow metadata footprint per pointer in 64-bit words (§8)."""
        return 4 if self.bounds_enabled else 2

    @property
    def conservative(self) -> bool:
        return self.pointer_identification is PointerIdentificationMode.CONSERVATIVE

    # -- named configurations used throughout the evaluation ----------------------
    @classmethod
    def disabled(cls) -> "WatchdogConfig":
        """An unprotected baseline (no checks, no metadata, no extra µops)."""
        return cls(enabled=False)

    @classmethod
    def conservative_uaf(cls) -> "WatchdogConfig":
        """Use-after-free checking with conservative pointer identification."""
        return cls(pointer_identification=PointerIdentificationMode.CONSERVATIVE)

    @classmethod
    def isa_assisted_uaf(cls) -> "WatchdogConfig":
        """Use-after-free checking with ISA-assisted pointer identification
        (the paper's headline 15% configuration)."""
        return cls(pointer_identification=PointerIdentificationMode.ISA_ASSISTED)

    @classmethod
    def no_lock_cache(cls) -> "WatchdogConfig":
        """ISA-assisted UAF checking without the lock location cache (Fig 9)."""
        return cls(lock_cache_enabled=False)

    @classmethod
    def full_safety_fused(cls) -> "WatchdogConfig":
        """UAF + bounds with the bound check fused into the check µop (Fig 11)."""
        return cls(bounds_mode=BoundsCheckMode.FUSED_SINGLE_UOP)

    @classmethod
    def full_safety_two_uops(cls) -> "WatchdogConfig":
        """UAF + bounds with a separate bounds-check µop (Fig 11, 24% average)."""
        return cls(bounds_mode=BoundsCheckMode.SEPARATE_UOP)

    @classmethod
    def idealized_shadow(cls) -> "WatchdogConfig":
        """ISA-assisted UAF with idealized shadow accesses (§9.3 ablation)."""
        return cls(ideal_shadow=True)

    def with_(self, **kwargs) -> "WatchdogConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
