"""Check semantics: identifier validity and bounds.

The check µop "reads the metadata from a register (which contains both the
lock and key), loads the value currently at the lock location, and then
compares it to the key" (§4.1, Figure 4b).  A mismatch means the allocation
was freed — the access is a dangling-pointer dereference and the hardware
raises an exception.

The bounds extension adds two inequality comparisons against the pointer's
base and bound (§8); no additional memory access is required because base and
bound travel with the pointer metadata.

Memory accesses through registers that carry *no* metadata (non-pointer
values, e.g. an integer forged into an address) are treated according to the
paper's model: without metadata there is no identifier to validate, so the
conservative hardware response is to flag the access — this is what makes
Watchdog effective against manufactured pointers.  The global identifier (§7)
always passes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.metadata import PointerMetadata
from repro.errors import BoundsError, UseAfterFreeError
from repro.memory.address_space import AddressSpace


class CheckOutcome(enum.Enum):
    """Result of a check µop."""

    PASS = "pass"
    USE_AFTER_FREE = "use-after-free"
    OUT_OF_BOUNDS = "out-of-bounds"
    NO_METADATA = "no-metadata"


@dataclass
class CheckStats:
    """Counters for the checking machinery."""

    identifier_checks: int = 0
    bounds_checks: int = 0
    failures: int = 0
    use_after_free: int = 0
    out_of_bounds: int = 0
    no_metadata: int = 0


class CheckUnit:
    """Functional implementation of the check and bounds-check µops."""

    def __init__(self, memory: AddressSpace, check_missing_metadata: bool = False):
        self.memory = memory
        #: When True, a memory access through a register with no pointer
        #: metadata fails the check.  The evaluation leaves this off for the
        #: SPEC-style workloads (unannotated integer-computed addresses are
        #:  common and the paper reports zero false positives) and the
        #: security experiments rely on identifier invalidation, not missing
        #: metadata.
        self.check_missing_metadata = check_missing_metadata
        self.stats = CheckStats()

    # -- identifier (use-after-free) check ----------------------------------------
    def identifier_check(self, metadata: Optional[PointerMetadata],
                         address: int) -> CheckOutcome:
        """The check µop: compare the key against the lock location's value."""
        self.stats.identifier_checks += 1
        if metadata is None:
            self.stats.no_metadata += 1
            if self.check_missing_metadata:
                self.stats.failures += 1
                return CheckOutcome.NO_METADATA
            return CheckOutcome.PASS
        lock_value = self.memory.load_word(metadata.identifier.lock)
        if lock_value != metadata.identifier.key:
            self.stats.failures += 1
            self.stats.use_after_free += 1
            return CheckOutcome.USE_AFTER_FREE
        return CheckOutcome.PASS

    # -- bounds check ---------------------------------------------------------------
    def bounds_check(self, metadata: Optional[PointerMetadata], address: int,
                     access_size: int) -> CheckOutcome:
        """The bounds-check: ``base <= address`` and ``address+size <= bound``."""
        self.stats.bounds_checks += 1
        if metadata is None or not metadata.has_bounds:
            return CheckOutcome.PASS
        if not metadata.contains(address, access_size):
            self.stats.failures += 1
            self.stats.out_of_bounds += 1
            return CheckOutcome.OUT_OF_BOUNDS
        return CheckOutcome.PASS

    # -- combined, exception-raising entry point --------------------------------------
    def check_access(self, metadata: Optional[PointerMetadata], address: int,
                     access_size: int, with_bounds: bool,
                     raise_on_failure: bool = True, pc: Optional[int] = None) -> CheckOutcome:
        """Perform the identifier check and optionally the bounds check.

        Returns the first failing outcome (or PASS).  When
        ``raise_on_failure`` is set, failures raise the corresponding
        :class:`~repro.errors.MemorySafetyViolation`.
        """
        outcome = self.identifier_check(metadata, address)
        if outcome is CheckOutcome.PASS and with_bounds:
            outcome = self.bounds_check(metadata, address, access_size)

        if not raise_on_failure or outcome is CheckOutcome.PASS:
            return outcome

        if outcome is CheckOutcome.OUT_OF_BOUNDS:
            assert metadata is not None
            raise BoundsError(
                f"access at {address:#x} (+{access_size}) outside "
                f"[{metadata.base:#x}, {metadata.bound:#x})",
                address=address, pc=pc)
        message = ("dangling pointer dereference" if outcome is CheckOutcome.USE_AFTER_FREE
                   else "memory access through a register with no pointer metadata")
        raise UseAfterFreeError(f"{message} at address {address:#x}", address=address, pc=pc)
