"""Hardware stack-frame identifier management (Figure 3c/3d).

Heap identifiers are managed by the software runtime, but stack frames are
created and destroyed far too frequently for that, so the hardware manages
their identifiers itself (§4.1).  It maintains:

* a ``stack_key`` control register holding the next key to allocate, and
* a ``stack_lock`` control register pointing to the top of an in-memory stack
  of lock locations.

On a call the hardware injects µops that increment ``stack_key``, push a new
lock location, write the key into it, and associate the new identifier with
the stack pointer.  On a return the lock location is invalidated, the stack of
lock locations is popped, and the stack pointer's identifier reverts to the
caller's frame.  Any pointer into a popped frame (Figure 1, right) therefore
fails its check: its key no longer matches the (invalidated) lock location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.identifier import INVALID_KEY, Identifier
from repro.core.metadata import PointerMetadata
from repro.errors import SimulationError
from repro.isa.registers import WORD_BYTES
from repro.memory.address_space import AddressSpace, Segment

#: Keys for stack frames are drawn from a separate, very large space so they
#: can never collide with heap keys (the hardware uses a separate stack_key
#: control register).
STACK_KEY_BASE = 1 << 40


class StackFrameManager:
    """Implements the call/return identifier sequences of Figure 3c/3d."""

    def __init__(self, memory: AddressSpace, lock_stack_region: Optional[Segment] = None,
                 track_bounds: bool = False):
        self.memory = memory
        region = lock_stack_region or self._default_region(memory)
        self.region = region
        self.track_bounds = track_bounds
        #: stack_key control register: the next key to be allocated.
        self.stack_key = STACK_KEY_BASE
        #: stack_lock control register: top of the in-memory lock stack.
        self.stack_lock = region.base
        # The initial (main) frame gets its own identifier so stack accesses
        # made before any call are still covered.
        self.memory.store_word(self.stack_lock, self.stack_key)
        self.calls = 0
        self.returns = 0

    @staticmethod
    def _default_region(memory: AddressSpace) -> Segment:
        """Carve the lock-location stack out of the top half of the lock region."""
        lock_region = memory.layout.lock_region
        midpoint = lock_region.base + lock_region.size // 2
        return Segment("stack-locks", midpoint, lock_region.limit)

    # -- current frame -----------------------------------------------------------
    def current_identifier(self) -> Identifier:
        """Identifier of the currently executing frame."""
        return Identifier(key=self.memory.load_word(self.stack_lock),
                          lock=self.stack_lock)

    def current_frame_metadata(self, frame_base: int = 0,
                               frame_size: int = 0) -> PointerMetadata:
        """Metadata to attach to the stack pointer for the current frame."""
        identifier = self.current_identifier()
        if self.track_bounds and frame_size > 0:
            return PointerMetadata(identifier=identifier, base=frame_base,
                                   bound=frame_base + frame_size)
        return PointerMetadata(identifier=identifier)

    # -- call / return -----------------------------------------------------------
    def on_call(self) -> Identifier:
        """Figure 3c: allocate a key, push a lock location, write the key."""
        self.calls += 1
        self.stack_key += 1
        self.stack_lock += WORD_BYTES
        if self.stack_lock >= self.region.limit:
            raise SimulationError("stack lock region overflow (call depth too deep)")
        self.memory.store_word(self.stack_lock, self.stack_key)
        return Identifier(key=self.stack_key, lock=self.stack_lock)

    def on_return(self) -> Identifier:
        """Figure 3d: invalidate the frame's lock, pop, restore caller's id."""
        self.returns += 1
        if self.stack_lock <= self.region.base:
            raise SimulationError("return without a matching call")
        self.memory.store_word(self.stack_lock, INVALID_KEY)
        self.stack_lock -= WORD_BYTES
        current_key = self.memory.load_word(self.stack_lock)
        return Identifier(key=current_key, lock=self.stack_lock)

    @property
    def depth(self) -> int:
        """Current call depth (number of frames above the initial one)."""
        return (self.stack_lock - self.region.base) // WORD_BYTES
