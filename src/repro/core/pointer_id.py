"""Pointer load/store identification (§5).

Watchdog only needs to move metadata to/from the shadow space for memory
operations that might actually load or store a *pointer*.  Three identifiers
are provided:

* :class:`ConservativeIdentifier` (§5.1) — any 64-bit load/store to an
  integer register may be a pointer operation; floating-point and sub-word
  accesses are not.  Works on unmodified binaries.
* :class:`IsaAssistedIdentifier` (§5.2) — the ISA is extended with annotated
  load/store variants; the compiler marks pointer operations.  Unannotated
  operations fall back to the conservative rule.
* :class:`ProfileGuidedIdentifier` (§5.2, footnote 2) — the experimental aide
  used in the paper: a profiling run records which *static* memory operations
  ever load/store valid metadata; subsequent runs treat exactly those static
  operations as pointer operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.isa.instructions import Instruction, PointerHint


@dataclass
class PointerIdStats:
    """Counts of memory operations classified as pointer / non-pointer."""

    memory_ops: int = 0
    pointer_ops: int = 0

    @property
    def pointer_fraction(self) -> float:
        """Fraction of memory accesses carrying metadata (Figure 5)."""
        if self.memory_ops == 0:
            return 0.0
        return self.pointer_ops / self.memory_ops


class PointerIdentifier:
    """Base class: decides whether a memory instruction is a pointer op."""

    name = "base"

    def __init__(self) -> None:
        self.stats = PointerIdStats()

    def is_pointer_operation(self, inst: Instruction) -> bool:
        """Classify ``inst``; updates the Figure 5 statistics."""
        if not inst.is_memory:
            return False
        decision = self._classify(inst)
        self.stats.memory_ops += 1
        if decision:
            self.stats.pointer_ops += 1
        return decision

    def _classify(self, inst: Instruction) -> bool:
        raise NotImplementedError


class ConservativeIdentifier(PointerIdentifier):
    """§5.1: any aligned 64-bit integer load/store may carry a pointer."""

    name = "conservative"

    def _classify(self, inst: Instruction) -> bool:
        return inst.may_carry_pointer


class IsaAssistedIdentifier(PointerIdentifier):
    """§5.2: trust the compiler's pointer/non-pointer load/store variants."""

    name = "isa-assisted"

    def _classify(self, inst: Instruction) -> bool:
        if inst.pointer_hint is PointerHint.POINTER:
            # The annotation is only meaningful for accesses that can hold a
            # word-sized pointer in the first place.
            return inst.may_carry_pointer
        if inst.pointer_hint is PointerHint.NOT_POINTER:
            return False
        # Unannotated code (e.g. an un-recompiled library) falls back to the
        # conservative heuristic.
        return inst.may_carry_pointer


class ProfileGuidedIdentifier(PointerIdentifier):
    """§5.2 footnote 2: profile which static operations ever touch metadata.

    The profiling pass calls :meth:`observe` for every dynamic memory access,
    recording whether the access loaded/stored *valid* metadata.  Subsequent
    (measurement) runs treat a static operation as a pointer operation iff it
    ever did during profiling.
    """

    name = "profile-guided"

    def __init__(self) -> None:
        super().__init__()
        self._pointer_static_ids: Set[str] = set()
        self._observed_static_ids: Set[str] = set()

    @staticmethod
    def static_id(inst: Instruction) -> str:
        """Identity of the *static* instruction (label or structural key)."""
        if inst.label is not None:
            return inst.label
        return f"{inst.opcode.value}:{inst.dest}:{','.join(map(str, inst.srcs))}:{inst.imm}"

    def observe(self, inst: Instruction, touched_valid_metadata: bool) -> None:
        """Record a profiling observation for one dynamic access."""
        sid = self.static_id(inst)
        self._observed_static_ids.add(sid)
        if touched_valid_metadata:
            self._pointer_static_ids.add(sid)

    def _classify(self, inst: Instruction) -> bool:
        if not inst.may_carry_pointer:
            return False
        return self.static_id(inst) in self._pointer_static_ids

    @property
    def profiled_static_operations(self) -> int:
        return len(self._observed_static_ids)

    @property
    def pointer_static_operations(self) -> int:
        return len(self._pointer_static_ids)


def make_identifier(conservative: bool) -> PointerIdentifier:
    """Factory used by the Watchdog engine."""
    return ConservativeIdentifier() if conservative else IsaAssistedIdentifier()
