"""Watchdog core — the paper's primary contribution.

This package implements the hardware mechanisms of the paper:

* lock-and-key allocation identifiers (§4.1) — :mod:`repro.core.identifier`,
* per-pointer metadata, optionally widened with base/bound for the bounds
  extension (§8) — :mod:`repro.core.metadata`,
* the check semantics (identifier validity, bounds) — :mod:`repro.core.checks`,
* µop injection around loads, stores, calls, returns and pointer arithmetic
  (§3, Figure 2/3) — :mod:`repro.core.uop_injection`,
* conservative and ISA-assisted pointer identification (§5) —
  :mod:`repro.core.pointer_id`,
* decoupled register metadata with rename-time copy elimination and
  reference-counted physical registers (§6) — :mod:`repro.core.renaming`,
* stack-frame identifier management on call/return (Figure 3c/3d) —
  :mod:`repro.core.stack_frames`,
* the top-level engine and configuration — :mod:`repro.core.watchdog`,
  :mod:`repro.core.config`.
"""

from repro.core.identifier import Identifier, LockLocationAllocator, KeyGenerator
from repro.core.metadata import PointerMetadata, GLOBAL_IDENTIFIER_KEY
from repro.core.config import WatchdogConfig, PointerIdentificationMode, BoundsCheckMode
from repro.core.checks import CheckUnit, CheckOutcome
from repro.core.pointer_id import (
    ConservativeIdentifier,
    IsaAssistedIdentifier,
    ProfileGuidedIdentifier,
)
from repro.core.uop_injection import UopInjector
from repro.core.renaming import MetadataRenamer, RenameResult
from repro.core.stack_frames import StackFrameManager
from repro.core.watchdog import Watchdog

__all__ = [
    "Identifier",
    "LockLocationAllocator",
    "KeyGenerator",
    "PointerMetadata",
    "GLOBAL_IDENTIFIER_KEY",
    "WatchdogConfig",
    "PointerIdentificationMode",
    "BoundsCheckMode",
    "CheckUnit",
    "CheckOutcome",
    "ConservativeIdentifier",
    "IsaAssistedIdentifier",
    "ProfileGuidedIdentifier",
    "UopInjector",
    "MetadataRenamer",
    "RenameResult",
    "StackFrameManager",
    "Watchdog",
]
