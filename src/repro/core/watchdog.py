"""The top-level Watchdog engine.

This object owns every piece of Watchdog state for one simulated process:

* the sidecar register metadata (§3.4) — functional view of what the
  decoupled metadata physical registers hold,
* the disjoint shadow metadata space (§3.3),
* the identifier table, key generator and lock-location allocator (§4.1),
* the hardware stack-frame identifier manager (Figure 3c/3d),
* the check unit (§3.2 / §8),
* the µop injector and pointer identification policy (§3 / §5),
* page accounting for the memory-overhead experiment (Figure 10).

The functional machine (:class:`repro.program.machine.Machine`) drives it:
for every macro instruction the machine asks the injector for the µop
sequence and calls back into the engine for the metadata semantics of the
injected µops.  The timing model replays the same µop stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.allocator.runtime import InstrumentedRuntime
from repro.core.checks import CheckOutcome, CheckUnit
from repro.core.config import WatchdogConfig
from repro.core.identifier import IdentifierTable
from repro.core.metadata import PointerMetadata
from repro.core.pointer_id import PointerIdentifier, make_identifier
from repro.core.stack_frames import StackFrameManager
from repro.core.uop_injection import UopInjector
from repro.errors import MemorySafetyViolation
from repro.isa.instructions import (
    Instruction,
    NON_POINTER_PRODUCERS,
    Opcode,
    SELECT_PROPAGATORS,
    SINGLE_SOURCE_PROPAGATORS,
)
from repro.isa.registers import ArchReg, STACK_POINTER
from repro.memory.address_space import AddressSpace
from repro.memory.pages import PageAccountant
from repro.memory.shadow import ShadowSpace


@dataclass
class ViolationRecord:
    """A memory-safety violation observed while ``halt_on_violation`` is off."""

    kind: str
    address: int
    pc: Optional[int]
    message: str


class Watchdog:
    """Functional model of the Watchdog hardware plus its software runtime."""

    def __init__(self, config: Optional[WatchdogConfig] = None,
                 memory: Optional[AddressSpace] = None,
                 pointer_identifier: Optional[PointerIdentifier] = None):
        self.config = config or WatchdogConfig()
        self.memory = memory or AddressSpace()
        self.shadow = ShadowSpace(self.memory.layout,
                                  metadata_words=self.config.metadata_words)
        self.identifiers = IdentifierTable(self.memory)
        self.runtime = InstrumentedRuntime(
            self.memory, identifiers=self.identifiers,
            track_bounds=self.config.bounds_enabled)
        self.checker = CheckUnit(self.memory)
        self.frames = StackFrameManager(self.memory,
                                        track_bounds=self.config.bounds_enabled)
        self.pointer_identifier = pointer_identifier or make_identifier(
            self.config.conservative)
        self.injector = UopInjector(self.config, self.pointer_identifier)
        self.pages = PageAccountant()
        #: Sidecar register metadata (None = the "−" invalid mapping).
        self.register_metadata: Dict[ArchReg, Optional[PointerMetadata]] = {}
        self.violations: list[ViolationRecord] = []
        # The stack pointer starts out with the initial frame's identifier.
        if self.config.enabled:
            self.register_metadata[STACK_POINTER] = self.frames.current_frame_metadata()

    # ------------------------------------------------------------------ registers
    def get_register_metadata(self, reg: ArchReg) -> Optional[PointerMetadata]:
        return self.register_metadata.get(reg)

    def set_register_metadata(self, reg: ArchReg,
                              metadata: Optional[PointerMetadata]) -> None:
        if metadata is None:
            self.register_metadata.pop(reg, None)
        else:
            self.register_metadata[reg] = metadata

    # ------------------------------------------------------------------ µop stream
    def expand(self, inst: Instruction):
        """Macro instruction -> µop sequence (decoder + injection)."""
        return self.injector.expand(inst)

    # ------------------------------------------------------------------ checks
    def _record_or_raise(self, exc: MemorySafetyViolation) -> None:
        if self.config.halt_on_violation:
            raise exc
        self.violations.append(ViolationRecord(kind=exc.kind, address=exc.address or 0,
                                               pc=exc.pc, message=str(exc)))

    def check_access(self, address_reg: ArchReg, address: int, size: int,
                     pc: Optional[int] = None) -> CheckOutcome:
        """Functional semantics of the check (and fused/second bounds) µop."""
        if not self.config.enabled:
            return CheckOutcome.PASS
        metadata = self.get_register_metadata(address_reg)
        try:
            return self.checker.check_access(
                metadata, address, size,
                with_bounds=self.config.bounds_enabled,
                raise_on_failure=True, pc=pc)
        except MemorySafetyViolation as exc:
            self._record_or_raise(exc)
            return CheckOutcome.USE_AFTER_FREE

    # ------------------------------------------------------------------ shadow space
    def shadow_load(self, dest_reg: ArchReg, address: int) -> Optional[PointerMetadata]:
        """SHADOW_LOAD semantics: install the metadata shadowing ``address``."""
        metadata = self.shadow.load(address)
        self.set_register_metadata(dest_reg, metadata)
        self.pages.touch_shadow(self.shadow.shadow_address(address),
                                size=self.config.metadata_words * 8)
        return metadata

    def shadow_store(self, address: int, value_reg: ArchReg) -> None:
        """SHADOW_STORE semantics: write the source register's metadata."""
        metadata = self.get_register_metadata(value_reg)
        self.shadow.store(address, metadata)
        self.pages.touch_shadow(self.shadow.shadow_address(address),
                                size=self.config.metadata_words * 8)

    def note_data_access(self, address: int, size: int) -> None:
        """Record a program data access for the Figure 10 accounting."""
        self.pages.touch_data(address, size)

    # ------------------------------------------------------------------ propagation
    def propagate(self, inst: Instruction) -> None:
        """Functional metadata propagation for register-to-register ops (§6.2).

        In hardware this is mostly folded into rename (copy elimination); the
        functional effect on the sidecar values is what is modelled here.
        """
        if not self.config.enabled or inst.dest is None or not inst.dest.is_int:
            return
        op = inst.opcode
        if op in SINGLE_SOURCE_PROPAGATORS:
            source_meta = self.get_register_metadata(inst.srcs[0]) if inst.srcs else None
            self.set_register_metadata(inst.dest, source_meta)
        elif op in SELECT_PROPAGATORS:
            first = self.get_register_metadata(inst.srcs[0])
            second = self.get_register_metadata(inst.srcs[1]) if len(inst.srcs) > 1 else None
            # "selects the metadata from whichever register has valid
            # metadata" (§6.2); prefer the first source on a tie.
            self.set_register_metadata(inst.dest, first if first is not None else second)
        elif op is Opcode.LEA_GLOBAL:
            self.set_register_metadata(inst.dest, self.global_metadata())
        elif op in NON_POINTER_PRODUCERS or op is Opcode.MOV_RI:
            self.set_register_metadata(inst.dest, None)

    def note_non_pointer_load(self, dest_reg: ArchReg) -> None:
        """A load not classified as a pointer load leaves no valid metadata."""
        if self.config.enabled:
            self.set_register_metadata(dest_reg, None)

    # ------------------------------------------------------------------ calls / returns
    def on_call(self) -> None:
        """LOCK_PUSH semantics (Figure 3c)."""
        if not self.config.enabled:
            return
        self.frames.on_call()
        self.set_register_metadata(STACK_POINTER, self.frames.current_frame_metadata())

    def on_return(self) -> None:
        """LOCK_POP semantics (Figure 3d)."""
        if not self.config.enabled:
            return
        self.frames.on_return()
        self.set_register_metadata(STACK_POINTER, self.frames.current_frame_metadata())

    # ------------------------------------------------------------------ runtime interface
    def malloc(self, size: int, dest_reg: ArchReg) -> int:
        """Software runtime malloc + ``setident`` into ``dest_reg`` (Fig 3a)."""
        pointer, metadata = self.runtime.malloc(size)
        if self.config.enabled:
            self.set_register_metadata(dest_reg, metadata)
        return pointer

    def free(self, pointer_reg: ArchReg, pointer: int) -> None:
        """Software runtime free using ``getident`` on ``pointer_reg`` (Fig 3b)."""
        metadata = self.get_register_metadata(pointer_reg) if self.config.enabled else None
        if not self.config.enabled:
            # Unprotected baseline: free blindly, reproducing the unsafe
            # behaviour the paper is defending against.
            record = self.runtime.record_for(pointer)
            if record is not None:
                self.identifiers.invalidate(record.identifier)
                self.runtime._live.pop(pointer, None)
                self.runtime.allocator.free(pointer)
            return
        try:
            self.runtime.free(pointer, metadata)
        except MemorySafetyViolation as exc:
            self._record_or_raise(exc)

    # ------------------------------------------------------------------ globals
    def global_metadata(self) -> PointerMetadata:
        """Metadata carrying the single always-valid global identifier (§7)."""
        identifier = self.identifiers.global_identifier()
        if self.config.bounds_enabled:
            seg = self.memory.layout.globals_seg
            return PointerMetadata(identifier=identifier, base=seg.base, bound=seg.limit)
        return PointerMetadata(identifier=identifier)

    def initialize_global_pointer(self, address: int) -> None:
        """Initialize shadow metadata for an initialized global pointer (§7)."""
        self.shadow.store(address, self.global_metadata())

    # ------------------------------------------------------------------ statistics
    @property
    def check_stats(self):
        return self.checker.stats

    @property
    def injection_stats(self):
        return self.injector.stats

    @property
    def pointer_id_stats(self):
        return self.pointer_identifier.stats
