"""Exception taxonomy for the Watchdog reproduction.

The paper's hardware raises an exception when a check µop fails (a dangling
pointer dereference, §3.2) or, with the bounds extension, when an access falls
outside the pointer's base/bound range (§8).  The runtime additionally detects
double frees and frees of non-heap pointers (§4.1).

All library errors derive from :class:`ReproError` so callers can catch the
whole family, while the safety violations derive from
:class:`MemorySafetyViolation` which mirrors the hardware exception.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A simulator or Watchdog configuration is inconsistent."""


class ProgramError(ReproError):
    """A program (IR or macro-instruction stream) is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class AllocatorError(ReproError):
    """The runtime memory allocator was misused or is out of memory."""


class OutOfMemoryError(AllocatorError):
    """The heap (or lock-location region) cannot satisfy an allocation."""


class MemorySafetyViolation(ReproError):
    """Base class for violations detected by a checking scheme.

    Attributes
    ----------
    address:
        The virtual address whose access triggered the violation, if known.
    pc:
        Index of the offending macro instruction in the dynamic stream.
    """

    kind = "memory-safety"

    def __init__(self, message: str, address: int | None = None, pc: int | None = None):
        super().__init__(message)
        self.address = address
        self.pc = pc


class UseAfterFreeError(MemorySafetyViolation):
    """A check µop found a stale identifier (dangling pointer dereference)."""

    kind = "use-after-free"


class BoundsError(MemorySafetyViolation):
    """A bounds-check µop found an access outside [base, bound)."""

    kind = "out-of-bounds"


class DoubleFreeError(MemorySafetyViolation):
    """free() was called on a pointer whose identifier is already invalid."""

    kind = "double-free"


class InvalidFreeError(MemorySafetyViolation):
    """free() was called on a pointer that was never returned by malloc()."""

    kind = "invalid-free"


class UncheckedAccessError(MemorySafetyViolation):
    """Raised by the *functional* machine when an access hits unmapped memory.

    This is not a Watchdog detection; it signals that a program escaped the
    simulated address space entirely (useful for validating exploit payloads
    against an unprotected baseline).
    """

    kind = "unmapped-access"
