"""Set-associative cache model with LRU replacement.

Used for every level of the Table 2 hierarchy, including the 4KB lock
location cache of §4.2 (which uses "the same tagging, block size, and state
bits" as the other caches).  The model is a behavioural hit/miss simulator:
it tracks tags per set with LRU ordering and reports whether each access hit,
which the hierarchy converts into a latency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    block_bytes: int = 64
    hit_latency: int = 3

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.block_bytes <= 0:
            raise ConfigurationError(f"cache {self.name}: sizes must be positive")
        if self.size_bytes % (self.associativity * self.block_bytes) != 0:
            raise ConfigurationError(
                f"cache {self.name}: size {self.size_bytes} not divisible by "
                f"assoc*block ({self.associativity}*{self.block_bytes})")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)


@dataclass
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    latency: int
    evicted_block: Optional[int] = None


class Cache:
    """One level of cache with LRU replacement and per-set tag arrays."""

    def __init__(self, config: CacheConfig):
        self.config = config
        #: set index -> OrderedDict of block address -> dirty flag (LRU order:
        #: oldest first).  Sets are allocated on first touch: a 16MB L3 has
        #: 16384 sets, and eagerly building an OrderedDict for each made
        #: hierarchy construction a measurable per-simulation cost.
        self._sets: Dict[int, OrderedDict] = {}
        # Geometry bound to plain attributes: the hot paths (and the
        # hierarchy's batch loops) must not pay a property call per access.
        self._num_sets = config.num_sets
        self._block_bytes = config.block_bytes
        self._assoc = config.associativity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- geometry -----------------------------------------------------------
    def block_address(self, address: int) -> int:
        return address // self._block_bytes

    def set_index(self, block_address: int) -> int:
        return block_address % self._num_sets

    def _set_for(self, index: int) -> OrderedDict:
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        return cache_set

    # -- access --------------------------------------------------------------
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access ``address``; allocate on miss; return hit/miss and latency."""
        block = address // self._block_bytes
        cache_set = self._set_for(block % self._num_sets)

        if block in cache_set:
            cache_set.move_to_end(block)
            if is_write:
                cache_set[block] = True
            self.hits += 1
            return AccessResult(hit=True, latency=self.config.hit_latency)

        self.misses += 1
        evicted = None
        if len(cache_set) >= self._assoc:
            evicted, dirty = cache_set.popitem(last=False)
            self.evictions += 1
            if dirty:
                self.writebacks += 1
        cache_set[block] = is_write
        return AccessResult(hit=False, latency=self.config.hit_latency,
                            evicted_block=evicted)

    def lookup(self, address: int, is_write: bool = False) -> bool:
        """Demand access returning only hit/miss (no :class:`AccessResult`).

        State transitions and statistics are identical to :meth:`access`;
        this is the allocation-free variant the memory hierarchy's hot loops
        use — the caller derives the latency from the cache's configuration.
        """
        block = address // self._block_bytes
        cache_set = self._sets.get(block % self._num_sets)
        if cache_set is None:
            cache_set = self._sets[block % self._num_sets] = OrderedDict()
        if block in cache_set:
            cache_set.move_to_end(block)
            if is_write:
                cache_set[block] = True
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self._assoc:
            _, dirty = cache_set.popitem(last=False)
            self.evictions += 1
            if dirty:
                self.writebacks += 1
        cache_set[block] = is_write
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        block = address // self._block_bytes
        cache_set = self._sets.get(block % self._num_sets)
        return cache_set is not None and block in cache_set

    def install(self, address: int) -> None:
        """Install a block without counting it as a demand access (prefetch)."""
        block = address // self._block_bytes
        cache_set = self._set_for(block % self._num_sets)
        if block in cache_set:
            cache_set.move_to_end(block)
            return
        if len(cache_set) >= self._assoc:
            _, dirty = cache_set.popitem(last=False)
            self.evictions += 1
            if dirty:
                self.writebacks += 1
        cache_set[block] = False

    # -- statistics ------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def misses_per_kilo_accesses(self) -> float:
        return 1000.0 * self.miss_rate

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0

    def flush(self) -> None:
        self._sets.clear()
