"""The Table 2 memory hierarchy.

Models the cache hierarchy the paper simulates (§9.1, Table 2):

* 32KB 8-way L1 data cache (3 cycles) with a 4-stream prefetcher,
* 256KB 8-way private L2 (10 cycles) with an 8-stream prefetcher,
* 16MB 16-way shared L3 (25 cycles),
* DRAM behind a dual-channel DDR bus (16ns latency, ~50 core cycles at
  3.2GHz; we charge an end-to-end miss penalty),
* an optional 4KB 8-way *lock location cache* that is a peer of the L1 caches
  and is accessed by check µops and identifier allocation/deallocation
  (§4.2, Figure 4c), with its own small TLB,
* a small L1 data TLB; shadow accesses translate like normal accesses (§3.3).

The hierarchy returns a latency per access and accumulates hit/miss
statistics.  Distinct access *classes* let the Watchdog core route shadow
metadata accesses and lock-location accesses appropriately, including the
"idealized shadow accesses" ablation of §9.3 (metadata accesses occupy ports
but never miss and never displace data).
"""

from __future__ import annotations

import enum
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.prefetcher import PrefetcherConfig, StreamPrefetcher
from repro.memory.tlb import TLB, TLBConfig


class PortKind(enum.Enum):
    """Which L1-level structure an access uses.

    ``DATA`` — the normal L1 data cache (program loads/stores and, when the
    lock location cache is disabled, check µops too).
    ``LOCK`` — the dedicated lock location cache.
    ``SHADOW`` — shadow metadata accesses; they use the L1 data cache but are
    tagged separately so the ideal-shadow ablation can special-case them.
    """

    DATA = "data"
    LOCK = "lock"
    SHADOW = "shadow"


#: Small-int port codes used by the compiled trace pipeline's packed access
#: specs (``spec = port | is_write << 2 | use_latency << 3``).
PORT_DATA, PORT_LOCK, PORT_SHADOW = 0, 1, 2
PORT_CODES = {PortKind.DATA: PORT_DATA, PortKind.LOCK: PORT_LOCK,
              PortKind.SHADOW: PORT_SHADOW}
SPEC_WRITE = 4
SPEC_USE_LATENCY = 8


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry and latency parameters (defaults follow Table 2)."""

    l1d: CacheConfig = CacheConfig("L1D", size_bytes=32 * 1024, associativity=8,
                                   block_bytes=64, hit_latency=3)
    l2: CacheConfig = CacheConfig("L2", size_bytes=256 * 1024, associativity=8,
                                  block_bytes=64, hit_latency=10)
    l3: CacheConfig = CacheConfig("L3", size_bytes=16 * 1024 * 1024, associativity=16,
                                  block_bytes=64, hit_latency=25)
    lock_cache: CacheConfig = CacheConfig("LockLoc", size_bytes=4 * 1024,
                                          associativity=8, block_bytes=64,
                                          hit_latency=3)
    l1d_prefetcher: PrefetcherConfig = PrefetcherConfig(streams=4, depth=4)
    l2_prefetcher: PrefetcherConfig = PrefetcherConfig(streams=8, depth=16)
    l1_tlb: TLBConfig = TLBConfig("DTLB", entries=64, miss_penalty=20)
    lock_tlb: TLBConfig = TLBConfig("LockTLB", entries=16, miss_penalty=20)
    dram_latency: int = 200
    #: Whether the dedicated lock location cache exists (Figure 9 ablation).
    lock_cache_enabled: bool = True
    #: Idealize shadow accesses: occupy ports, never miss, never allocate
    #: (§9.3 cache-pressure isolation experiment).
    ideal_shadow: bool = False


#: Access-class names in counter-slot order.  :class:`HierarchyStats` keeps
#: one integer counter pair per class; the dict views callers consume are
#: materialized on read.
_STAT_KINDS = ("data", "lock", "lock-on-data", "shadow", "shadow-ideal")
_STAT_INDEX = {name: i for i, name in enumerate(_STAT_KINDS)}

#: Shared-level (L2 / L3 / lock-location-cache) counters attributed to the
#: core that issued the access.  On a single-core hierarchy these mirror the
#: shared caches' own counters; on a multi-core hierarchy each core's stats
#: carry only its own share of the contention, while the cache objects
#: accumulate the global totals.
_SHARED_KEYS = ("l2_hits", "l2_misses", "l3_hits", "l3_misses",
                "lock_hits", "lock_misses", "lock_evictions",
                "lock_writebacks")


class HierarchyStats:
    """Aggregated access counts by class.

    The per-access path (:meth:`record`) is two integer-list stores rather
    than two string-keyed dict updates; ``accesses``/``total_latency``
    materialize dicts holding exactly the classes that were recorded, so
    readers see the same shape as before.
    """

    __slots__ = ("_counts", "_latency", "shared")

    def __init__(self):
        self._counts = [0] * len(_STAT_KINDS)
        self._latency = [0] * len(_STAT_KINDS)
        #: Per-core attribution of shared-level traffic (see
        #: :data:`_SHARED_KEYS`).  The demand paths fold into it; warm-up
        #: traffic is folded only where both the Python and native paths
        #: count it (L2/L3), and callers reset stats after warming anyway.
        self.shared = dict.fromkeys(_SHARED_KEYS, 0)

    def record(self, kind: str, latency: int) -> None:
        index = _STAT_INDEX[kind]
        self._counts[index] += 1
        self._latency[index] += latency

    def fold(self, kind: str, count: int, latency: int) -> None:
        """Merge one batch's accumulated count/latency for ``kind``."""
        index = _STAT_INDEX[kind]
        self._counts[index] += count
        self._latency[index] += latency

    @property
    def accesses(self) -> Dict[str, int]:
        return {name: count
                for name, count in zip(_STAT_KINDS, self._counts) if count}

    @property
    def total_latency(self) -> Dict[str, int]:
        return {name: latency
                for name, latency, count in zip(_STAT_KINDS, self._latency,
                                                self._counts) if count}

    def average_latency(self, kind: str) -> float:
        index = _STAT_INDEX.get(kind)
        if index is None or not self._counts[index]:
            return 0.0
        return self._latency[index] / self._counts[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, HierarchyStats):
            return NotImplemented
        return (self._counts == other._counts
                and self._latency == other._latency
                and self.shared == other.shared)

    def __repr__(self) -> str:
        return (f"HierarchyStats(accesses={self.accesses}, "
                f"total_latency={self.total_latency}, "
                f"shared={{{', '.join(f'{k}: {v}' for k, v in self.shared.items() if v)}}})")


class SharedMemoryBackend:
    """The shared levels of a (possibly multi-core) memory hierarchy.

    Holds the L2, the inclusive L3, the lock location cache and the L2
    prefetcher.  A single-core :class:`MemoryHierarchy` builds a private
    backend implicitly; a multi-core simulation builds one backend and hands
    it to every core's hierarchy, so the cores contend for the same shared
    state while keeping their L1s, L1 prefetchers and TLBs private.
    """

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)
        self.lock_cache = Cache(self.config.lock_cache)
        self.l2_prefetcher = StreamPrefetcher(self.config.l2_prefetcher,
                                              self.l2)

    def _tc_sync(self) -> None:
        """Rebuild the shared-level OrderedDicts from the native arenas.

        While any attached core runs native batches, the shared-role arenas
        (``_tc_shared``) are the authoritative L2/L3/lock-cache state.
        Popping the dict also invalidates every core's exported
        ``_tc_state`` (each holds a reference to it — see
        :func:`repro.native._timecore.attach_state`), so their next native
        batch re-exports against the rebuilt structures instead of running
        on arenas that no longer reflect reality.
        """
        state = self.__dict__.pop("_tc_shared", None)
        if state is not None:
            from repro.native import _timecore
            _timecore.import_shared_state(state, self)

    def reset_stats(self) -> None:
        for cache in (self.l2, self.l3, self.lock_cache):
            cache.reset_stats()
        self.l2_prefetcher.reset_stats()


class MemoryHierarchy:
    """L1D + lock location cache + L2 + L3 + DRAM with prefetchers and TLBs."""

    #: Per-instance override for the native timing core on the batch paths:
    #: ``None`` defers to the kernel's availability (and its
    #: ``REPRO_TIMECORE`` kill switch), ``False`` forces the Python loops,
    #: ``True`` is merely an explicit "use it when available".
    native_override: Optional[bool] = None

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 shared: Optional[SharedMemoryBackend] = None,
                 core_id: int = 0):
        if shared is None:
            shared = SharedMemoryBackend(config)
        elif config is not None and config != shared.config:
            raise ConfigurationError(
                "hierarchy config does not match the shared backend's")
        self.config = shared.config
        self.shared = shared
        self.core_id = core_id
        self.l1d = Cache(self.config.l1d)
        # The shared levels are plain attribute references into the backend:
        # every existing consumer (hot loops, arena marshalling, stats
        # readers) sees the same objects whether the backend is private to
        # this core or contended by several.
        self.l2 = shared.l2
        self.l3 = shared.l3
        self.lock_cache = shared.lock_cache
        self.l1d_prefetcher = StreamPrefetcher(self.config.l1d_prefetcher, self.l1d)
        self.l2_prefetcher = shared.l2_prefetcher
        self.dtlb = TLB(self.config.l1_tlb)
        self.lock_tlb = TLB(self.config.lock_tlb)
        self.stats = HierarchyStats()

    # -- lower levels --------------------------------------------------------
    def _access_beyond_l1(self, address: int, is_write: bool) -> int:
        """Access L2, then L3, then DRAM; return the added latency.

        Besides the shared caches' own (global) counters, the hit/miss is
        attributed to this core's ``stats.shared`` block — the quantity a
        multi-core simulation reports per core while the cache objects
        accumulate totals across all cores.
        """
        shared = self.stats.shared
        if self.l2.lookup(address, is_write):
            shared["l2_hits"] += 1
            return self.config.l2.hit_latency
        shared["l2_misses"] += 1
        self.l2_prefetcher.on_miss(address)
        if self.l3.lookup(address, is_write):
            shared["l3_hits"] += 1
            return self.config.l2.hit_latency + self.config.l3.hit_latency
        shared["l3_misses"] += 1
        return (self.config.l2.hit_latency + self.config.l3.hit_latency
                + self.config.dram_latency)

    # -- public access points --------------------------------------------------
    def access(self, address: int, is_write: bool = False,
               port: PortKind = PortKind.DATA) -> int:
        """Perform one access and return its total latency in cycles."""
        if self._tc_dirty():
            self._tc_sync()
        if port is PortKind.LOCK and self.config.lock_cache_enabled:
            return self._lock_access(address, is_write)
        if port is PortKind.SHADOW and self.config.ideal_shadow:
            # Idealized shadow: occupies a port (charged by the pipeline
            # model) but always behaves like an L1 hit and allocates nothing.
            latency = self.config.l1d.hit_latency
            self.stats.record("shadow-ideal", latency)
            return latency
        return self._data_access(address, is_write, port)

    def _data_access(self, address: int, is_write: bool, port: PortKind) -> int:
        latency = self.dtlb.access(address) + self.config.l1d.hit_latency
        if not self.l1d.lookup(address, is_write):
            self.l1d_prefetcher.on_miss(address)
            latency += self._access_beyond_l1(address, is_write)
        # The shared L3 is inclusive (as on the Sandy Bridge parts Table 2
        # mirrors): every demanded line is tracked there, so lines evicted
        # from the private levels — or installed into them by the prefetchers
        # — are found again in the L3 rather than re-fetched from memory.
        self.l3.install(address)
        kind = "shadow" if port is PortKind.SHADOW else (
            "lock-on-data" if port is PortKind.LOCK else "data")
        self.stats.record(kind, latency)
        return latency

    def _lock_access(self, address: int, is_write: bool) -> int:
        latency = self.lock_tlb.access(address) + self.config.lock_cache.hit_latency
        lock = self.lock_cache
        shared = self.stats.shared
        evictions = lock.evictions
        writebacks = lock.writebacks
        if lock.lookup(address, is_write):
            shared["lock_hits"] += 1
        else:
            shared["lock_misses"] += 1
            # lookup() evicts only on a miss, so the deltas land here.
            shared["lock_evictions"] += lock.evictions - evictions
            shared["lock_writebacks"] += lock.writebacks - writebacks
            latency += self._access_beyond_l1(address, is_write)
        self.l3.install(address)
        self.stats.record("lock", latency)
        return latency

    # -- batched access (compiled trace pipeline) -----------------------------
    #
    # The compiled pipeline separates hierarchy replay from µop scheduling:
    # the access *order* of a timed µop stream is its program order, so all
    # cache/TLB/prefetcher state transitions — and the load latencies the
    # scheduler needs — can be produced in one tight pass.  The two methods
    # below are semantically identical to calling :meth:`access` once per
    # element in sequence; they inline the L1/TLB hit paths and keep the
    # counters in locals, which is where the per-access overhead lives.

    def access_batch(self, addrs, specs, positions, lats) -> None:
        """Replay a demand-access sequence, filling per-µop load latencies.

        ``specs`` carries ``port | is_write << 2 | use_latency << 3`` per
        access; accesses with the use-latency bit store their latency into
        ``lats[positions[i]]`` (loads); the rest only update hierarchy state
        and statistics (stores retire at fixed latency off the critical
        path).  State transitions and statistics are bit-identical to the
        equivalent :meth:`access` sequence.

        When the native timing core is available (and not overridden off),
        the whole batch is replayed by the C kernel instead — with identical
        results by construction (see :mod:`repro.native._timecore`).  The
        stream compiler hands in ``array("q")`` columns, which the kernel
        consumes with zero per-batch marshalling; any other sequence type
        is converted on entry.
        """
        if len(addrs) and self.native_override is not False:
            from repro.native import _timecore
            lib = _timecore.load()
            if lib is not None:
                self._batch_native(lib, addrs, specs, positions, lats, True)
                return
        if self._tc_dirty():
            self._tc_sync()
        config = self.config
        lock_en = config.lock_cache_enabled
        ideal = config.ideal_shadow
        l1 = self.l1d
        l1_sets = l1._sets
        l1_nsets = l1.config.num_sets
        l1_bb = l1.config.block_bytes
        l1_assoc = l1.config.associativity
        l1_lat = config.l1d.hit_latency
        l1_hits = l1_misses = l1_evd = l1_wb = 0
        lk = self.lock_cache
        lk_sets = lk._sets
        lk_nsets = lk.config.num_sets
        lk_bb = lk.config.block_bytes
        lk_assoc = lk.config.associativity
        lk_lat = config.lock_cache.hit_latency
        lk_hits = lk_misses = lk_evd = lk_wb = 0
        l3 = self.l3
        l3_sets = l3._sets
        l3_nsets = l3.config.num_sets
        l3_bb = l3.config.block_bytes
        l3_assoc = l3.config.associativity
        l3_evd = l3_wb = 0
        dtlb = self.dtlb
        dtlb_map = dtlb._entries
        dtlb_pb = dtlb.config.page_bytes
        dtlb_cap = dtlb.config.entries
        dtlb_pen = dtlb.config.miss_penalty
        dtlb_hits = dtlb_misses = 0
        ltlb = self.lock_tlb
        ltlb_map = ltlb._entries
        ltlb_pb = ltlb.config.page_bytes
        ltlb_cap = ltlb.config.entries
        ltlb_pen = ltlb.config.miss_penalty
        ltlb_hits = ltlb_misses = 0
        dtlb_last = ltlb_last = -1
        beyond = self._access_beyond_l1
        prefetch = self.l1d_prefetcher.on_miss
        counts = [0, 0, 0]
        waits = [0, 0, 0]

        for a, spec, pos in zip(addrs, specs, positions):
            port = spec & 3
            if port == 1 and lock_en:
                # -- dedicated lock location cache (no L1 prefetcher) -------
                page = a // ltlb_pb
                if page == ltlb_last:
                    ltlb_hits += 1
                    lat = lk_lat
                elif page in ltlb_map:
                    ltlb_map.move_to_end(page)
                    ltlb_hits += 1
                    ltlb_last = page
                    lat = lk_lat
                else:
                    ltlb_misses += 1
                    if len(ltlb_map) >= ltlb_cap:
                        ltlb_map.popitem(last=False)
                    ltlb_map[page] = True
                    ltlb_last = page
                    lat = ltlb_pen + lk_lat
                block = a // lk_bb
                idx = block % lk_nsets
                cset = lk_sets.get(idx)
                if cset is None:
                    cset = lk_sets[idx] = OrderedDict()
                if block in cset:
                    cset.move_to_end(block)
                    lk_hits += 1
                    if spec & 4:
                        cset[block] = True
                else:
                    lk_misses += 1
                    if len(cset) >= lk_assoc:
                        _, dirty = cset.popitem(last=False)
                        lk_evd += 1
                        if dirty:
                            lk_wb += 1
                    cset[block] = True if spec & 4 else False
                    lat += beyond(a, bool(spec & 4))
            elif port == 2 and ideal:
                # Idealized shadow: a port-occupying L1 hit, no allocation.
                lat = l1_lat
                counts[2] += 1
                waits[2] += lat
                if spec & 8:
                    lats[pos] = lat
                continue
            else:
                # -- the L1 data cache (data, shadow, lock-on-data) ----------
                page = a // dtlb_pb
                if page == dtlb_last:
                    dtlb_hits += 1
                    lat = l1_lat
                elif page in dtlb_map:
                    dtlb_map.move_to_end(page)
                    dtlb_hits += 1
                    dtlb_last = page
                    lat = l1_lat
                else:
                    dtlb_misses += 1
                    if len(dtlb_map) >= dtlb_cap:
                        dtlb_map.popitem(last=False)
                    dtlb_map[page] = True
                    dtlb_last = page
                    lat = dtlb_pen + l1_lat
                block = a // l1_bb
                idx = block % l1_nsets
                cset = l1_sets.get(idx)
                if cset is None:
                    cset = l1_sets[idx] = OrderedDict()
                if block in cset:
                    cset.move_to_end(block)
                    l1_hits += 1
                    if spec & 4:
                        cset[block] = True
                else:
                    l1_misses += 1
                    if len(cset) >= l1_assoc:
                        _, dirty = cset.popitem(last=False)
                        l1_evd += 1
                        if dirty:
                            l1_wb += 1
                    cset[block] = True if spec & 4 else False
                    prefetch(a)
                    lat += beyond(a, bool(spec & 4))
            # inclusive L3 install (demand accesses of every class)
            block = a // l3_bb
            idx = block % l3_nsets
            cset = l3_sets.get(idx)
            if cset is None:
                cset = l3_sets[idx] = OrderedDict()
            if block in cset:
                cset.move_to_end(block)
            else:
                if len(cset) >= l3_assoc:
                    _, dirty = cset.popitem(last=False)
                    l3_evd += 1
                    if dirty:
                        l3_wb += 1
                cset[block] = False
            counts[port] += 1
            waits[port] += lat
            if spec & 8:
                lats[pos] = lat

        # -- merge local counters back into the shared statistics ------------
        l1.hits += l1_hits
        l1.misses += l1_misses
        l1.evictions += l1_evd
        l1.writebacks += l1_wb
        lk.hits += lk_hits
        lk.misses += lk_misses
        lk.evictions += lk_evd
        lk.writebacks += lk_wb
        shared = self.stats.shared
        shared["lock_hits"] += lk_hits
        shared["lock_misses"] += lk_misses
        shared["lock_evictions"] += lk_evd
        shared["lock_writebacks"] += lk_wb
        l3.evictions += l3_evd
        l3.writebacks += l3_wb
        dtlb.hits += dtlb_hits
        dtlb.misses += dtlb_misses
        ltlb.hits += ltlb_hits
        ltlb.misses += ltlb_misses
        names = ("data",
                 "lock" if lock_en else "lock-on-data",
                 "shadow-ideal" if ideal else "shadow")
        for code in (0, 1, 2):
            if counts[code]:
                self.stats.fold(names[code], counts[code], waits[code])

    def warm_batch(self, addrs, specs) -> None:
        """Replay accesses for warm-up: state transitions only, no counters.

        Callers reset every statistic right after warming, so only cache,
        TLB and prefetcher *state* is observable — skipping the counters
        makes the warm-up replay considerably cheaper.  ``specs`` is either
        a per-access sequence or one int applied to every address.  Shadow
        accesses under the ideal-shadow ablation change no state and are
        skipped entirely (matching :meth:`access`).
        """
        if len(addrs) and self.native_override is not False:
            from repro.native import _timecore
            lib = _timecore.load()
            if lib is not None:
                self._batch_native(lib, addrs, specs, None, None, False)
                return
        if self._tc_dirty():
            self._tc_sync()
        if isinstance(specs, int):
            specs = itertools.repeat(specs)
        config = self.config
        lock_en = config.lock_cache_enabled
        ideal = config.ideal_shadow
        l1 = self.l1d
        l1_sets = l1._sets
        l1_nsets = l1.config.num_sets
        l1_bb = l1.config.block_bytes
        l1_assoc = l1.config.associativity
        lk = self.lock_cache
        lk_sets = lk._sets
        lk_nsets = lk.config.num_sets
        lk_bb = lk.config.block_bytes
        lk_assoc = lk.config.associativity
        l3 = self.l3
        l3_sets = l3._sets
        l3_nsets = l3.config.num_sets
        l3_bb = l3.config.block_bytes
        l3_assoc = l3.config.associativity
        dtlb_map = self.dtlb._entries
        dtlb_pb = self.dtlb.config.page_bytes
        dtlb_cap = self.dtlb.config.entries
        ltlb_map = self.lock_tlb._entries
        ltlb_pb = self.lock_tlb.config.page_bytes
        ltlb_cap = self.lock_tlb.config.entries
        dtlb_last = ltlb_last = -1
        beyond = self._access_beyond_l1
        prefetch = self.l1d_prefetcher.on_miss

        for a, spec in zip(addrs, specs):
            port = spec & 3
            if port == 1 and lock_en:
                page = a // ltlb_pb
                if page != ltlb_last:
                    if page in ltlb_map:
                        ltlb_map.move_to_end(page)
                    else:
                        if len(ltlb_map) >= ltlb_cap:
                            ltlb_map.popitem(last=False)
                        ltlb_map[page] = True
                    ltlb_last = page
                block = a // lk_bb
                idx = block % lk_nsets
                cset = lk_sets.get(idx)
                if cset is None:
                    cset = lk_sets[idx] = OrderedDict()
                if block in cset:
                    cset.move_to_end(block)
                    if spec & 4:
                        cset[block] = True
                else:
                    if len(cset) >= lk_assoc:
                        cset.popitem(last=False)
                    cset[block] = True if spec & 4 else False
                    beyond(a, bool(spec & 4))
            elif port == 2 and ideal:
                continue
            else:
                page = a // dtlb_pb
                if page != dtlb_last:
                    if page in dtlb_map:
                        dtlb_map.move_to_end(page)
                    else:
                        if len(dtlb_map) >= dtlb_cap:
                            dtlb_map.popitem(last=False)
                        dtlb_map[page] = True
                    dtlb_last = page
                block = a // l1_bb
                idx = block % l1_nsets
                cset = l1_sets.get(idx)
                if cset is None:
                    cset = l1_sets[idx] = OrderedDict()
                if block in cset:
                    cset.move_to_end(block)
                    if spec & 4:
                        cset[block] = True
                else:
                    if len(cset) >= l1_assoc:
                        cset.popitem(last=False)
                    cset[block] = True if spec & 4 else False
                    prefetch(a)
                    beyond(a, bool(spec & 4))
            block = a // l3_bb
            idx = block % l3_nsets
            cset = l3_sets.get(idx)
            if cset is None:
                cset = l3_sets[idx] = OrderedDict()
            if block in cset:
                cset.move_to_end(block)
            else:
                if len(cset) >= l3_assoc:
                    cset.popitem(last=False)
                cset[block] = False

    def _batch_native(self, lib, addrs, specs, positions, lats,
                      collect: bool) -> None:
        """Replay one batch through an already-loaded native timing core.

        The marshalling (OrderedDicts to int64 arenas and back) lives with
        the kernel in :mod:`repro.native._timecore`; this indirection exists
        so the kernel's load-time self-test can drive a candidate library
        against hierarchies whose ``native_override`` forces the Python path.
        """
        from repro.native import _timecore
        _timecore.run_batch(lib, self, addrs, specs, positions, lats, collect)

    def _tc_dirty(self) -> bool:
        """True when native arenas are the authoritative hierarchy state.

        Either this core's private arenas (``_tc_state``) or the backend's
        shared-level arenas (``_tc_shared``) may be live: with several cores
        attached to one backend, *another* core's native batch makes the
        shared L2/L3/lock-cache OrderedDicts stale even if this core never
        exported private state.
        """
        return ("_tc_state" in self.__dict__
                or "_tc_shared" in self.shared.__dict__)

    def _tc_sync(self) -> None:
        """Rebuild the OrderedDict structures from the native arena state.

        After a native batch the int64 arenas are the authoritative
        cache/TLB/prefetcher state and the OrderedDicts are stale; counters
        and stats are always exact.  Every Python path that reads or mutates
        the structures directly syncs first; the compiled flow never needs
        to (it consumes counters only).  Private roles (L1/TLBs/L1
        prefetcher) import from this core's state, shared roles from the
        backend's — the latter invalidating every other core's exported
        state along the way.  Importing also returns the state's pooled
        arenas (see ``_timecore._ARENAS``), so the next fresh hierarchy's
        export reuses them instead of allocating and zeroing new ones —
        the same release a dying hierarchy triggers via its finalizer.
        No-op when no native batch has run.
        """
        state = self.__dict__.pop("_tc_state", None)
        if state is not None:
            from repro.native import _timecore
            _timecore.import_private_state(state, self)
        self.shared._tc_sync()

    # -- statistics ----------------------------------------------------------
    def lock_cache_mpki(self, instructions: int) -> float:
        """Lock location cache misses per 1000 instructions (§9.3)."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.lock_cache.misses / instructions

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l2, self.l3, self.lock_cache):
            cache.reset_stats()
        self.dtlb.reset_stats()
        self.lock_tlb.reset_stats()
        self.l1d_prefetcher.reset_stats()
        self.l2_prefetcher.reset_stats()
        self.stats = HierarchyStats()
