"""The Table 2 memory hierarchy.

Models the cache hierarchy the paper simulates (§9.1, Table 2):

* 32KB 8-way L1 data cache (3 cycles) with a 4-stream prefetcher,
* 256KB 8-way private L2 (10 cycles) with an 8-stream prefetcher,
* 16MB 16-way shared L3 (25 cycles),
* DRAM behind a dual-channel DDR bus (16ns latency, ~50 core cycles at
  3.2GHz; we charge an end-to-end miss penalty),
* an optional 4KB 8-way *lock location cache* that is a peer of the L1 caches
  and is accessed by check µops and identifier allocation/deallocation
  (§4.2, Figure 4c), with its own small TLB,
* a small L1 data TLB; shadow accesses translate like normal accesses (§3.3).

The hierarchy returns a latency per access and accumulates hit/miss
statistics.  Distinct access *classes* let the Watchdog core route shadow
metadata accesses and lock-location accesses appropriately, including the
"idealized shadow accesses" ablation of §9.3 (metadata accesses occupy ports
but never miss and never displace data).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.cache import Cache, CacheConfig
from repro.memory.prefetcher import PrefetcherConfig, StreamPrefetcher
from repro.memory.tlb import TLB, TLBConfig


class PortKind(enum.Enum):
    """Which L1-level structure an access uses.

    ``DATA`` — the normal L1 data cache (program loads/stores and, when the
    lock location cache is disabled, check µops too).
    ``LOCK`` — the dedicated lock location cache.
    ``SHADOW`` — shadow metadata accesses; they use the L1 data cache but are
    tagged separately so the ideal-shadow ablation can special-case them.
    """

    DATA = "data"
    LOCK = "lock"
    SHADOW = "shadow"


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry and latency parameters (defaults follow Table 2)."""

    l1d: CacheConfig = CacheConfig("L1D", size_bytes=32 * 1024, associativity=8,
                                   block_bytes=64, hit_latency=3)
    l2: CacheConfig = CacheConfig("L2", size_bytes=256 * 1024, associativity=8,
                                  block_bytes=64, hit_latency=10)
    l3: CacheConfig = CacheConfig("L3", size_bytes=16 * 1024 * 1024, associativity=16,
                                  block_bytes=64, hit_latency=25)
    lock_cache: CacheConfig = CacheConfig("LockLoc", size_bytes=4 * 1024,
                                          associativity=8, block_bytes=64,
                                          hit_latency=3)
    l1d_prefetcher: PrefetcherConfig = PrefetcherConfig(streams=4, depth=4)
    l2_prefetcher: PrefetcherConfig = PrefetcherConfig(streams=8, depth=16)
    l1_tlb: TLBConfig = TLBConfig("DTLB", entries=64, miss_penalty=20)
    lock_tlb: TLBConfig = TLBConfig("LockTLB", entries=16, miss_penalty=20)
    dram_latency: int = 200
    #: Whether the dedicated lock location cache exists (Figure 9 ablation).
    lock_cache_enabled: bool = True
    #: Idealize shadow accesses: occupy ports, never miss, never allocate
    #: (§9.3 cache-pressure isolation experiment).
    ideal_shadow: bool = False


@dataclass
class HierarchyStats:
    """Aggregated access counts by class."""

    accesses: Dict[str, int] = field(default_factory=dict)
    total_latency: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, latency: int) -> None:
        self.accesses[kind] = self.accesses.get(kind, 0) + 1
        self.total_latency[kind] = self.total_latency.get(kind, 0) + latency

    def average_latency(self, kind: str) -> float:
        count = self.accesses.get(kind, 0)
        if count == 0:
            return 0.0
        return self.total_latency[kind] / count


class MemoryHierarchy:
    """L1D + lock location cache + L2 + L3 + DRAM with prefetchers and TLBs."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)
        self.lock_cache = Cache(self.config.lock_cache)
        self.l1d_prefetcher = StreamPrefetcher(self.config.l1d_prefetcher, self.l1d)
        self.l2_prefetcher = StreamPrefetcher(self.config.l2_prefetcher, self.l2)
        self.dtlb = TLB(self.config.l1_tlb)
        self.lock_tlb = TLB(self.config.lock_tlb)
        self.stats = HierarchyStats()

    # -- lower levels --------------------------------------------------------
    def _access_beyond_l1(self, address: int, is_write: bool) -> int:
        """Access L2, then L3, then DRAM; return the added latency."""
        l2_result = self.l2.access(address, is_write)
        if l2_result.hit:
            return self.config.l2.hit_latency
        self.l2_prefetcher.on_miss(address)
        l3_result = self.l3.access(address, is_write)
        if l3_result.hit:
            return self.config.l2.hit_latency + self.config.l3.hit_latency
        return (self.config.l2.hit_latency + self.config.l3.hit_latency
                + self.config.dram_latency)

    # -- public access points --------------------------------------------------
    def access(self, address: int, is_write: bool = False,
               port: PortKind = PortKind.DATA) -> int:
        """Perform one access and return its total latency in cycles."""
        if port is PortKind.LOCK and self.config.lock_cache_enabled:
            return self._lock_access(address, is_write)
        if port is PortKind.SHADOW and self.config.ideal_shadow:
            # Idealized shadow: occupies a port (charged by the pipeline
            # model) but always behaves like an L1 hit and allocates nothing.
            latency = self.config.l1d.hit_latency
            self.stats.record("shadow-ideal", latency)
            return latency
        return self._data_access(address, is_write, port)

    def _data_access(self, address: int, is_write: bool, port: PortKind) -> int:
        latency = self.dtlb.access(address)
        result = self.l1d.access(address, is_write)
        latency += result.latency
        if not result.hit:
            self.l1d_prefetcher.on_miss(address)
            latency += self._access_beyond_l1(address, is_write)
        # The shared L3 is inclusive (as on the Sandy Bridge parts Table 2
        # mirrors): every demanded line is tracked there, so lines evicted
        # from the private levels — or installed into them by the prefetchers
        # — are found again in the L3 rather than re-fetched from memory.
        self.l3.install(address)
        kind = "shadow" if port is PortKind.SHADOW else (
            "lock-on-data" if port is PortKind.LOCK else "data")
        self.stats.record(kind, latency)
        return latency

    def _lock_access(self, address: int, is_write: bool) -> int:
        latency = self.lock_tlb.access(address)
        result = self.lock_cache.access(address, is_write)
        latency += result.latency
        if not result.hit:
            latency += self._access_beyond_l1(address, is_write)
        self.l3.install(address)
        self.stats.record("lock", latency)
        return latency

    # -- statistics ----------------------------------------------------------
    def lock_cache_mpki(self, instructions: int) -> float:
        """Lock location cache misses per 1000 instructions (§9.3)."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.lock_cache.misses / instructions

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l2, self.l3, self.lock_cache):
            cache.reset_stats()
        self.dtlb.reset_stats()
        self.lock_tlb.reset_stats()
        self.l1d_prefetcher.reset_stats()
        self.l2_prefetcher.reset_stats()
        self.stats = HierarchyStats()
