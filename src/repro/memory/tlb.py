"""Simple TLB model.

Each L1-level cache in Figure 4c has its own TLB, including the lock location
cache ("has its own (small) TLB", §4.2).  Shadow-space accesses go through the
usual address translation machinery (§3.3), so they consult a TLB too.  The
model is a fully-associative LRU translation cache; a miss charges a fixed
page-walk penalty.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.pages import PAGE_SIZE


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry and miss penalty."""

    name: str
    entries: int = 64
    miss_penalty: int = 20
    page_bytes: int = PAGE_SIZE

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.page_bytes <= 0:
            raise ConfigurationError(f"tlb {self.name}: sizes must be positive")


class TLB:
    """Fully-associative LRU TLB."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def page_of(self, address: int) -> int:
        return address // self.config.page_bytes

    def access(self, address: int) -> int:
        """Translate ``address``; return the added latency (0 on a hit)."""
        page = self.page_of(address)
        if page in self._entries:
            self._entries.move_to_end(page)
            self.hits += 1
            return 0
        self.misses += 1
        if len(self._entries) >= self.config.entries:
            self._entries.popitem(last=False)
        self._entries[page] = True
        return self.config.miss_penalty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = 0

    def flush(self) -> None:
        self._entries.clear()
