"""Disjoint shadow metadata space.

Conceptually every word of program memory is shadowed by identifier metadata
(§3.3).  The shadow space lives in a dedicated region of the virtual address
space and is reached by bit selection/concatenation from the data address
(:meth:`repro.memory.address_space.AddressSpaceLayout.shadow_address`).

Functionally the shadow space maps a word-aligned *data* address to a metadata
record (whatever object the Watchdog core attaches — an identifier for the
use-after-free configuration, identifier plus base/bound for the bounds
extension).  For timing and for the Figure 10 memory-overhead experiment it
also exposes the shadow byte addresses an implementation would touch, sized by
``metadata_words`` (2 words = 128 bits for UAF-only, 4 words = 256 bits with
bounds, §8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ProgramError
from repro.isa.registers import WORD_BYTES
from repro.memory.address_space import AddressSpaceLayout


class ShadowSpace:
    """Per-word pointer metadata storage (the disjoint metadata of §3.3)."""

    def __init__(self, layout: Optional[AddressSpaceLayout] = None,
                 metadata_words: int = 2):
        if metadata_words not in (2, 4):
            raise ProgramError("metadata_words must be 2 (UAF) or 4 (UAF+bounds)")
        self.layout = layout or AddressSpaceLayout()
        self.metadata_words = metadata_words
        self._entries: Dict[int, object] = {}
        self.loads = 0
        self.stores = 0

    # -- address mapping ---------------------------------------------------
    def shadow_address(self, data_address: int) -> int:
        """Byte address of the first shadow word for a data address.

        Each data word owns ``metadata_words`` consecutive shadow words, so
        the shadow address scales the word index by the metadata size; the
        high shadow bit is set by the layout.  This is the address the
        injected shadow load/store µops present to the cache hierarchy.
        """
        word = data_address & ~(WORD_BYTES - 1)
        scaled = word * self.metadata_words
        return self.layout.shadow_address(scaled % (1 << 47))

    def shadow_footprint_bytes(self) -> int:
        """Bytes of shadow memory holding live (non-default) metadata."""
        return len(self._entries) * self.metadata_words * WORD_BYTES

    # -- functional access ---------------------------------------------------
    @staticmethod
    def _key(data_address: int) -> int:
        return data_address & ~(WORD_BYTES - 1)

    def load(self, data_address: int):
        """Read the metadata shadowing the word at ``data_address``.

        Missing entries return ``None``, which the Watchdog core interprets as
        "not a pointer" (invalid metadata) — exactly what an implementation
        reading zero-filled demand-allocated shadow pages would see.
        """
        self.loads += 1
        return self._entries.get(self._key(data_address))

    def store(self, data_address: int, metadata) -> None:
        """Write metadata for the word at ``data_address``.

        Storing ``None`` clears the entry (a non-pointer value overwrote the
        word, so its shadow metadata must be invalidated).
        """
        self.stores += 1
        key = self._key(data_address)
        if metadata is None:
            self._entries.pop(key, None)
        else:
            self._entries[key] = metadata

    def bulk_initialize(self, addresses: Iterable[int], metadata) -> None:
        """Initialize many words at once (global-segment initialization, §7)."""
        for address in addresses:
            self._entries[self._key(address)] = metadata

    def clear_range(self, base: int, size: int) -> None:
        """Clear metadata for every word in ``[base, base+size)``."""
        start = self._key(base)
        end = base + size
        addr = start
        while addr < end:
            self._entries.pop(addr, None)
            addr += WORD_BYTES

    # -- introspection -------------------------------------------------------
    def live_entries(self) -> int:
        return len(self._entries)

    def touched_shadow_words(self) -> Iterable[int]:
        """Shadow word addresses holding live metadata (for page accounting)."""
        for data_word in self._entries:
            base = self.shadow_address(data_word)
            for i in range(self.metadata_words):
                yield base + i * WORD_BYTES

    def clear(self) -> None:
        self._entries.clear()
        self.loads = 0
        self.stores = 0
