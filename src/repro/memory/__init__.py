"""Memory substrate: address space, shadow metadata space, caches, hierarchy.

The paper places per-pointer identifier metadata in a *disjoint shadow space*
inside the program's virtual address space (§3.3), accessed through the normal
translation machinery, and adds a small dedicated *lock location cache* as a
peer of the L1 caches (§4.2, Figure 4c).  This package provides those pieces
plus the Table 2 cache hierarchy used by the timing model.
"""

from repro.memory.address_space import AddressSpace, AddressSpaceLayout, Segment
from repro.memory.shadow import ShadowSpace
from repro.memory.pages import PageAccountant, PAGE_SIZE
from repro.memory.cache import Cache, CacheConfig, AccessResult
from repro.memory.tlb import TLB, TLBConfig
from repro.memory.prefetcher import StreamPrefetcher, PrefetcherConfig
from repro.memory.hierarchy import MemoryHierarchy, HierarchyConfig, PortKind

__all__ = [
    "AddressSpace",
    "AddressSpaceLayout",
    "Segment",
    "ShadowSpace",
    "PageAccountant",
    "PAGE_SIZE",
    "Cache",
    "CacheConfig",
    "AccessResult",
    "TLB",
    "TLBConfig",
    "StreamPrefetcher",
    "PrefetcherConfig",
    "MemoryHierarchy",
    "HierarchyConfig",
    "PortKind",
]
