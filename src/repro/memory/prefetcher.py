"""Stream prefetchers.

Table 2 lists per-level stream prefetchers (2 streams of 4 blocks at L1I,
4 streams of 4 blocks at L1D, 8 streams of 16 blocks at L2).  The model is a
classic next-N-blocks stream prefetcher: on a demand miss it looks for an
existing stream tracking that region, and if the miss extends the stream it
installs the next ``depth`` blocks into the target cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.memory.cache import Cache


@dataclass(frozen=True)
class PrefetcherConfig:
    """Number of concurrently tracked streams and blocks fetched per trigger."""

    streams: int = 4
    depth: int = 4

    def __post_init__(self) -> None:
        if self.streams <= 0 or self.depth <= 0:
            raise ConfigurationError("prefetcher streams/depth must be positive")


@dataclass
class _Stream:
    last_block: int
    direction: int = 1


class StreamPrefetcher:
    """Next-N-blocks stream prefetcher feeding one cache."""

    def __init__(self, config: PrefetcherConfig, cache: Cache):
        self.config = config
        self.cache = cache
        self._streams: List[_Stream] = []
        self.prefetches_issued = 0

    def on_miss(self, address: int) -> None:
        """Notify the prefetcher of a demand miss at ``address``."""
        block = self.cache.block_address(address)
        stream = self._find_stream(block)
        if stream is None:
            self._allocate_stream(block)
            return
        stream.direction = 1 if block >= stream.last_block else -1
        stream.last_block = block
        self._issue(stream)

    def _find_stream(self, block: int) -> Optional[_Stream]:
        for stream in self._streams:
            if abs(block - stream.last_block) <= self.config.depth:
                return stream
        return None

    def _allocate_stream(self, block: int) -> None:
        if len(self._streams) >= self.config.streams:
            self._streams.pop(0)
        self._streams.append(_Stream(last_block=block))

    def _issue(self, stream: _Stream) -> None:
        block_bytes = self.cache.config.block_bytes
        for i in range(1, self.config.depth + 1):
            target_block = stream.last_block + i * stream.direction
            if target_block < 0:
                continue
            self.cache.install(target_block * block_bytes)
            self.prefetches_issued += 1

    def reset_stats(self) -> None:
        self.prefetches_issued = 0
