"""Stream prefetchers.

Table 2 lists per-level stream prefetchers (2 streams of 4 blocks at L1I,
4 streams of 4 blocks at L1D, 8 streams of 16 blocks at L2).  The model is a
classic next-N-blocks stream prefetcher: on a demand miss it looks for an
existing stream tracking that region, and if the miss extends the stream it
installs the next ``depth`` blocks into the target cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.memory.cache import Cache


@dataclass(frozen=True)
class PrefetcherConfig:
    """Number of concurrently tracked streams and blocks fetched per trigger."""

    streams: int = 4
    depth: int = 4

    def __post_init__(self) -> None:
        if self.streams <= 0 or self.depth <= 0:
            raise ConfigurationError("prefetcher streams/depth must be positive")


@dataclass
class _Stream:
    last_block: int
    direction: int = 1


class StreamPrefetcher:
    """Next-N-blocks stream prefetcher feeding one cache."""

    def __init__(self, config: PrefetcherConfig, cache: Cache):
        self.config = config
        self.cache = cache
        self._streams: List[_Stream] = []
        self.prefetches_issued = 0

    def on_miss(self, address: int) -> None:
        """Notify the prefetcher of a demand miss at ``address``."""
        block = self.cache.block_address(address)
        stream = self._find_stream(block)
        if stream is None:
            self._allocate_stream(block)
            return
        stream.direction = 1 if block >= stream.last_block else -1
        stream.last_block = block
        self._issue(stream)

    def _find_stream(self, block: int) -> Optional[_Stream]:
        for stream in self._streams:
            if abs(block - stream.last_block) <= self.config.depth:
                return stream
        return None

    def _allocate_stream(self, block: int) -> None:
        if len(self._streams) >= self.config.streams:
            self._streams.pop(0)
        self._streams.append(_Stream(last_block=block))

    def _issue(self, stream: _Stream) -> None:
        # Equivalent to cache.install() of each of the next ``depth`` blocks,
        # inlined: on sequential miss storms (working-set warm-up) this loop
        # runs hundreds of thousands of times per simulation.
        cache = self.cache
        sets = cache._sets
        num_sets = cache._num_sets
        assoc = cache._assoc
        last_block = stream.last_block
        direction = stream.direction
        evictions = writebacks = issued = 0
        for i in range(1, self.config.depth + 1):
            block = last_block + i * direction
            if block < 0:
                continue
            issued += 1
            index = block % num_sets
            cache_set = sets.get(index)
            if cache_set is None:
                sets[index] = cache_set = OrderedDict()
            if block in cache_set:
                cache_set.move_to_end(block)
                continue
            if len(cache_set) >= assoc:
                _, dirty = cache_set.popitem(last=False)
                evictions += 1
                if dirty:
                    writebacks += 1
            cache_set[block] = False
        cache.evictions += evictions
        cache.writebacks += writebacks
        self.prefetches_issued += issued

    def reset_stats(self) -> None:
        self.prefetches_issued = 0
