"""Virtual address space layout and the functional word-granular memory.

The paper targets 64-bit x86 with 48-bit virtual addresses and carves the
shadow space out of the unused high-order bits so that a data address can be
converted to its shadow address "via simple bit selection and concatenation"
(§3.3).  We reproduce that layout:

* a *global/data* segment (never deallocated; all pointers into it carry the
  single global identifier, §7),
* a downward-growing *stack* segment,
* an upward-growing *heap* segment managed by the runtime allocator,
* a *lock location* region holding the 8-byte lock words (§4.1),
* a *shadow* region positioned by a high-order bit, holding per-word pointer
  metadata (§3.3).

The functional memory stores 64-bit words in a dictionary keyed by the
word-aligned address; untouched memory reads as zero.  Sub-word accesses are
implemented read-modify-write on the containing word.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ProgramError, UncheckedAccessError
from repro.isa.registers import WORD_BYTES, WORD_MASK

VA_BITS = 48
VA_LIMIT = 1 << VA_BITS

#: High-order bit used to position the shadow region (bit selection /
#: concatenation trick of §3.3).
SHADOW_BIT = 1 << (VA_BITS - 1)


@dataclass(frozen=True)
class Segment:
    """A contiguous region of the virtual address space."""

    name: str
    base: int
    limit: int

    def __post_init__(self) -> None:
        if not 0 <= self.base < self.limit <= VA_LIMIT:
            raise ProgramError(f"segment {self.name} has invalid range "
                               f"[{self.base:#x}, {self.limit:#x})")

    @property
    def size(self) -> int:
        return self.limit - self.base

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit


@dataclass(frozen=True)
class AddressSpaceLayout:
    """Default placement of the program segments.

    The exact constants are not material; what matters is that the segments
    are disjoint, word aligned, and that the shadow region is reachable by
    setting a single high-order address bit.
    """

    globals_seg: Segment = Segment("globals", 0x0000_1000_0000, 0x0000_2000_0000)
    heap: Segment = Segment("heap", 0x0000_2000_0000, 0x0000_6000_0000)
    lock_region: Segment = Segment("locks", 0x0000_6000_0000, 0x0000_7000_0000)
    stack: Segment = Segment("stack", 0x0000_7000_0000, 0x0000_8000_0000)

    def segments(self) -> Tuple[Segment, ...]:
        return (self.globals_seg, self.heap, self.lock_region, self.stack)

    def segment_of(self, address: int) -> Optional[Segment]:
        """Return the segment containing ``address``, or None."""
        for seg in self.segments():
            if seg.contains(address):
                return seg
        return None

    def is_shadow(self, address: int) -> bool:
        """True if ``address`` lies in the shadow region."""
        return bool(address & SHADOW_BIT)

    def shadow_address(self, address: int) -> int:
        """Map a data address to the address of its shadow metadata word.

        Every data word shadows to a metadata slot; we keep the mapping
        word-for-word (the metadata *size* is accounted separately by
        :class:`repro.memory.shadow.ShadowSpace` and the page accountant) so
        the translation is exactly the bit-concatenation of §3.3.
        """
        if self.is_shadow(address):
            raise ProgramError("address is already a shadow address")
        return SHADOW_BIT | address


class AddressSpace:
    """Functional word-granular memory plus segment bookkeeping."""

    def __init__(self, layout: Optional[AddressSpaceLayout] = None,
                 strict: bool = False):
        self.layout = layout or AddressSpaceLayout()
        #: word-aligned address -> 64-bit value
        self._words: Dict[int, int] = {}
        #: When strict, accesses outside any mapped segment raise
        #: :class:`UncheckedAccessError` (used to show what an unprotected
        #: baseline lets an exploit do versus a wild access).
        self.strict = strict
        self.reads = 0
        self.writes = 0

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def word_address(address: int) -> int:
        return address & ~(WORD_BYTES - 1)

    def _check_mapped(self, address: int) -> None:
        if not self.strict:
            return
        if self.layout.is_shadow(address):
            return
        if self.layout.segment_of(address) is None:
            raise UncheckedAccessError(
                f"access to unmapped address {address:#x}", address=address)

    # -- word access ------------------------------------------------------
    def load_word(self, address: int) -> int:
        """Load the 64-bit word containing ``address`` (aligned)."""
        self._check_mapped(address)
        self.reads += 1
        return self._words.get(self.word_address(address), 0)

    def store_word(self, address: int, value: int) -> None:
        """Store a 64-bit value at the word containing ``address``."""
        self._check_mapped(address)
        self.writes += 1
        self._words[self.word_address(address)] = value & WORD_MASK

    # -- sized access -------------------------------------------------------
    def load(self, address: int, size: int = WORD_BYTES) -> int:
        """Load ``size`` bytes (1/2/4/8) starting at ``address``."""
        if size == WORD_BYTES and address % WORD_BYTES == 0:
            return self.load_word(address)
        word = self.load_word(address)
        offset = (address % WORD_BYTES) * 8
        mask = (1 << (size * 8)) - 1
        return (word >> offset) & mask

    def store(self, address: int, value: int, size: int = WORD_BYTES) -> None:
        """Store ``size`` bytes of ``value`` starting at ``address``."""
        if size == WORD_BYTES and address % WORD_BYTES == 0:
            self.store_word(address, value)
            return
        word = self.load_word(address)
        offset = (address % WORD_BYTES) * 8
        mask = ((1 << (size * 8)) - 1) << offset
        word = (word & ~mask) | ((value << offset) & mask)
        self.store_word(address, word)

    # -- introspection ------------------------------------------------------
    def touched_words(self) -> Iterable[int]:
        """Word addresses that have been written at least once."""
        return self._words.keys()

    def words_in(self, segment: Segment) -> int:
        """Number of written words that fall inside ``segment``."""
        return sum(1 for a in self._words if segment.contains(a))

    def clear(self) -> None:
        self._words.clear()
        self.reads = 0
        self.writes = 0
