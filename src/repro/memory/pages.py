"""Page-granularity accounting for the Figure 10 memory-overhead experiment.

The paper reports memory overhead two ways: total *words* of memory accessed
and total 4KB *pages* of memory accessed, the latter reflecting on-demand
allocation of shadow pages by the operating system (§9.3, Figure 10).  The
difference between the two captures fragmentation from page-granularity
allocation of the shadow space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

PAGE_SIZE = 4096


@dataclass
class PageAccountant:
    """Tracks words and 4KB pages touched in the data and shadow spaces."""

    data_words: Set[int] = field(default_factory=set)
    shadow_words: Set[int] = field(default_factory=set)

    def touch_data(self, address: int, size: int = 8) -> None:
        """Record a program access of ``size`` bytes at ``address``."""
        start = address & ~7
        end = address + max(size, 1)
        word = start
        while word < end:
            self.data_words.add(word)
            word += 8

    def touch_shadow(self, address: int, size: int = 16) -> None:
        """Record a shadow-space access (metadata read/write)."""
        start = address & ~7
        end = address + max(size, 1)
        word = start
        while word < end:
            self.shadow_words.add(word)
            word += 8

    # -- word accounting ------------------------------------------------------
    @property
    def data_word_count(self) -> int:
        return len(self.data_words)

    @property
    def shadow_word_count(self) -> int:
        return len(self.shadow_words)

    def word_overhead(self) -> float:
        """Shadow words as a fraction of data words (Figure 10, left bars)."""
        if not self.data_words:
            return 0.0
        return len(self.shadow_words) / len(self.data_words)

    # -- page accounting ------------------------------------------------------
    @staticmethod
    def _pages(words: Iterable[int]) -> Set[int]:
        return {w // PAGE_SIZE for w in words}

    @property
    def data_page_count(self) -> int:
        return len(self._pages(self.data_words))

    @property
    def shadow_page_count(self) -> int:
        return len(self._pages(self.shadow_words))

    def page_overhead(self) -> float:
        """Shadow pages as a fraction of data pages (Figure 10, right bars)."""
        data_pages = self.data_page_count
        if data_pages == 0:
            return 0.0
        return self.shadow_page_count / data_pages

    def clear(self) -> None:
        self.data_words.clear()
        self.shadow_words.clear()
