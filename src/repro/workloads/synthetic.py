"""Synthetic SPEC-like workload generator.

Generates a dynamic macro-instruction trace whose mix matches a
:class:`~repro.workloads.profiles.BenchmarkProfile`: memory intensity,
pointer density, allocation/call behaviour, locality and branch behaviour.
The generator drives the *real* instrumented runtime and identifier machinery
to obtain concrete heap addresses and lock locations, so the trace exercises
the same allocator, shadow-address and lock-location code paths that a real
program would — only the instruction selection is synthetic.

The produced :class:`~repro.sim.trace.DynamicOp` stream is what the trace
expander and the out-of-order timing model consume for the Figure 5/7/8/9/10/11
experiments.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.allocator.runtime import AllocationRecord, InstrumentedRuntime
from repro.core.identifier import IdentifierTable
from repro.isa.instructions import AccessSize, Instruction, Opcode, PointerHint
from repro.isa.registers import ArchReg, fp_reg, int_reg
from repro.memory.address_space import AddressSpace
from repro.sim.trace import DynamicOp
from repro.workloads.profiles import BenchmarkProfile


#: Interned Instruction instances, keyed by their full field tuple.  The
#: generator emits the same few hundred static shapes millions of times;
#: instructions are immutable by convention, and every consumer (expander,
#: tokenizer, trace equality) compares them by value, so sharing instances
#: only removes dataclass-construction cost from the generation hot path.
_INSTRUCTION_CACHE: Dict[tuple, Instruction] = {}


def _inst(opcode: Opcode, dest: Optional[ArchReg] = None,
          srcs: Tuple[ArchReg, ...] = (), imm: int = 0,
          size: AccessSize = AccessSize.WORD64,
          pointer_hint: PointerHint = PointerHint.UNKNOWN) -> Instruction:
    key = (opcode, dest, srcs, imm, size, pointer_hint)
    inst = _INSTRUCTION_CACHE.get(key)
    if inst is None:
        inst = _INSTRUCTION_CACHE[key] = Instruction(
            opcode, dest=dest, srcs=srcs, imm=imm, size=size,
            pointer_hint=pointer_hint)
    return inst


#: Registers used to hold addresses (pointers into live objects).
ADDRESS_REGS = tuple(int_reg(i) for i in range(1, 7))
#: Registers used for integer data values.
VALUE_REGS = tuple(int_reg(i) for i in range(7, 13))
#: Registers used for floating point data.
FP_REGS = tuple(fp_reg(i) for i in range(0, 6))

#: Number of ALU instructions emitted to stand in for the allocator's own
#: work on each malloc/free (the bulk of BASELINE_*_INSTRUCTIONS is loop code
#: we do not need to model instruction-by-instruction, but a handful of
#: dependent ALU ops preserves the front-end cost).
RUNTIME_CALL_ALU_OPS = 6


@dataclass
class _LiveObject:
    """A live heap object the generator can direct accesses at."""

    record: AllocationRecord
    cursor: int = 0
    #: Whether this object is part of a pointer-rich data structure (linked
    #: structures, pointer arrays).  Pointer loads/stores are directed at
    #: these objects; plain data accesses go anywhere.  Real programs keep
    #: pointers in a subset of their objects, which is what bounds the shadow
    #: footprint (Figure 10).
    pointer_rich: bool = False

    @property
    def base(self) -> int:
        return self.record.base

    @property
    def size(self) -> int:
        return self.record.size

    @property
    def lock(self) -> int:
        return self.record.metadata.identifier.lock


class SyntheticWorkload:
    """Generates dynamic traces with a given benchmark's characteristics."""

    #: Fraction of memory accesses directed at the global segment (always
    #: valid global identifier, §7) rather than heap objects.
    GLOBAL_ACCESS_FRACTION = 0.15
    #: Span of the frequently-touched global data (bytes).
    GLOBAL_SPAN_BYTES = 8 * 1024
    #: Number of recently-touched heap objects forming the hot set.
    HOT_SET_OBJECTS = 8
    #: Upper bound on the pool of heap objects cold accesses may reach within
    #: one phase; the pool slides over the full working set as objects churn,
    #: mimicking program phase behaviour instead of uniformly random traffic.
    COLD_POOL_OBJECTS = 192

    def __init__(self, profile: BenchmarkProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        # crc32 rather than hash(): str hashing is randomized per process, and
        # the trace must be a pure function of (profile, seed) so that cached
        # results and worker processes agree with a serial in-process run.
        self.rng = random.Random((zlib.crc32(profile.name.encode()) & 0xFFFF) ^ seed)
        self.memory = AddressSpace()
        self.identifiers = IdentifierTable(self.memory)
        self.runtime = InstrumentedRuntime(self.memory, identifiers=self.identifiers)
        self._objects: List[_LiveObject] = []
        self._hot: List[_LiveObject] = []
        self._global_lock = self.identifiers.global_identifier().lock
        self._global_cursor = 0
        self._call_depth = 0
        self._value_rotation = 0
        self._allocation_counter = 0
        self._populate_working_set()

    # -- working set -------------------------------------------------------------
    def _allocation_size(self) -> int:
        typical = self.profile.typical_alloc_bytes
        low = max(16, typical // 2)
        high = typical * 2
        return self.rng.randrange(low, high + 1, 16) or typical

    def _populate_working_set(self) -> None:
        for _ in range(self.profile.working_set_objects):
            self._allocate_object()

    def _allocate_object(self) -> _LiveObject:
        pointer, metadata = self.runtime.malloc(self._allocation_size())
        record = self.runtime.record_for(pointer)
        assert record is not None
        self._allocation_counter += 1
        obj = _LiveObject(record=record,
                          pointer_rich=(self._allocation_counter % 4 == 0))
        self._objects.append(obj)
        self._hot.append(obj)
        if len(self._hot) > self.HOT_SET_OBJECTS:
            self._hot.pop(0)
        return obj

    def _free_random_object(self) -> Optional[_LiveObject]:
        if len(self._objects) <= max(4, self.profile.working_set_objects // 4):
            return None
        index = self.rng.randrange(len(self._objects))
        obj = self._objects.pop(index)
        if obj in self._hot:
            self._hot.remove(obj)
        self.runtime.free(obj.base, obj.record.metadata)
        return obj

    # -- register selection -----------------------------------------------------------
    def _address_reg(self) -> ArchReg:
        return ADDRESS_REGS[self.rng.randrange(len(ADDRESS_REGS))]

    def _value_reg(self) -> ArchReg:
        self._value_rotation = (self._value_rotation + 1) % len(VALUE_REGS)
        return VALUE_REGS[self._value_rotation]

    def _fp_reg(self) -> ArchReg:
        return FP_REGS[self.rng.randrange(len(FP_REGS))]

    # -- memory target selection --------------------------------------------------------
    def _pick_object(self, pointer_access: bool = False) -> _LiveObject:
        if self._hot and self.rng.random() < self.profile.temporal_locality:
            candidates = self._hot
            if pointer_access:
                rich = [obj for obj in self._hot if obj.pointer_rich]
                candidates = rich or self._hot
            return candidates[self.rng.randrange(len(candidates))]
        # Cold accesses stay within a bounded, slowly-drifting pool of recent
        # objects (program phases) rather than the entire population.
        pool = min(len(self._objects), self.COLD_POOL_OBJECTS)
        start = len(self._objects) - pool
        if pointer_access:
            rich = [obj for obj in self._objects[start:] if obj.pointer_rich]
            obj = rich[self.rng.randrange(len(rich))] if rich \
                else self._objects[start + self.rng.randrange(pool)]
        else:
            obj = self._objects[start + self.rng.randrange(pool)]
        self._hot.append(obj)
        if len(self._hot) > self.HOT_SET_OBJECTS:
            self._hot.pop(0)
        return obj

    def _heap_target(self, access_bytes: int, pointer_access: bool) -> Tuple[int, int]:
        """Return (address, lock_address) for a heap access."""
        obj = self._pick_object(pointer_access)
        limit = max(obj.size - access_bytes, 1)
        if self.rng.random() < self.profile.spatial_locality:
            offset = obj.cursor % limit
            obj.cursor = (obj.cursor + access_bytes) % max(obj.size, access_bytes)
        else:
            offset = self.rng.randrange(0, limit)
        offset &= ~(access_bytes - 1)
        return obj.base + offset, obj.lock

    def _global_target(self, access_bytes: int, pointer_access: bool) -> Tuple[int, int]:
        segment = self.memory.layout.globals_seg
        span = min(segment.size, self.GLOBAL_SPAN_BYTES)
        if pointer_access:
            # Global pointers (tables of pointers, static linked structures)
            # live in a compact region of the data segment.
            span = min(span, 1024)
        if self.rng.random() < self.profile.spatial_locality:
            offset = self._global_cursor % span
            self._global_cursor += access_bytes
        else:
            offset = self.rng.randrange(0, span)
        offset &= ~(access_bytes - 1)
        return segment.base + offset, self._global_lock

    def _memory_target(self, access_bytes: int,
                       pointer_access: bool = False) -> Tuple[int, int]:
        if self.rng.random() < self.GLOBAL_ACCESS_FRACTION or not self._objects:
            return self._global_target(access_bytes, pointer_access)
        return self._heap_target(access_bytes, pointer_access)

    # -- instruction emission --------------------------------------------------------------
    def _memory_op(self) -> Iterator[DynamicOp]:
        profile = self.profile
        roll = self.rng.random()
        is_load = self.rng.random() < profile.load_fraction

        if roll < profile.pointer_fraction:
            hint, size, fp = PointerHint.POINTER, AccessSize.WORD64, False
        elif roll < profile.word_integer_fraction:
            hint, size, fp = PointerHint.NOT_POINTER, AccessSize.WORD64, False
        elif roll < profile.word_integer_fraction + profile.fp_access_fraction:
            hint, size, fp = PointerHint.NOT_POINTER, AccessSize.WORD64, True
        else:
            hint, size, fp = PointerHint.NOT_POINTER, AccessSize.WORD32, False

        address, lock = self._memory_target(int(size),
                                            pointer_access=hint is PointerHint.POINTER)
        address_reg = self._address_reg()

        # Occasionally refresh the address register with pointer arithmetic so
        # memory operations have realistic address dependences.
        if self.rng.random() < 0.25:
            yield DynamicOp(_inst(Opcode.ADD_RI, dest=address_reg,
                                  srcs=(address_reg,), imm=8))

        if fp:
            opcode = Opcode.FLOAD if is_load else Opcode.FSTORE
            data_reg = self._fp_reg()
        else:
            opcode = Opcode.LOAD if is_load else Opcode.STORE
            data_reg = self._value_reg()

        if is_load:
            inst = _inst(opcode, dest=data_reg, srcs=(address_reg,),
                         size=size, pointer_hint=hint)
        else:
            inst = _inst(opcode, srcs=(address_reg, data_reg),
                         size=size, pointer_hint=hint)
        yield DynamicOp(inst, address=address, lock_address=lock)

    def _alu_op(self) -> DynamicOp:
        if self.rng.random() < self.profile.fp_compute_fraction:
            dest, a, b = self._fp_reg(), self._fp_reg(), self._fp_reg()
            return DynamicOp(_inst(Opcode.FADD, dest=dest, srcs=(a, b)))
        previous_dest = VALUE_REGS[self._value_rotation]
        dest = self._value_reg()
        if self.rng.random() < 0.35:
            # A dependent chain: consume the most recently produced value.
            a = previous_dest
        else:
            a = VALUE_REGS[(self._value_rotation + 2) % len(VALUE_REGS)]
        b = VALUE_REGS[(self._value_rotation + 4) % len(VALUE_REGS)]
        # Pointer-arithmetic-style single-source operations dominate; the
        # two-register-source forms (which cost a select µop under Watchdog,
        # §6.2) are a smaller slice, matching the "other" segment of Figure 8.
        opcode = self.rng.choice((Opcode.ADD_RI, Opcode.ADD_RI, Opcode.AND_RR,
                                  Opcode.XOR_RR, Opcode.ADD_RR, Opcode.MUL_RR))
        if opcode is Opcode.ADD_RI:
            return DynamicOp(_inst(opcode, dest=dest, srcs=(a,), imm=1))
        return DynamicOp(_inst(opcode, dest=dest, srcs=(a, b)))

    def _branch_op(self) -> DynamicOp:
        mispredicted = self.rng.random() < self.profile.mispredict_rate
        inst = _inst(Opcode.BRANCH, srcs=(self._value_reg(),))
        return DynamicOp(inst, mispredicted=mispredicted)

    def _runtime_call_ops(self, lock_address: int, is_alloc: bool) -> Iterator[DynamicOp]:
        """Instructions standing in for the malloc/free runtime body."""
        for _ in range(RUNTIME_CALL_ALU_OPS):
            yield self._alu_op()
        pointer_reg = self._address_reg()
        identifier_reg = VALUE_REGS[0]
        if is_alloc:
            inst = _inst(Opcode.SETIDENT, srcs=(pointer_reg, identifier_reg))
        else:
            inst = _inst(Opcode.GETIDENT, dest=identifier_reg, srcs=(pointer_reg,))
        yield DynamicOp(inst, lock_address=lock_address)

    def _allocation_event(self) -> Iterator[DynamicOp]:
        # Keep the working set roughly constant: free one object for every
        # allocation once the target population is reached.
        freed = None
        if len(self._objects) >= self.profile.working_set_objects:
            freed = self._free_random_object()
        if freed is not None:
            yield from self._runtime_call_ops(freed.lock, is_alloc=False)
        obj = self._allocate_object()
        yield from self._runtime_call_ops(obj.lock, is_alloc=True)

    def _call_event(self) -> Iterator[DynamicOp]:
        if self._call_depth < 16 and self.rng.random() < 0.6:
            self._call_depth += 1
            yield DynamicOp(_inst(Opcode.CALL))
        elif self._call_depth > 0:
            self._call_depth -= 1
            yield DynamicOp(_inst(Opcode.RET))

    # -- the generator ------------------------------------------------------------------------
    def generate(self, instructions: int) -> Iterator[DynamicOp]:
        """Yield approximately ``instructions`` dynamic macro operations."""
        profile = self.profile
        emitted = 0
        alloc_probability = profile.allocs_per_kilo / 1000.0
        call_probability = profile.calls_per_kilo / 1000.0
        while emitted < instructions:
            roll = self.rng.random()
            if roll < alloc_probability:
                ops = list(self._allocation_event())
            elif roll < alloc_probability + call_probability:
                ops = list(self._call_event())
            elif roll < alloc_probability + call_probability + profile.memory_fraction:
                ops = list(self._memory_op())
            elif roll < (alloc_probability + call_probability + profile.memory_fraction
                         + profile.branch_fraction):
                ops = [self._branch_op()]
            else:
                ops = [self._alu_op()]
            for op in ops:
                yield op
                emitted += 1
                if emitted >= instructions:
                    return

    def trace(self, instructions: int) -> List[DynamicOp]:
        """Materialize a trace as a list (convenience for tests)."""
        return list(self.generate(instructions))

    # -- working-set introspection (used by the simulator's warm-up) --------------------
    def working_set_lines(self) -> Iterator[int]:
        """64-byte-aligned addresses of every line in the current working set.

        Covers all live heap objects and the hot global span; the simulator
        touches these (and their shadow lines) before the measured window so
        that the measured window reflects steady state rather than the cold
        start of a short synthetic trace.
        """
        for obj in self._objects:
            line = obj.base & ~63
            while line < obj.base + obj.size:
                yield line
                line += 64
        segment = self.memory.layout.globals_seg
        span = min(segment.size, self.GLOBAL_SPAN_BYTES)
        line = segment.base
        while line < segment.base + span:
            yield line
            line += 64

    def lock_locations(self) -> Iterator[int]:
        """Lock-location addresses of every live object plus the global lock."""
        for obj in self._objects:
            yield obj.lock
        yield self._global_lock

    def snapshot_working_set(self):
        """Freeze the current working set for configuration-independent reuse.

        The returned snapshot answers the same two queries the simulator's
        warm-up asks of the live workload (`working_set_lines`,
        `lock_locations`) but is immutable and picklable, so one generated
        trace can be replayed under many Watchdog configurations — including
        in worker processes — without re-running the generator.
        """
        from repro.workloads.bundle import WorkingSetSnapshot

        return WorkingSetSnapshot(lines=tuple(self.working_set_lines()),
                                  locks=tuple(self.lock_locations()))

    @property
    def live_objects(self) -> int:
        return len(self._objects)
