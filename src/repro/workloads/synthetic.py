"""Synthetic SPEC-like workload generator: the trace-emission layer.

Generates a dynamic macro-instruction trace whose mix matches a
:class:`~repro.workloads.profiles.BenchmarkProfile`: memory intensity,
pointer density, allocation/call behaviour, locality and branch behaviour.
The generator drives the *real* instrumented runtime and identifier machinery
to obtain concrete heap addresses and lock locations, so the trace exercises
the same allocator, shadow-address and lock-location code paths that a real
program would — only the instruction selection is synthetic.

The generator is split into two layers:

* :class:`~repro.workloads.state_core.WorkloadCore` (the base class) evolves
  the workload's *functional state* — RNG stream, allocator-backed object
  set, locality cursors, hot set — and can do so in bulk without producing
  any instructions (``advance_bulk``), which is what makes §9.1 fast-forward
  windows at paper scale (100M+ instructions) tractable;
* :class:`SyntheticWorkload` (this module) materializes the
  :class:`~repro.sim.trace.DynamicOp` stream on top of that state, but only
  where a trace is actually consumed: :meth:`generate`/:meth:`trace` for
  conventional runs, :meth:`emit` for the warm-up/measure windows of a
  sampled run, with :meth:`fast_forward` covering the skip windows.

The produced :class:`~repro.sim.trace.DynamicOp` stream is what the trace
expander and the out-of-order timing model consume for the Figure 5/7/8/9/10/11
experiments.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.isa.instructions import AccessSize, Instruction, Opcode, PointerHint
from repro.isa.registers import ArchReg, fp_reg, int_reg
from repro.sim.trace import DynamicOp
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.state_core import WorkloadCore

#: Registers used to hold addresses (pointers into live objects).
ADDRESS_REGS = tuple(int_reg(i) for i in range(1, 7))
#: Registers used for integer data values.
VALUE_REGS = tuple(int_reg(i) for i in range(7, 13))
#: Registers used for floating point data.
FP_REGS = tuple(fp_reg(i) for i in range(0, 6))

#: Number of ALU instructions emitted to stand in for the allocator's own
#: work on each malloc/free (the bulk of BASELINE_*_INSTRUCTIONS is loop code
#: we do not need to model instruction-by-instruction, but a handful of
#: dependent ALU ops preserves the front-end cost).
RUNTIME_CALL_ALU_OPS = 6

#: The two-register-source ALU opcodes drawn by :meth:`_alu_op` (identical
#: draw to ``rng.choice``: one ``_randbelow(6)`` selecting from this tuple).
_ALU_OPCODES = (Opcode.ADD_RI, Opcode.ADD_RI, Opcode.AND_RR,
                Opcode.XOR_RR, Opcode.ADD_RR, Opcode.MUL_RR)

#: Ceiling on interned Instruction shapes per workload.  The generator only
#: ever produces a few hundred distinct shapes, so the bound exists purely as
#: a safety valve: a paper-scale run in a pooled worker can never grow the
#: cache without limit (the old module-level cache could, across profiles and
#: worker lifetimes).  Consumers compare instructions by value, so dropping
#: the cache is always safe.
_INSTRUCTION_CACHE_LIMIT = 4096


class SyntheticWorkload(WorkloadCore):
    """Generates dynamic traces with a given benchmark's characteristics."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 0):
        #: Interned Instruction instances, keyed by their full field tuple.
        #: The generator emits the same few hundred static shapes millions of
        #: times; instructions are immutable by convention and every consumer
        #: (expander, tokenizer, trace equality) compares them by value, so
        #: sharing instances only removes dataclass-construction cost.  Keyed
        #: per workload (bounded lifetime) rather than per process.
        self._instruction_cache: Dict[tuple, Instruction] = {}
        #: Ops of an event split by a sampled-window boundary, waiting for
        #: the next window (`fast_forward` discards into it, `emit` drains
        #: from it) — the continuous-stream equivalent of the suspended
        #: generator the sampled segmentation used to hold open.
        self._pending: List[DynamicOp] = []
        super().__init__(profile, seed=seed)

    def _inst(self, opcode: Opcode, dest: Optional[ArchReg] = None,
              srcs: Tuple[ArchReg, ...] = (), imm: int = 0,
              size: AccessSize = AccessSize.WORD64,
              pointer_hint: PointerHint = PointerHint.UNKNOWN) -> Instruction:
        cache = self._instruction_cache
        key = (opcode, dest, srcs, imm, size, pointer_hint)
        inst = cache.get(key)
        if inst is None:
            if len(cache) >= _INSTRUCTION_CACHE_LIMIT:
                cache.clear()
            inst = cache[key] = Instruction(
                opcode, dest=dest, srcs=srcs, imm=imm, size=size,
                pointer_hint=pointer_hint)
        return inst

    # -- register selection -----------------------------------------------------------
    def _address_reg(self) -> ArchReg:
        return ADDRESS_REGS[self._randbelow(6)]

    def _value_reg(self) -> ArchReg:
        self._value_rotation = (self._value_rotation + 1) % len(VALUE_REGS)
        return VALUE_REGS[self._value_rotation]

    def _fp_reg(self) -> ArchReg:
        return FP_REGS[self._randbelow(6)]

    # -- instruction emission --------------------------------------------------------------
    def _memory_op(self) -> Iterator[DynamicOp]:
        profile = self.profile
        roll = self.rng.random()
        is_load = self.rng.random() < profile.load_fraction

        if roll < profile.pointer_fraction:
            hint, size, fp = PointerHint.POINTER, AccessSize.WORD64, False
        elif roll < profile.word_integer_fraction:
            hint, size, fp = PointerHint.NOT_POINTER, AccessSize.WORD64, False
        elif roll < profile.word_integer_fraction + profile.fp_access_fraction:
            hint, size, fp = PointerHint.NOT_POINTER, AccessSize.WORD64, True
        else:
            hint, size, fp = PointerHint.NOT_POINTER, AccessSize.WORD32, False

        address, lock = self._memory_target(int(size),
                                            pointer_access=hint is PointerHint.POINTER)
        address_reg = self._address_reg()

        # Occasionally refresh the address register with pointer arithmetic so
        # memory operations have realistic address dependences.
        if self.rng.random() < 0.25:
            yield DynamicOp(self._inst(Opcode.ADD_RI, dest=address_reg,
                                       srcs=(address_reg,), imm=8))

        if fp:
            opcode = Opcode.FLOAD if is_load else Opcode.FSTORE
            data_reg = self._fp_reg()
        else:
            opcode = Opcode.LOAD if is_load else Opcode.STORE
            data_reg = self._value_reg()

        if is_load:
            inst = self._inst(opcode, dest=data_reg, srcs=(address_reg,),
                              size=size, pointer_hint=hint)
        else:
            inst = self._inst(opcode, srcs=(address_reg, data_reg),
                              size=size, pointer_hint=hint)
        yield DynamicOp(inst, address=address, lock_address=lock)

    def _alu_op(self) -> DynamicOp:
        if self.rng.random() < self.profile.fp_compute_fraction:
            dest, a, b = self._fp_reg(), self._fp_reg(), self._fp_reg()
            return DynamicOp(self._inst(Opcode.FADD, dest=dest, srcs=(a, b)))
        previous_dest = VALUE_REGS[self._value_rotation]
        dest = self._value_reg()
        if self.rng.random() < 0.35:
            # A dependent chain: consume the most recently produced value.
            a = previous_dest
        else:
            a = VALUE_REGS[(self._value_rotation + 2) % len(VALUE_REGS)]
        b = VALUE_REGS[(self._value_rotation + 4) % len(VALUE_REGS)]
        # Pointer-arithmetic-style single-source operations dominate; the
        # two-register-source forms (which cost a select µop under Watchdog,
        # §6.2) are a smaller slice, matching the "other" segment of Figure 8.
        opcode = _ALU_OPCODES[self._randbelow(6)]
        if opcode is Opcode.ADD_RI:
            return DynamicOp(self._inst(opcode, dest=dest, srcs=(a,), imm=1))
        return DynamicOp(self._inst(opcode, dest=dest, srcs=(a, b)))

    def _branch_op(self) -> DynamicOp:
        mispredicted = self.rng.random() < self.profile.mispredict_rate
        inst = self._inst(Opcode.BRANCH, srcs=(self._value_reg(),))
        return DynamicOp(inst, mispredicted=mispredicted)

    def _runtime_call_ops(self, lock_address: int, is_alloc: bool) -> Iterator[DynamicOp]:
        """Instructions standing in for the malloc/free runtime body."""
        for _ in range(RUNTIME_CALL_ALU_OPS):
            yield self._alu_op()
        pointer_reg = self._address_reg()
        identifier_reg = VALUE_REGS[0]
        if is_alloc:
            inst = self._inst(Opcode.SETIDENT, srcs=(pointer_reg, identifier_reg))
        else:
            inst = self._inst(Opcode.GETIDENT, dest=identifier_reg,
                              srcs=(pointer_reg,))
        yield DynamicOp(inst, lock_address=lock_address)

    def _allocation_event(self) -> Iterator[DynamicOp]:
        # Keep the working set roughly constant: free one object for every
        # allocation once the target population is reached.
        freed = None
        if len(self._order) >= self.profile.working_set_objects:
            freed = self._free_random_object()
        if freed is not None:
            yield from self._runtime_call_ops(self._slot_locks[freed],
                                              is_alloc=False)
        slot = self._allocate_object()
        yield from self._runtime_call_ops(self._slot_locks[slot], is_alloc=True)

    def _call_event(self) -> Iterator[DynamicOp]:
        if self._call_depth < 16 and self.rng.random() < 0.6:
            self._call_depth += 1
            yield DynamicOp(self._inst(Opcode.CALL))
        elif self._call_depth > 0:
            self._call_depth -= 1
            yield DynamicOp(self._inst(Opcode.RET))

    def _event_ops(self) -> List[DynamicOp]:
        """Materialize the next event of the continuous dynamic stream.

        Events draw all their randomness up front (the list is built before
        anything is consumed), so window boundaries can split an event's ops
        without perturbing the draw sequence.
        """
        roll = self.rng.random()
        if roll < self._alloc_probability:
            return list(self._allocation_event())
        if roll < self._ac_probability:
            return list(self._call_event())
        if roll < self._mem_hi:
            return list(self._memory_op())
        if roll < self._br_hi:
            return [self._branch_op()]
        return [self._alu_op()]

    # -- the generator ------------------------------------------------------------------------
    def generate(self, instructions: int) -> Iterator[DynamicOp]:
        """Yield approximately ``instructions`` dynamic macro operations.

        This is the stand-alone streaming API: each call starts at the next
        event boundary and a final event truncated by the limit has its tail
        *discarded* (unchanged semantics — unsampled bundles depend on it).
        The continuous-stream APIs (:meth:`emit`/:meth:`fast_forward`) keep
        split events pending instead and cannot be mixed with this one.
        """
        if self._pending:
            raise ConfigurationError(
                "generate() cannot follow fast_forward()/emit() mid-event; "
                "use emit() to continue the continuous stream")
        emitted = 0
        while emitted < instructions:
            for op in self._event_ops():
                yield op
                emitted += 1
                if emitted >= instructions:
                    return

    def trace(self, instructions: int) -> List[DynamicOp]:
        """Materialize a trace as a list (convenience for tests)."""
        return list(self.generate(instructions))

    # -- the continuous-stream window APIs (§9.1 sampled segmentation) ---------------
    def emit(self, count: int) -> List[DynamicOp]:
        """Materialize the next ``count`` ops of the continuous stream.

        Equivalent to ``islice`` over one never-restarted :meth:`generate`
        run: an event split by the window boundary keeps its tail pending for
        the next :meth:`emit`/:meth:`fast_forward` call.
        """
        out: List[DynamicOp] = []
        pending = self._pending
        if pending:
            if len(pending) >= count:
                out = pending[:count]
                del pending[:count]
                return out
            out = pending[:]
            del pending[:]
        while len(out) < count:
            ops = self._event_ops()
            need = count - len(out)
            if len(ops) <= need:
                out.extend(ops)
            else:
                out.extend(ops[:need])
                pending.extend(ops[need:])
        return out

    def fast_forward(self, count: int) -> None:
        """Advance the functional state across ``count`` ops of the stream.

        The RNG position, allocator state, working set and locality cursors
        end up bit-identical to ``emit(count)`` with the result thrown away —
        that equivalence is what keeps sampled traces unchanged — but the
        skip window's instructions are never materialized.  Whole events are
        advanced by the state core in bulk; only an event straddling the
        window boundary is materialized, into the pending buffer.

        Because consecutive calls compose (``fast_forward(a + b)`` ≡
        ``fast_forward(a); fast_forward(b)``, both golden-pinned), any window
        of the continuous stream can be re-entered from a fresh workload —
        which is what :meth:`repro.workloads.streaming.SampleStream.segment`
        exploits to regenerate one §9.1 sample bit-identically on demand.
        """
        if count <= 0:
            return
        pending = self._pending
        if pending:
            if len(pending) >= count:
                del pending[:count]
                return
            count -= len(pending)
            del pending[:]
        count = self.advance_bulk(count)
        while count > 0:
            ops = self._event_ops()
            n = len(ops)
            if n <= count:
                count -= n
            else:
                pending.extend(ops[count:])
                return
