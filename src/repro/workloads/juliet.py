"""Juliet-style use-after-free test suite (§9.2).

The paper validates Watchdog against the 291 use-after-free test cases
(CWE-416 *Use After Free* and CWE-562 *Return of Stack Variable Address*) of
the NIST Juliet suite and reports that all 291 are detected with no false
positives.  The suite itself is C source we cannot ship, so this module
generates the same *patterns* programmatically: each case is a small program
built with :class:`~repro.program.builder.ProgramBuilder` exercising one of
ten use-after-free flavours, parameterized (allocation sizes, access offsets,
aliasing depth, call depth) to produce 291 distinct cases.

Every faulty case has a *benign twin* — the same program with the temporal
error removed — used to confirm the absence of false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ProgramError
from repro.program.builder import FunctionBuilder, ProgramBuilder
from repro.program.ir import Program

#: Number of faulty cases in the NIST suite the paper uses.
JULIET_CASE_COUNT = 291


@dataclass
class JulietCase:
    """One generated test case."""

    name: str
    cwe: str
    pattern: str
    program: Program
    #: Expected violation kind for faulty cases; None for benign twins.
    expected_kind: Optional[str]

    @property
    def is_faulty(self) -> bool:
        return self.expected_kind is not None


# --------------------------------------------------------------------------- patterns
def _heap_uaf_read(size: int, offset: int, faulty: bool) -> Program:
    """CWE-416: read through a pointer after free (Figure 1, left)."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", size)
        main.mov_imm("r8", 0x41)
        main.store("r1", "r8", offset)
        main.load("r9", "r1", offset)
        if faulty:
            main.free("r1")
            main.load("r10", "r1", offset)
        else:
            main.load("r10", "r1", offset)
            main.free("r1")
    return builder.build()


def _heap_uaf_write(size: int, offset: int, faulty: bool) -> Program:
    """CWE-416: write through a pointer after free."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", size)
        main.mov_imm("r8", 0x42)
        if faulty:
            main.free("r1")
            main.store("r1", "r8", offset)
        else:
            main.store("r1", "r8", offset)
            main.free("r1")
    return builder.build()


def _heap_uaf_realloc(size: int, offset: int, faulty: bool) -> Program:
    """CWE-416 with reallocation: the freed chunk is re-used by a new
    allocation of the same size before the dangling access (the case
    location-based checkers cannot detect, §2.1)."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", size)
        main.mov("r2", "r1")           # q = p (alias)
        main.mov_imm("r8", 0x1234)
        main.store("r1", "r8", offset)
        if faulty:
            main.free("r1")
        main.malloc("r3", size)        # r = malloc(size): likely reuses the chunk
        main.mov_imm("r9", 0xBEEF)
        main.store("r3", "r9", offset)
        main.load("r10", "r2", offset)  # dereference q
        if not faulty:
            main.free("r1")
        main.free("r3")
    return builder.build()


def _heap_uaf_alias(size: int, aliases: int, faulty: bool) -> Program:
    """CWE-416: the dangling access happens through a chain of copies."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", size)
        reg = "r1"
        for index in range(aliases):
            nxt = f"r{2 + index}"
            main.mov(nxt, reg)
            reg = nxt
        if faulty:
            main.free("r1")
            main.load("r9", reg, 0)
        else:
            main.load("r9", reg, 0)
            main.free("r1")
    return builder.build()


def _heap_uaf_offset(size: int, offset: int, faulty: bool) -> Program:
    """CWE-416: dangling pointer produced by pointer arithmetic."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", size)
        main.add_imm("r2", "r1", offset)
        main.mov_imm("r8", 7)
        main.store("r2", "r8", 0)
        if faulty:
            main.free("r1")
            main.load("r9", "r2", 0)
        else:
            main.load("r9", "r2", 0)
            main.free("r1")
    return builder.build()


def _heap_uaf_via_memory(size: int, slot: int, faulty: bool) -> Program:
    """CWE-416: the pointer is spilled to memory and reloaded before use,
    exercising the shadow-space metadata path (§3.3)."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", size)
        main.malloc("r2", 64)                     # a table holding pointers
        main.store_ptr("r2", "r1", slot)          # table[slot] = p
        if faulty:
            main.free("r1")
        main.load_ptr("r3", "r2", slot)           # q = table[slot]
        main.load("r9", "r3", 0)                  # *q
        if not faulty:
            main.free("r1")
        main.free("r2")
    return builder.build()


def _heap_uaf_across_call(size: int, depth: int, faulty: bool) -> Program:
    """CWE-416: the free happens inside a callee, the use in the caller."""
    builder = ProgramBuilder()
    with builder.function("victim") as victim:
        if faulty:
            victim.free("r1")
        victim.ret()
    if depth > 1:
        with builder.function("wrapper") as wrapper:
            wrapper.call("victim")
            wrapper.ret()
    with builder.function("main") as main:
        main.malloc("r1", size)
        main.mov_imm("r8", 3)
        main.store("r1", "r8", 0)
        main.call("wrapper" if depth > 1 else "victim")
        main.load("r9", "r1", 0)
        if not faulty:
            main.free("r1")
    return builder.build()


def _double_free(size: int, spacing: int, faulty: bool) -> Program:
    """CWE-416 companion: calling free twice on the same allocation."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", size)
        main.mov("r2", "r1")
        for _ in range(spacing):
            main.mov_imm("r8", 1)
        main.free("r1")
        if faulty:
            main.free("r2")
    return builder.build()


def _stack_return_address(size: int, slot: int, faulty: bool) -> Program:
    """CWE-562: a callee publishes the address of a local; the caller uses it
    after the frame is popped (Figure 1, right)."""
    builder = ProgramBuilder()
    with builder.function("foo") as foo:
        foo.stack_alloc("r1", size)                 # int a;  r1 = &a
        foo.mov_imm("r8", 0x77)
        foo.store("r1", "r8", 0)
        foo.global_addr("r2", slot)
        foo.store_ptr("r2", "r1", 0)                # q = &a  (q is a global)
        foo.ret()
    with builder.function("main") as main:
        main.call("foo")
        main.global_addr("r2", slot)
        main.load_ptr("r3", "r2", 0)                # reload q
        if faulty:
            main.load("r9", "r3", 0)                # *q after foo returned
        else:
            main.mov_imm("r9", 0)
    return builder.build()


def _stack_uaf_register(size: int, depth: int, faulty: bool) -> Program:
    """CWE-562: the stale stack address stays in a register across return."""
    builder = ProgramBuilder()
    with builder.function("leaf") as leaf:
        leaf.stack_alloc("r1", size)
        leaf.mov_imm("r8", 0x11)
        leaf.store("r1", "r8", 0)
        leaf.ret()
    current = "leaf"
    for level in range(depth - 1):
        name = f"level{level}"
        with builder.function(name) as wrapper:
            wrapper.call(current)
            wrapper.ret()
        current = name
    with builder.function("main") as main:
        main.call(current)
        if faulty:
            main.load("r9", "r1", 0)
        else:
            main.mov_imm("r9", 0)
    return builder.build()


# --------------------------------------------------------------------------- the suite
#: pattern name -> (CWE id, expected violation kind, builder, parameter grid)
_PatternSpec = Tuple[str, str, Callable[..., Program], List[Tuple]]


def _pattern_specs() -> List[_PatternSpec]:
    sizes = [8, 16, 32, 48, 64, 96, 128, 256]
    offsets = [0, 8, 16, 24]
    specs: List[_PatternSpec] = [
        ("heap-uaf-read", "CWE-416", _heap_uaf_read,
         [(s, o) for s in sizes for o in offsets if o < s]),
        ("heap-uaf-write", "CWE-416", _heap_uaf_write,
         [(s, o) for s in sizes for o in offsets if o < s]),
        ("heap-uaf-realloc", "CWE-416", _heap_uaf_realloc,
         [(s, o) for s in sizes for o in offsets if o < s]),
        ("heap-uaf-alias", "CWE-416", _heap_uaf_alias,
         [(s, a) for s in sizes for a in (1, 2, 3, 4)]),
        ("heap-uaf-offset", "CWE-416", _heap_uaf_offset,
         [(s, o) for s in sizes for o in (8, 16, 24) if o < s]),
        ("heap-uaf-via-memory", "CWE-416", _heap_uaf_via_memory,
         [(s, o) for s in sizes for o in (0, 8, 16, 24, 32)]),
        ("heap-uaf-across-call", "CWE-416", _heap_uaf_across_call,
         [(s, d) for s in sizes for d in (1, 2)]),
        ("double-free", "CWE-416", _double_free,
         [(s, n) for s in sizes for n in (0, 1, 2, 4)]),
        ("stack-return-address", "CWE-562", _stack_return_address,
         [(s, o) for s in (8, 16, 32, 64) for o in (0, 8, 16, 24, 32, 40)]),
        ("stack-uaf-register", "CWE-562", _stack_uaf_register,
         [(s, d) for s in (8, 16, 32, 64) for d in (1, 2, 3, 4)]),
    ]
    return specs


_EXPECTED_KIND = {
    "double-free": "double-free",
}


class JulietSuite:
    """Generates the 291 faulty cases and their benign twins."""

    def __init__(self, case_count: int = JULIET_CASE_COUNT):
        if case_count <= 0:
            raise ProgramError("case_count must be positive")
        self.case_count = case_count

    def _iter_parameterizations(self):
        specs = _pattern_specs()
        indices = [0] * len(specs)
        produced = 0
        # Round-robin over the patterns so every flavour is represented even
        # for small case counts.
        while produced < self.case_count:
            progressed = False
            for spec_index, (name, cwe, build, grid) in enumerate(specs):
                if produced >= self.case_count:
                    break
                if indices[spec_index] >= len(grid):
                    continue
                params = grid[indices[spec_index]]
                indices[spec_index] += 1
                progressed = True
                produced += 1
                yield name, cwe, build, params, produced
            if not progressed:
                # Grids exhausted before reaching the requested count: reuse
                # parameterizations with a repetition index (distinct names).
                for spec_index in range(len(specs)):
                    indices[spec_index] = 0

    def faulty_cases(self) -> List[JulietCase]:
        """The ``case_count`` faulty use-after-free cases."""
        cases: List[JulietCase] = []
        for name, cwe, build, params, ordinal in self._iter_parameterizations():
            program = build(*params, True)
            expected = _EXPECTED_KIND.get(name, "use-after-free")
            cases.append(JulietCase(
                name=f"{cwe}-{name}-{ordinal:03d}", cwe=cwe, pattern=name,
                program=program, expected_kind=expected))
        return cases

    def benign_cases(self, count: Optional[int] = None) -> List[JulietCase]:
        """Benign twins (no temporal error) for false-positive testing."""
        limit = count if count is not None else self.case_count
        cases: List[JulietCase] = []
        for name, cwe, build, params, ordinal in self._iter_parameterizations():
            if len(cases) >= limit:
                break
            program = build(*params, False)
            cases.append(JulietCase(
                name=f"{cwe}-{name}-benign-{ordinal:03d}", cwe=cwe, pattern=name,
                program=program, expected_kind=None))
        return cases

    def all_cases(self) -> List[JulietCase]:
        return self.faulty_cases() + self.benign_cases()

    def patterns(self) -> List[str]:
        return [spec[0] for spec in _pattern_specs()]
