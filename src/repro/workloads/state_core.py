"""State-evolution core of the synthetic workload generator.

:class:`WorkloadCore` owns everything about a workload that *evolves*: the
RNG stream, the allocator-backed live-object set (slot arrays shared with the
optional native kernel), the hot/cold working-set structure, locality
cursors, and the call-depth / register-rotation bookkeeping.  It knows
nothing about :class:`~repro.sim.trace.DynamicOp` — materializing
instructions is the trace-emission layer's job
(:class:`~repro.workloads.synthetic.SyntheticWorkload`).

The split exists for one reason: §9.1 sampled simulation at paper scale
spends >95% of the horizon inside fast-forward windows, where the functional
state must advance but no trace may be kept.  :meth:`advance_bulk` walks
whole events — identical RNG draws, identical allocator/cursor/hot-set
effects — without constructing a single instruction object, via the compiled
kernel (:mod:`repro.workloads._ffcore`) when available or an equivalent
pure-Python loop otherwise.  Both are verified bit-identical to draining the
emission layer by the golden fast-forward tests.

Object storage is *slot based*: every allocation gets a monotonically
increasing slot id addressing append-only parallel arrays (size, locality
cursor, pointer-richness, lock location, allocation record).  ``_order``
lists the live slots in insertion order (the cold-pool window is its tail),
``_hot`` is the recently-touched slot list.  Slots are never reused, so a
freed slot that lingers in the hot set (the generator's deliberate
stale-reference behaviour) keeps addressing its frozen size/cursor data —
exactly the semantics the original object-based generator had — while the C
kernel sees plain int64/int8 arrays it can index directly.
"""

from __future__ import annotations

import random
import zlib
from array import array
from typing import Iterator, List, Optional, Set, Tuple

from repro.allocator.runtime import AllocationRecord, InstrumentedRuntime
from repro.core.identifier import IdentifierTable
from repro.memory.address_space import AddressSpace
from repro.workloads import _ffcore
from repro.workloads.profiles import BenchmarkProfile

#: Upper bound on the dynamic ops a single event can produce (an allocation
#: event that both frees and allocates: two 7-op runtime-call sequences).
#: ``advance_bulk`` only advances whole events while at least this many ops
#: remain, so it never overruns a window boundary.
MAX_EVENT_OPS = 14

# The bulk-advance loops draw ``randbelow(6)`` for register picks, value-
# rotation and ALU-opcode choices: 6 is structural — the sizes of the
# emission layer's ADDRESS_REGS/VALUE_REGS/FP_REGS tuples and _ALU_OPCODES —
# not a tunable, so it stays literal in both span implementations.


class WorkloadCore:
    """Functional state of one synthetic workload, evolvable in bulk."""

    #: Fraction of memory accesses directed at the global segment (always
    #: valid global identifier, §7) rather than heap objects.
    GLOBAL_ACCESS_FRACTION = 0.15
    #: Span of the frequently-touched global data (bytes).
    GLOBAL_SPAN_BYTES = 8 * 1024
    #: Number of recently-touched heap objects forming the hot set.
    HOT_SET_OBJECTS = 8
    #: Upper bound on the pool of heap objects cold accesses may reach within
    #: one phase; the pool slides over the full working set as objects churn,
    #: mimicking program phase behaviour instead of uniformly random traffic.
    COLD_POOL_OBJECTS = 192
    #: Retired (freed, unreferenced) slots tolerated in the append-only slot
    #: arrays before they are compacted.  Slots are never reused, so over a
    #: billion-instruction horizon the arrays would otherwise grow with every
    #: allocation ever made (~26 bytes/slot) even though only the live working
    #: set is reachable; compaction keeps the generator side flat too.
    COMPACT_RETIRED_SLOTS = 1_000_000

    def __init__(self, profile: BenchmarkProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        # crc32 rather than hash(): str hashing is randomized per process, and
        # the trace must be a pure function of (profile, seed) so that cached
        # results and worker processes agree with a serial in-process run.
        self.rng = random.Random((zlib.crc32(profile.name.encode()) & 0xFFFF) ^ seed)
        # The exact primitive randrange()/choice() consume; binding it keeps
        # every draw on the identical bit stream at a fraction of the cost.
        self._randbelow = self.rng._randbelow
        self.memory = AddressSpace()
        self.identifiers = IdentifierTable(self.memory)
        self.runtime = InstrumentedRuntime(self.memory, identifiers=self.identifiers)

        # Slot-based object storage (append-only; slots are never reused).
        self._slot_sizes = array("q")
        self._slot_cursors = array("q")
        self._slot_rich = array("b")
        self._slot_locks = array("q")
        self._slot_live = array("b")
        self._slot_records: List[Optional[AllocationRecord]] = []
        self._order = array("q")
        self._hot: List[int] = []
        #: Freed slots whose records are kept alive because a duplicate hot
        #: entry still references them (the stale-pointer quirk).
        self._stale_kept: Set[int] = set()

        self._global_lock = self.identifiers.global_identifier().lock
        self._global_cursor = 0
        self._call_depth = 0
        self._value_rotation = 0
        self._allocation_counter = 0

        # Precomputed event/draw constants (pure functions of the profile).
        segment = self.memory.layout.globals_seg
        self._globals_base = segment.base
        self._global_span = min(segment.size, self.GLOBAL_SPAN_BYTES)
        self._global_ptr_span = min(self._global_span, 1024)
        self._alloc_probability = profile.allocs_per_kilo / 1000.0
        self._ac_probability = self._alloc_probability + profile.calls_per_kilo / 1000.0
        self._mem_hi = self._ac_probability + profile.memory_fraction
        self._br_hi = self._mem_hi + profile.branch_fraction
        typical = profile.typical_alloc_bytes
        self._size_low = max(16, typical // 2)
        width = typical * 2 + 1 - self._size_low
        self._size_nslots = (width + 15) // 16
        self._min_keep = max(4, profile.working_set_objects // 4)

        self._attach_ffcore()
        self._populate_working_set()

    def _attach_ffcore(self) -> None:
        """Load the native kernel and build its shared constant buffers.

        Called from ``__init__`` and again from ``__setstate__`` (the kernel
        handle and buffers are not picklable).  The kernel's in-place hot
        buffer holds 16 slots, so hot sets beyond 15 entries (no in-tree
        workload comes close) fall back to the pure-Python span loop.
        """
        profile = self.profile
        self._ffcore = _ffcore.load() if self.HOT_SET_OBJECTS <= 15 else None
        if self._ffcore is None:
            return
        self._c_scalars = array("q", [0] * _ffcore.SCAL_SLOTS)
        self._c_hot = array("q", [0] * 16)
        self._c_consts_d = array("d", [
            self._alloc_probability, self._ac_probability, self._mem_hi,
            self._br_hi, profile.pointer_fraction,
            profile.word_integer_fraction,
            profile.word_integer_fraction + profile.fp_access_fraction,
            profile.fp_compute_fraction, profile.temporal_locality,
            profile.spatial_locality, self.GLOBAL_ACCESS_FRACTION])
        self._c_consts_i = array("q", [
            self._global_span, self._global_ptr_span,
            profile.working_set_objects, self._min_keep,
            self._size_low, self._size_nslots,
            self.COLD_POOL_OBJECTS, self.HOT_SET_OBJECTS])

    # -- pickling (the native kernel handle and bound method don't travel) ----------
    def __getstate__(self):
        state = self.__dict__.copy()
        for key in ("_ffcore", "_randbelow", "_c_scalars", "_c_hot",
                    "_c_consts_d", "_c_consts_i"):
            state.pop(key, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._randbelow = self.rng._randbelow
        self._attach_ffcore()

    # -- working set ----------------------------------------------------------------
    def _allocation_size(self) -> int:
        # Exactly rng.randrange(low, high + 1, 16): width -> slot count ->
        # _randbelow; the result is never 0 because low >= 16.
        return self._size_low + 16 * self._randbelow(self._size_nslots)

    def _populate_working_set(self) -> None:
        for _ in range(self.profile.working_set_objects):
            self._allocate_object()

    def _materialize_allocation(self, size: int) -> int:
        """malloc ``size`` bytes and register the new slot (no RNG draws)."""
        if len(self._slot_sizes) - len(self._order) >= self.COMPACT_RETIRED_SLOTS:
            self._compact_slots()
        pointer, metadata = self.runtime.malloc(size)
        record = self.runtime.record_for(pointer)
        assert record is not None
        self._allocation_counter += 1
        slot = len(self._slot_sizes)
        self._slot_sizes.append(record.size)
        self._slot_cursors.append(0)
        # Whether this object is part of a pointer-rich data structure
        # (linked structures, pointer arrays).  Pointer loads/stores are
        # directed at these objects; plain data accesses go anywhere.
        self._slot_rich.append(1 if self._allocation_counter % 4 == 0 else 0)
        self._slot_locks.append(metadata.identifier.lock)
        self._slot_live.append(1)
        self._slot_records.append(record)
        self._order.append(slot)
        self._hot.append(slot)
        if len(self._hot) > self.HOT_SET_OBJECTS:
            self._evict_hot()
        return slot

    def _allocate_object(self) -> int:
        return self._materialize_allocation(self._allocation_size())

    def _compact_slots(self) -> None:
        """Renumber reachable slots densely, dropping retired array entries.

        Reachable means: live (in ``_order``), in the hot set (possibly freed
        but still addressable — the stale-reference quirk), or stale-kept.
        No RNG draws and no allocator traffic happen here, and slot *ids*
        never feed a draw or an address, so compaction is invisible to the
        emitted trace — pinned by the golden compaction tests.

        Every structure is mutated **in place**: ``_advance_span_py`` binds
        the size/cursor/rich/order/hot structures as locals for its whole
        span, so replacing the objects (rather than their contents) would
        desynchronize a compaction triggered mid-span.  (The native span
        loop re-fetches buffer addresses around every allocator bounce, so
        in-place slice assignment is safe there too.)
        """
        keep = sorted(set(self._order) | set(self._hot) | self._stale_kept)
        remap = {old: new for new, old in enumerate(keep)}
        self._slot_sizes[:] = array("q", (self._slot_sizes[s] for s in keep))
        self._slot_cursors[:] = array("q", (self._slot_cursors[s] for s in keep))
        self._slot_rich[:] = array("b", (self._slot_rich[s] for s in keep))
        self._slot_locks[:] = array("q", (self._slot_locks[s] for s in keep))
        self._slot_live[:] = array("b", (self._slot_live[s] for s in keep))
        self._slot_records[:] = [self._slot_records[s] for s in keep]
        self._order[:] = array("q", (remap[s] for s in self._order))
        self._hot[:] = [remap[s] for s in self._hot]
        self._stale_kept = {remap[s] for s in self._stale_kept}

    def _free_slot(self, index: int) -> int:
        """Free the live object at ``_order[index]`` (no RNG draws)."""
        if self._stale_kept:
            self._sweep_stale_records()
        order = self._order
        slot = order[index]
        del order[index]
        hot = self._hot
        if slot in hot:
            hot.remove(slot)  # first occurrence only, like list.remove(obj)
        self._slot_live[slot] = 0
        record = self._slot_records[slot]
        self.runtime.free(record.base, record.metadata)
        if slot in hot:
            # A duplicate hot entry still points at the freed object; keep
            # its record so emission can keep addressing the stale memory,
            # exactly as the object-based generator did.
            self._stale_kept.add(slot)
        else:
            self._slot_records[slot] = None
        return slot

    def _free_random_object(self) -> Optional[int]:
        if len(self._order) <= self._min_keep:
            return None
        return self._free_slot(self._randbelow(len(self._order)))

    def _evict_hot(self) -> None:
        evicted = self._hot.pop(0)
        if not self._slot_live[evicted] and evicted not in self._hot:
            self._slot_records[evicted] = None
            self._stale_kept.discard(evicted)

    def _sweep_stale_records(self) -> None:
        """Drop records of stale slots that have since left the hot set."""
        hot = self._hot
        for slot in [s for s in self._stale_kept if s not in hot]:
            self._slot_records[slot] = None
            self._stale_kept.discard(slot)

    # -- memory target selection ------------------------------------------------------
    def _pick_slot(self, pointer_access: bool = False) -> int:
        hot = self._hot
        rich = self._slot_rich
        if hot and self.rng.random() < self.profile.temporal_locality:
            candidates: List[int] = hot
            if pointer_access:
                rich_slots = [slot for slot in hot if rich[slot]]
                candidates = rich_slots or hot
            return candidates[self._randbelow(len(candidates))]
        # Cold accesses stay within a bounded, slowly-drifting pool of recent
        # objects (program phases) rather than the entire population.
        order = self._order
        n = len(order)
        pool = n if n < self.COLD_POOL_OBJECTS else self.COLD_POOL_OBJECTS
        start = n - pool
        if pointer_access:
            rich_slots = [slot for slot in order[start:] if rich[slot]]
            slot = rich_slots[self._randbelow(len(rich_slots))] if rich_slots \
                else order[start + self._randbelow(pool)]
        else:
            slot = order[start + self._randbelow(pool)]
        hot.append(slot)
        if len(hot) > self.HOT_SET_OBJECTS:
            self._evict_hot()
        return slot

    def _heap_target(self, access_bytes: int, pointer_access: bool) -> Tuple[int, int]:
        """Return (address, lock_address) for a heap access."""
        slot = self._pick_slot(pointer_access)
        size = self._slot_sizes[slot]
        limit = size - access_bytes
        if limit < 1:
            limit = 1
        cursors = self._slot_cursors
        if self.rng.random() < self.profile.spatial_locality:
            offset = cursors[slot] % limit
            bound = size if size > access_bytes else access_bytes
            cursors[slot] = (cursors[slot] + access_bytes) % bound
        else:
            offset = self._randbelow(limit)
        offset &= ~(access_bytes - 1)
        return self._slot_records[slot].base + offset, self._slot_locks[slot]

    def _global_target(self, access_bytes: int, pointer_access: bool) -> Tuple[int, int]:
        # Global pointers (tables of pointers, static linked structures)
        # live in a compact region of the data segment.
        span = self._global_ptr_span if pointer_access else self._global_span
        if self.rng.random() < self.profile.spatial_locality:
            offset = self._global_cursor % span
            self._global_cursor += access_bytes
        else:
            offset = self._randbelow(span)
        offset &= ~(access_bytes - 1)
        return self._globals_base + offset, self._global_lock

    def _memory_target(self, access_bytes: int,
                       pointer_access: bool = False) -> Tuple[int, int]:
        if self.rng.random() < self.GLOBAL_ACCESS_FRACTION or not self._order:
            return self._global_target(access_bytes, pointer_access)
        return self._heap_target(access_bytes, pointer_access)

    # -- bulk state evolution ----------------------------------------------------------
    def advance_bulk(self, remaining: int) -> int:
        """Advance whole events without emitting, while ``>= MAX_EVENT_OPS``
        ops remain; returns the unconsumed remainder (< MAX_EVENT_OPS).

        The RNG stream, allocator state, working set and every cursor end up
        exactly where draining the emission layer would have left them; only
        the ops themselves are never materialized.  The caller (the emission
        layer's ``fast_forward``) finishes the tail with materialized events
        so a window boundary can split an event.
        """
        if remaining < MAX_EVENT_OPS:
            return remaining
        if self._ffcore is not None:
            return self._advance_span_c(remaining)
        return self._advance_span_py(remaining)

    def _apply_alloc_event(self, freed_index: int, size: int) -> None:
        """Apply an allocation event's effects (draws already consumed)."""
        if freed_index >= 0:
            self._free_slot(freed_index)
        self._materialize_allocation(size)

    def _advance_span_c(self, remaining: int) -> int:
        """Drive the native kernel, bouncing out for allocator events."""
        advance = self._ffcore.ff_advance
        scal = self._c_scalars
        hotbuf = self._c_hot
        state = self.rng.getstate()
        mt = array("I", state[1][:624])
        mt_addr = mt.buffer_info()[0]
        scal[_ffcore.SCAL_MTI] = state[1][624]
        consts_d = self._c_consts_d.buffer_info()[0]
        consts_i = self._c_consts_i.buffer_info()[0]
        while True:
            hot = self._hot
            for i, slot in enumerate(hot):
                hotbuf[i] = slot
            scal[_ffcore.SCAL_REMAINING] = remaining
            scal[_ffcore.SCAL_VALUE_ROTATION] = self._value_rotation
            scal[_ffcore.SCAL_GLOBAL_CURSOR] = self._global_cursor
            scal[_ffcore.SCAL_CALL_DEPTH] = self._call_depth
            scal[_ffcore.SCAL_N_ORDER] = len(self._order)
            scal[_ffcore.SCAL_HOT_LEN] = len(hot)
            advance(mt_addr, scal.buffer_info()[0], consts_d, consts_i,
                    self._order.buffer_info()[0],
                    self._slot_sizes.buffer_info()[0],
                    self._slot_cursors.buffer_info()[0],
                    self._slot_rich.buffer_info()[0],
                    hotbuf.buffer_info()[0])
            remaining = scal[_ffcore.SCAL_REMAINING]
            self._value_rotation = scal[_ffcore.SCAL_VALUE_ROTATION]
            self._global_cursor = scal[_ffcore.SCAL_GLOBAL_CURSOR]
            self._call_depth = scal[_ffcore.SCAL_CALL_DEPTH]
            self._hot = list(hotbuf[:scal[_ffcore.SCAL_HOT_LEN]])
            if scal[_ffcore.SCAL_REASON] != _ffcore.REASON_ALLOC:
                break
            self._apply_alloc_event(scal[_ffcore.SCAL_FREED_INDEX],
                                    scal[_ffcore.SCAL_ALLOC_SIZE])
        self.rng.setstate((state[0], tuple(mt) + (scal[_ffcore.SCAL_MTI],),
                           state[2]))
        if self._stale_kept:
            self._sweep_stale_records()
        return remaining

    def _advance_span_py(self, remaining: int) -> int:
        """Pure-Python whole-event advance (the no-compiler fallback).

        Draw-for-draw and effect-for-effect identical to draining the
        emission layer; every helper call is inlined onto locals because
        this loop runs once per skipped instruction.
        """
        rng_random = self.rng.random
        randbelow = self._randbelow
        profile = self.profile
        alloc_p = self._alloc_probability
        ac_hi = self._ac_probability
        mem_hi = self._mem_hi
        br_hi = self._br_hi
        ptr_f = profile.pointer_fraction
        word_f = profile.word_integer_fraction
        wordfp_f = word_f + profile.fp_access_fraction
        fpc = profile.fp_compute_fraction
        temporal = profile.temporal_locality
        spatial = profile.spatial_locality
        global_frac = self.GLOBAL_ACCESS_FRACTION
        cold_pool = self.COLD_POOL_OBJECTS
        hot_max = self.HOT_SET_OBJECTS
        span_g = self._global_span
        span_p = self._global_ptr_span
        ws = profile.working_set_objects
        min_keep = self._min_keep
        size_low = self._size_low
        size_nslots = self._size_nslots
        sizes = self._slot_sizes
        cursors = self._slot_cursors
        rich = self._slot_rich
        order = self._order
        hot = self._hot
        vr = self._value_rotation
        depth = self._call_depth
        gc = self._global_cursor

        while remaining >= MAX_EVENT_OPS:
            roll = rng_random()
            if roll >= br_hi:  # ALU op
                if rng_random() < fpc:
                    randbelow(6); randbelow(6); randbelow(6)
                else:
                    vr = (vr + 1) % 6
                    rng_random()  # dependent-chain roll
                    randbelow(6)  # opcode choice
                remaining -= 1
            elif roll >= mem_hi:  # branch
                rng_random()  # mispredict roll
                vr = (vr + 1) % 6
                remaining -= 1
            elif roll >= ac_hi:  # memory op
                roll2 = rng_random()
                rng_random()  # load/store split: no functional effect
                ptr = roll2 < ptr_f
                fp = (not ptr) and word_f <= roll2 < wordfp_f
                nbytes = 8 if roll2 < wordfp_f else 4
                if rng_random() < global_frac or not order:
                    if rng_random() < spatial:
                        gc += nbytes
                    else:
                        randbelow(span_p if ptr else span_g)
                else:
                    if hot and rng_random() < temporal:
                        if ptr:
                            cands = [s for s in hot if rich[s]] or hot
                        else:
                            cands = hot
                        slot = cands[randbelow(len(cands))]
                    else:
                        n = len(order)
                        pool = n if n < cold_pool else cold_pool
                        start = n - pool
                        if ptr:
                            cands = [s for s in order[start:] if rich[s]]
                            slot = cands[randbelow(len(cands))] if cands \
                                else order[start + randbelow(pool)]
                        else:
                            slot = order[start + randbelow(pool)]
                        hot.append(slot)
                        if len(hot) > hot_max:
                            del hot[0]  # record sweep deferred to _free_slot
                    size = sizes[slot]
                    limit = size - nbytes
                    if limit < 1:
                        limit = 1
                    if rng_random() < spatial:
                        bound = size if size > nbytes else nbytes
                        cursors[slot] = (cursors[slot] + nbytes) % bound
                    else:
                        randbelow(limit)
                randbelow(6)  # address register
                remaining -= 2 if rng_random() < 0.25 else 1
                if fp:
                    randbelow(6)
                else:
                    vr = (vr + 1) % 6
            elif roll >= alloc_p:  # call / return
                if depth < 16:
                    r = rng_random()
                    if r < 0.6:
                        depth += 1
                        remaining -= 1
                    elif depth > 0:
                        depth -= 1
                        remaining -= 1
                else:
                    depth -= 1
                    remaining -= 1
            else:  # allocation event
                n = len(order)
                if n >= ws and n > min_keep:
                    self._free_slot(randbelow(n))
                    vr = self._advance_runtime_call(vr)
                    remaining -= 7
                self._materialize_allocation(size_low + 16 * randbelow(size_nslots))
                vr = self._advance_runtime_call(vr)
                remaining -= 7

        self._value_rotation = vr
        self._call_depth = depth
        self._global_cursor = gc
        if self._stale_kept:
            self._sweep_stale_records()
        return remaining

    def _advance_runtime_call(self, vr: int) -> int:
        """Draws of one ``_runtime_call_ops`` sequence (6 ALU + reg pick)."""
        rng_random = self.rng.random
        randbelow = self._randbelow
        fpc = self.profile.fp_compute_fraction
        for _ in range(6):
            if rng_random() < fpc:
                randbelow(6); randbelow(6); randbelow(6)
            else:
                vr = (vr + 1) % 6
                rng_random()
                randbelow(6)
        randbelow(6)  # setident/getident pointer register
        return vr

    # -- working-set introspection (used by the simulator's warm-up) --------------------
    def working_set_lines(self) -> Iterator[int]:
        """64-byte-aligned addresses of every line in the current working set.

        Covers all live heap objects and the hot global span; the simulator
        touches these (and their shadow lines) before the measured window so
        that the measured window reflects steady state rather than the cold
        start of a short synthetic trace.
        """
        records = self._slot_records
        for slot in self._order:
            record = records[slot]
            base = record.base
            end = base + record.size
            line = base & ~63
            while line < end:
                yield line
                line += 64
        line = self._globals_base
        end = line + self._global_span
        while line < end:
            yield line
            line += 64

    def lock_locations(self) -> Iterator[int]:
        """Lock-location addresses of every live object plus the global lock."""
        locks = self._slot_locks
        for slot in self._order:
            yield locks[slot]
        yield self._global_lock

    def snapshot_working_set(self):
        """Freeze the current working set for configuration-independent reuse.

        The returned snapshot answers the same two queries the simulator's
        warm-up asks of the live workload (`working_set_lines`,
        `lock_locations`) but is immutable and picklable, so one generated
        trace can be replayed under many Watchdog configurations — including
        in worker processes — without re-running the generator.
        """
        from repro.workloads.bundle import WorkingSetSnapshot

        return WorkingSetSnapshot(lines=tuple(self.working_set_lines()),
                                  locks=tuple(self.lock_locations()))

    @property
    def live_objects(self) -> int:
        return len(self._order)
