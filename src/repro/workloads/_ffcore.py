"""Optional native kernel for the workload fast-forward loop.

The state-evolution core (:mod:`repro.workloads.state_core`) must advance a
skip window's worth of events while keeping the Mersenne-Twister position
bit-identical to what per-op generation would have drawn — which caps a pure
Python loop at roughly a million events per second.  This module compiles a
small C kernel (through the shared :mod:`repro.native.build` machinery: the
system C compiler, at first use, cached on disk)
that replicates CPython's MT19937 primitives — ``random()`` is two tempered
words combined as ``genrand_res53`` and ``_randbelow(n)`` is
``getrandbits(n.bit_length())`` with rejection — and runs the event-advance
loop over the core's shared slot arrays at tens of millions of ops/sec.

The kernel is strictly optional: when no compiler is available, compilation
fails, the self-test disagrees with :mod:`random`, or ``REPRO_FFCORE=0`` is
set, :func:`load` returns ``None`` and the core falls back to the pure-Python
span loop.  Both paths are verified bit-identical by the golden fast-forward
tests.  Allocator events are *not* handled in C: the kernel consumes their
RNG draws, then returns control so Python applies the malloc/free effects
against the real :class:`~repro.allocator.runtime.InstrumentedRuntime`.
"""

from __future__ import annotations

import ctypes
import random
from array import array
from pathlib import Path

from repro.native import build

#: ``scal`` slot layout shared with the C kernel (int64 in/out registers).
SCAL_REMAINING = 0
SCAL_VALUE_ROTATION = 1
SCAL_GLOBAL_CURSOR = 2
SCAL_CALL_DEPTH = 3
SCAL_N_ORDER = 4
SCAL_HOT_LEN = 5
SCAL_MTI = 6
SCAL_REASON = 7
SCAL_FREED_INDEX = 8
SCAL_ALLOC_SIZE = 9
SCAL_SLOTS = 12

#: ``ff_advance`` return/``SCAL_REASON`` codes.
REASON_DONE = 0
REASON_ALLOC = 1

_SOURCE = r"""
/* Fast-forward kernel: exact replica of the WorkloadCore event-advance loop.
 *
 * MT19937 follows CPython's _randommodule.c: the 624-word state plus index
 * round-trips through random.Random.getstate()/setstate(), rnd() is
 * genrand_res53 (two tempered words), randbelow() is
 * _randbelow_with_getrandbits (top bits of one word, rejection-resampled).
 * Any change to the draw sequence here must match state_core.py exactly.
 */
#include <stdint.h>
#include <string.h>

#define MT_N 624
#define MT_M 397

typedef struct { uint32_t *mt; int64_t mti; } MT;

static uint32_t genrand(MT *st) {
    uint32_t y;
    if (st->mti >= MT_N) {
        uint32_t *mt = st->mt;
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & 0x80000000u) | (mt[kk + 1] & 0x7fffffffu);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ ((y & 1u) ? 0x9908b0dfu : 0u);
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & 0x80000000u) | (mt[kk + 1] & 0x7fffffffu);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1)
                ^ ((y & 1u) ? 0x9908b0dfu : 0u);
        }
        y = (mt[MT_N - 1] & 0x80000000u) | (mt[0] & 0x7fffffffu);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ ((y & 1u) ? 0x9908b0dfu : 0u);
        st->mti = 0;
    }
    y = st->mt[st->mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= (y >> 18);
    return y;
}

static double rnd(MT *st) {
    uint32_t a = genrand(st) >> 5, b = genrand(st) >> 6;
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0);
}

static int64_t randbelow(MT *st, int64_t n) {
    int shift = 32 - (64 - __builtin_clzll((uint64_t)n));
    uint32_t r = genrand(st) >> shift;
    while ((int64_t)r >= n)
        r = genrand(st) >> shift;
    return (int64_t)r;
}

/* One _alu_op worth of draws (no emission): fp roll, then either three
 * fp-register picks or value-rotation + chain roll + opcode choice. */
static int64_t alu(MT *st, double fp_compute, int64_t vr) {
    if (rnd(st) < fp_compute) {
        randbelow(st, 6); randbelow(st, 6); randbelow(st, 6);
    } else {
        vr = (vr + 1) % 6;
        rnd(st);
        randbelow(st, 6);
    }
    return vr;
}

/* _runtime_call_ops draws: six ALU ops plus the pointer-register pick. */
static int64_t runtime_call(MT *st, double fp_compute, int64_t vr) {
    int i;
    for (i = 0; i < 6; i++)
        vr = alu(st, fp_compute, vr);
    randbelow(st, 6);
    return vr;
}

long long ff_advance(uint32_t *mtstate, long long *scal, const double *cd,
                     const long long *ci, const long long *order,
                     const long long *sizes, long long *cursors,
                     const signed char *rich, long long *hot)
{
    MT st = { mtstate, scal[6] };
    int64_t remaining = scal[0], vr = scal[1], gc = scal[2], depth = scal[3];
    int64_t n_order = scal[4], hot_len = scal[5];
    const double alloc_p = cd[0], ac_hi = cd[1], mem_hi = cd[2], br_hi = cd[3];
    const double ptr_f = cd[4], word_f = cd[5], wordfp_f = cd[6], fpc = cd[7];
    const double temporal = cd[8], spatial = cd[9], global_frac = cd[10];
    const int64_t span_g = ci[0], span_p = ci[1], ws = ci[2];
    const int64_t min_keep = ci[3], size_low = ci[4], size_nslots = ci[5];
    const int64_t cold_pool = ci[6], hot_max = ci[7];  /* hot_max <= 15 */
    int64_t reason = 0, freed_idx = -1, alloc_size = 0;

    while (remaining >= 14) {
        double roll = rnd(&st);
        if (roll >= br_hi) {                           /* ALU op */
            vr = alu(&st, fpc, vr);
            remaining -= 1;
        } else if (roll >= mem_hi) {                   /* branch */
            rnd(&st);                                  /* mispredict roll */
            vr = (vr + 1) % 6;
            remaining -= 1;
        } else if (roll >= ac_hi) {                    /* memory op */
            double roll2 = rnd(&st);
            rnd(&st);                                  /* load/store split */
            int ptr = roll2 < ptr_f;
            int fp = !ptr && roll2 >= word_f && roll2 < wordfp_f;
            int64_t nbytes = roll2 < wordfp_f ? 8 : 4;
            if (rnd(&st) < global_frac || n_order == 0) {  /* global target */
                if (rnd(&st) < spatial)
                    gc += nbytes;
                else
                    randbelow(&st, ptr ? span_p : span_g);
            } else {                                   /* heap target */
                int64_t slot;
                if (hot_len > 0 && rnd(&st) < temporal) {
                    if (ptr) {
                        int64_t cnt = 0, tmp[16], i;
                        for (i = 0; i < hot_len; i++)
                            if (rich[hot[i]])
                                tmp[cnt++] = hot[i];
                        slot = cnt ? tmp[randbelow(&st, cnt)]
                                   : hot[randbelow(&st, hot_len)];
                    } else {
                        slot = hot[randbelow(&st, hot_len)];
                    }
                } else {
                    int64_t pool = n_order < cold_pool ? n_order : cold_pool;
                    int64_t start = n_order - pool;
                    if (ptr) {
                        int64_t cnt = 0, j;
                        for (j = start; j < n_order; j++)
                            if (rich[order[j]])
                                cnt++;
                        if (cnt) {
                            int64_t pick = randbelow(&st, cnt);
                            for (j = start;; j++)
                                if (rich[order[j]] && pick-- == 0)
                                    break;
                            slot = order[j];
                        } else {
                            slot = order[start + randbelow(&st, pool)];
                        }
                    } else {
                        slot = order[start + randbelow(&st, pool)];
                    }
                    hot[hot_len++] = slot;
                    if (hot_len > hot_max) {
                        memmove(hot, hot + 1,
                                (size_t)(hot_len - 1) * sizeof(int64_t));
                        hot_len--;
                    }
                }
                {
                    int64_t size = sizes[slot];
                    int64_t limit = size - nbytes;
                    if (limit < 1)
                        limit = 1;
                    if (rnd(&st) < spatial) {
                        int64_t m = size > nbytes ? size : nbytes;
                        cursors[slot] = (cursors[slot] + nbytes) % m;
                    } else {
                        randbelow(&st, limit);
                    }
                }
            }
            randbelow(&st, 6);                         /* address register */
            remaining -= rnd(&st) < 0.25 ? 2 : 1;      /* refresh ADD_RI */
            if (fp)
                randbelow(&st, 6);
            else
                vr = (vr + 1) % 6;
        } else if (roll >= alloc_p) {                  /* call / return */
            if (depth < 16) {
                double r = rnd(&st);
                if (r < 0.6) {
                    depth++;
                    remaining -= 1;
                } else if (depth > 0) {
                    depth--;
                    remaining -= 1;
                }
            } else {
                depth--;
                remaining -= 1;
            }
        } else {                                       /* allocation event */
            if (n_order >= ws && n_order > min_keep) {
                freed_idx = randbelow(&st, n_order);
                vr = runtime_call(&st, fpc, vr);
                remaining -= 7;
            }
            alloc_size = size_low + 16 * randbelow(&st, size_nslots);
            vr = runtime_call(&st, fpc, vr);
            remaining -= 7;
            reason = 1;  /* Python applies the malloc/free effects */
            break;
        }
    }
    scal[0] = remaining; scal[1] = vr; scal[2] = gc; scal[3] = depth;
    scal[5] = hot_len; scal[6] = st.mti; scal[7] = reason;
    scal[8] = freed_idx; scal[9] = alloc_size;
    return reason;
}

/* Draw-compatibility probe: 8 doubles then 8 bounded draws, so the loader
 * can verify this kernel against random.Random before trusting it. */
long long ff_selftest(uint32_t *mtstate, long long *mti_io, double *dout,
                      long long *iout)
{
    MT st = { mtstate, *mti_io };
    static const int64_t ns[8] = {6, 1, 192, 8192, 13, 7, 4096, 2000000};
    int i;
    for (i = 0; i < 8; i++)
        dout[i] = rnd(&st);
    for (i = 0; i < 8; i++)
        iout[i] = randbelow(&st, ns[i]);
    *mti_io = st.mti;
    return 0;
}
"""

def _bind(so_path: Path):
    lib = ctypes.CDLL(str(so_path))
    lib.ff_advance.restype = ctypes.c_longlong
    lib.ff_advance.argtypes = [ctypes.c_void_p] * 9
    lib.ff_selftest.restype = ctypes.c_longlong
    lib.ff_selftest.argtypes = [ctypes.c_void_p] * 4
    return lib


def _self_test(lib) -> bool:
    """The kernel's RNG must reproduce random.Random draw for draw."""
    rng = random.Random(987654321)
    state = rng.getstate()
    mt = array("I", state[1][:624])
    mti = array("q", [state[1][624]])
    dout = array("d", [0.0] * 8)
    iout = array("q", [0] * 8)
    lib.ff_selftest(mt.buffer_info()[0], mti.buffer_info()[0],
                    dout.buffer_info()[0], iout.buffer_info()[0])
    expected_d = [rng.random() for _ in range(8)]
    expected_i = [rng._randbelow(n)
                  for n in (6, 1, 192, 8192, 13, 7, 4096, 2000000)]
    end_state = rng.getstate()
    return (list(dout) == expected_d and list(iout) == expected_i
            and tuple(mt) == end_state[1][:624] and mti[0] == end_state[1][624])


def load():
    """The compiled kernel, or ``None`` when unavailable (memoized)."""
    return build.load_kernel("ffcore", _SOURCE, switch_env="REPRO_FFCORE",
                             dir_env="REPRO_FFCORE_DIR", bind=_bind,
                             self_test=_self_test)


def status():
    """Why the last :func:`load` decision went the way it did (or ``None``)."""
    return build.status("ffcore")
