"""Streaming sampled generation: one sample in memory, any horizon.

A retained :class:`~repro.workloads.bundle.TraceBundle` materializes every
§9.1 :class:`~repro.workloads.bundle.SampleSegment` up front and keeps them
all for replayability — the right trade for sweeps that replay one trace
under many configurations at the 1M long-profile scale, and a linear memory
wall past ~100M instructions.  :class:`SampleStream` is the streaming
counterpart: it walks the very same windows loop over one continuous
workload, but *yields* each sample segment as it is generated, so the driver
(:meth:`repro.sim.simulator.Simulator.run_streaming`, or the sweep engine's
streaming executor) can generate → compile → simulate → aggregate → release
one sample at a time.  Peak memory is one sample's raw traces plus its
compiled artifacts, regardless of horizon — which is what makes
billion-instruction (``*-1b``) horizons run in flat memory.

Replay-on-demand (:meth:`SampleStream.segment`) regenerates any single
sample bit-identically from the state core alone: a fresh workload
fast-forwards functionally to the sample's warm-up window start and re-emits
the warm-up and measure windows.  Because ``fast_forward`` is pinned
bit-identical to emit-and-discard (the golden fast-forward tests), the
regenerated segment is byte-for-byte the one the continuous walk produced —
the debugging path for "what did sample 73 of that 1B run contain?", and the
anchor the golden tests use to pin streaming equal to the retained path.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.workloads.bundle import SampleSegment, TraceBundle
from repro.workloads.profiles import BenchmarkProfile, profile_by_name
from repro.workloads.synthetic import SyntheticWorkload

#: Horizons past this stream by default (``REPRO_STREAMING`` overrides).
#: Below it the retained bundle is the better trade: the raw segments fit
#: comfortably in memory and stay replayable under further configurations
#: (the sweep engine's bundle memo), while regeneration would cost a full
#: horizon walk per run.  Above it — the ``*-paper`` and ``*-1b`` tiers —
#: memory flatness wins and the generator is fast enough to re-walk.
STREAMING_THRESHOLD_INSTRUCTIONS = 8_000_000


def use_streaming(instructions: int,
                  sampling: Optional[SamplingConfig]) -> bool:
    """Whether a sampled run of this shape should stream its samples.

    Streaming requires a schedule that genuinely samples the horizon
    (degenerate or measures-nothing schedules normalize to the unsampled
    layout and cannot stream).  Within that, ``REPRO_STREAMING=1`` forces
    streaming at any scale (the golden-equality CI leg), ``REPRO_STREAMING=0``
    forces the retained bundle, and by default horizons past
    :data:`STREAMING_THRESHOLD_INSTRUCTIONS` stream.
    """
    if sampling is None:
        return False
    schedule = SamplingSchedule(sampling)
    if sampling.degenerate or schedule.measured_count(instructions) == 0:
        return False
    override = os.environ.get("REPRO_STREAMING", "").strip()
    if override == "1":
        return True
    if override == "0":
        return False
    return instructions > STREAMING_THRESHOLD_INSTRUCTIONS


class SampleStream:
    """One benchmark's §9.1 samples, generated and surrendered one at a time.

    The streaming walk (:meth:`segments`) and the eager
    :meth:`TraceBundle._generate_sampled` run the identical windows loop over
    the identical workload state, so segment *i* of the stream equals segment
    *i* of the retained bundle byte for byte; the only difference is
    ownership — the stream keeps no reference to a yielded segment.
    """

    def __init__(self, profile: Union[str, BenchmarkProfile], seed: int,
                 instructions: int, sampling: SamplingConfig):
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        self.profile = profile
        self.seed = seed
        self.instructions = instructions
        self.sampling = sampling.validate()
        self.schedule = SamplingSchedule(self.sampling)
        if self.sampling.degenerate \
                or self.schedule.measured_count(instructions) == 0:
            raise ConfigurationError(
                f"sampling schedule measures "
                f"{'everything' if self.sampling.degenerate else 'nothing'} "
                f"over {instructions} instructions; streaming requires a "
                f"schedule that genuinely samples the horizon "
                f"(e.g. SamplingConfig.paper_scaled())")

    @property
    def benchmark(self) -> str:
        return self.profile.name

    def __len__(self) -> int:
        """Number of sample segments the stream will yield."""
        return sum(1 for _, _, phase in self._windows()
                   if phase == SamplingSchedule.MEASURE)

    def _windows(self) -> List[Tuple[int, int, str]]:
        return self.schedule.windows(self.instructions)

    def segments(self) -> Iterator[SampleSegment]:
        """Walk the horizon once, yielding each sample segment in order.

        The loop body is :meth:`TraceBundle._generate_sampled`'s, verbatim:
        skip windows advance the workload functionally, warm-up windows are
        emitted and held pending, and each measure window is emitted with the
        working set frozen at its warm-up/measure boundary.  The caller owns
        every yielded segment outright — dropping it frees the sample.
        """
        workload = SyntheticWorkload(self.profile, seed=self.seed)
        pending_warm: Tuple = ()
        for start, end, phase in self._windows():
            length = end - start
            if phase == SamplingSchedule.SKIP:
                workload.fast_forward(length)
                pending_warm = ()
            elif phase == SamplingSchedule.WARMUP:
                pending_warm = tuple(workload.emit(length))
            else:
                snapshot = workload.snapshot_working_set()
                measured = tuple(workload.emit(length))
                yield SampleSegment(warmup=pending_warm, measured=measured,
                                    working_set=snapshot)
                pending_warm = ()

    def segment(self, index: int) -> SampleSegment:
        """Regenerate sample ``index`` alone, bit-identically (replay-on-demand).

        A fresh workload fast-forwards through everything before the sample's
        warm-up window — skip, warm-up and measure windows of earlier periods
        alike, all functionally — then emits just this sample's warm-up and
        measure windows.  ``fast_forward`` ≡ emit-and-discard (golden-pinned),
        so the RNG stream, allocator state and cursors arrive at the window
        boundary exactly as the continuous walk's did.
        """
        windows = self._windows()
        measure_positions = [i for i, (_, _, phase) in enumerate(windows)
                             if phase == SamplingSchedule.MEASURE]
        if not 0 <= index < len(measure_positions):
            raise IndexError(
                f"sample index {index} out of range: schedule yields "
                f"{len(measure_positions)} samples over "
                f"{self.instructions} instructions")
        position = measure_positions[index]
        measure_start, measure_end, _ = windows[position]
        # The warm-up is the immediately preceding window iff it is a WARMUP:
        # the eager loop resets its pending warm-up on every skip window, and
        # a warm-up window is always directly followed by its measure window
        # (non-degenerate schedules interpose a skip between periods).
        warm_start = measure_start
        if position > 0 and windows[position - 1][2] == SamplingSchedule.WARMUP:
            warm_start = windows[position - 1][0]
        workload = SyntheticWorkload(self.profile, seed=self.seed)
        workload.fast_forward(warm_start)
        warmup = tuple(workload.emit(measure_start - warm_start)) \
            if measure_start > warm_start else ()
        snapshot = workload.snapshot_working_set()
        measured = tuple(workload.emit(measure_end - measure_start))
        return SampleSegment(warmup=warmup, measured=measured,
                             working_set=snapshot)

    def segment_bundle(self, segment: SampleSegment) -> TraceBundle:
        """Wrap one streamed segment as a single-sample :class:`TraceBundle`.

        The transient bundle is what lets streaming reuse the per-sample
        replay machinery (compiled-stream caching across a job's
        configurations included) unchanged; it and every compiled artifact it
        accumulates are dropped when the caller releases the segment.
        """
        return TraceBundle(
            benchmark=self.profile.name, seed=self.seed,
            instructions=self.instructions, warmup_instructions=0,
            warmup=(), measured=(), working_set=segment.working_set,
            sampling=self.sampling, samples=(segment,))
