"""Reusable dynamic-trace bundles.

Workload generation is independent of the Watchdog configuration: the
synthetic generator picks instructions, addresses and lock locations from the
benchmark profile and the seed alone.  The old sweep nevertheless regenerated
the trace for every (benchmark, configuration) cell, which dominated sweep
wall-clock time.  A :class:`TraceBundle` materializes everything one timing
run needs — the warm-up stream, the measured stream and a snapshot of the
workload's live working set — exactly once per (benchmark, seed,
instructions) and lets the simulator replay it under any number of
configurations with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

from repro.sim.trace import DynamicOp
from repro.workloads.profiles import BenchmarkProfile, profile_by_name
from repro.workloads.synthetic import SyntheticWorkload

#: Instance attributes holding the lazily-built compiled-stream caches.
#: They live outside the dataclass fields: equality, hashing and pickling of
#: a bundle are defined by its trace content alone.
_TOKEN_CACHE_ATTR = "_cc_tokens"
_STREAM_CACHE_ATTR = "_cc_streams"


def default_warmup_instructions(instructions: int) -> int:
    """Warm-up window length used when the caller does not choose one.

    A quarter of the measured window (with a floor) mirrors the
    warm-up/measure structure of the paper's §9.1 sampling methodology at the
    reproduction's reduced scale.
    """
    return max(instructions // 4, 1_000)


@dataclass(frozen=True)
class WorkingSetSnapshot:
    """The live working set of a workload at one point in its generation.

    Captures what :meth:`Simulator._warm_working_set` needs — the 64-byte
    data lines and the lock locations of every live object — so the warm-up
    can be replayed for each configuration without keeping (or re-running)
    the workload generator itself.
    """

    lines: Tuple[int, ...]
    locks: Tuple[int, ...]

    def working_set_lines(self) -> Iterator[int]:
        return iter(self.lines)

    def lock_locations(self) -> Iterator[int]:
        return iter(self.locks)


#: Anything the simulator's working-set warm-up can consume.
WorkingSet = Union[SyntheticWorkload, WorkingSetSnapshot]


@dataclass(frozen=True)
class TraceBundle:
    """One benchmark's dynamic trace, generated once and replayed many times."""

    benchmark: str
    seed: int
    instructions: int
    warmup_instructions: int
    #: The untimed stream that primes the cache hierarchy.
    warmup: Tuple[DynamicOp, ...]
    #: The measured stream the timing model replays.
    measured: Tuple[DynamicOp, ...]
    #: Live working set at the warm-up/measure boundary.
    working_set: WorkingSetSnapshot

    @classmethod
    def generate(cls, profile: Union[str, BenchmarkProfile], seed: int,
                 instructions: int,
                 warmup_instructions: Optional[int] = None) -> "TraceBundle":
        """Generate the warm-up and measured streams for one benchmark.

        The generation order matches a direct :meth:`Simulator.run_profile`
        run: the warm-up portion is materialized first, the working set is
        snapshotted at the warm-up/measure boundary, and the measured portion
        continues the same generator state — so replaying the bundle is
        indistinguishable from regenerating the workload per configuration.
        """
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        if warmup_instructions is None:
            warmup_instructions = default_warmup_instructions(instructions)
        workload = SyntheticWorkload(profile, seed=seed)
        warmup = tuple(workload.trace(warmup_instructions)) \
            if warmup_instructions else ()
        snapshot = workload.snapshot_working_set()
        measured = tuple(workload.trace(instructions))
        return cls(benchmark=profile.name, seed=seed, instructions=instructions,
                   warmup_instructions=warmup_instructions, warmup=warmup,
                   measured=measured, working_set=snapshot)

    def __len__(self) -> int:
        return len(self.measured)

    # -- compiled-stream cache ----------------------------------------------------
    def compiled_streams(self, config, machine=None):
        """The bundle's compiled replay artifacts for one configuration.

        Compilation is cached *per configuration-equivalence class* (see
        :func:`repro.sim.compiled.stream_class_key`): sweep cells whose
        configurations inject the same µops — e.g. with and without the lock
        location cache — share one packed stream, one warm-up access
        sequence and one working-set array set.  Tokenization (the
        configuration-independent interning of the dynamic traces) happens
        at most once per bundle.

        Returns a :class:`repro.sim.compiled.BundleStreams`.
        """
        from repro.pipeline.config import MachineConfig
        from repro.sim.compiled import (
            BundleStreams,
            StreamCompiler,
            stream_class_key,
            tokenize,
        )

        machine = machine or MachineConfig()
        streams = self.__dict__.get(_STREAM_CACHE_ATTR)
        if streams is None:
            streams = {}
            object.__setattr__(self, _STREAM_CACHE_ATTR, streams)
        key = (stream_class_key(config), machine)
        cached = streams.get(key)
        if cached is not None:
            return cached

        tokens = self.__dict__.get(_TOKEN_CACHE_ATTR)
        if tokens is None:
            tokens = (tokenize(self.measured),
                      tokenize(self.warmup) if self.warmup else None)
            object.__setattr__(self, _TOKEN_CACHE_ATTR, tokens)
        measured_tokens, warm_tokens = tokens

        compiler = StreamCompiler(config, machine)
        built = BundleStreams(
            measured=compiler.compile_measured(measured_tokens),
            warm=compiler.compile_warm(warm_tokens)
            if warm_tokens is not None else None,
            working_set=compiler.working_set_arrays(self.working_set),
        )
        streams[key] = built
        return built

    def __getstate__(self):
        """Pickle only the trace content, never the compiled caches."""
        return {key: value for key, value in self.__dict__.items()
                if key not in (_TOKEN_CACHE_ATTR, _STREAM_CACHE_ATTR)}

    def __setstate__(self, state):
        self.__dict__.update(state)
