"""Reusable dynamic-trace bundles.

Workload generation is independent of the Watchdog configuration: the
synthetic generator picks instructions, addresses and lock locations from the
benchmark profile and the seed alone.  The old sweep nevertheless regenerated
the trace for every (benchmark, configuration) cell, which dominated sweep
wall-clock time.  A :class:`TraceBundle` materializes everything one timing
run needs — the warm-up stream, the measured stream and a snapshot of the
workload's live working set — exactly once per (benchmark, seed,
instructions) and lets the simulator replay it under any number of
configurations with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.sim.trace import DynamicOp
from repro.workloads.profiles import BenchmarkProfile, profile_by_name
from repro.workloads.synthetic import SyntheticWorkload

#: Instance attributes holding the lazily-built compiled-stream caches.
#: They live outside the dataclass fields: equality, hashing and pickling of
#: a bundle are defined by its trace content alone.
_TOKEN_CACHE_ATTR = "_cc_tokens"
_STREAM_CACHE_ATTR = "_cc_streams"


#: Largest horizon a bundle may materialize *unsampled* — whether because no
#: sampling schedule was requested at all, or because a requested §9.1
#: schedule measures nothing and would normalize to the unsampled layout
#: (the right behaviour at test scale, a silent catastrophe at paper scale:
#: the whole 100M-instruction horizon materialized as DynamicOps).  Past
#: this bound both cases are errors pointing at a horizon-fitted schedule.
MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS = 4_000_000


def default_warmup_instructions(instructions: int) -> int:
    """Warm-up window length used when the caller does not choose one.

    A quarter of the measured window (with a floor) mirrors the
    warm-up/measure structure of the paper's §9.1 sampling methodology at the
    reproduction's reduced scale.
    """
    return max(instructions // 4, 1_000)


@dataclass(frozen=True)
class WorkingSetSnapshot:
    """The live working set of a workload at one point in its generation.

    Captures what :meth:`Simulator._warm_working_set` needs — the 64-byte
    data lines and the lock locations of every live object — so the warm-up
    can be replayed for each configuration without keeping (or re-running)
    the workload generator itself.
    """

    lines: Tuple[int, ...]
    locks: Tuple[int, ...]

    def working_set_lines(self) -> Iterator[int]:
        return iter(self.lines)

    def lock_locations(self) -> Iterator[int]:
        return iter(self.locks)


#: Anything the simulator's working-set warm-up can consume.
WorkingSet = Union[SyntheticWorkload, WorkingSetSnapshot]


@dataclass(frozen=True)
class SampleSegment:
    """One §9.1 sampling period's replayable portion.

    The fast-forward window is applied *functionally* at generation time (the
    workload generator advances through it, no trace is kept); what remains
    is the warm-up stream, the working set frozen at the warm-up/measure
    boundary, and the measured stream — exactly the inputs one unsampled
    timing run takes, so each sample replays through the unchanged
    per-pipeline machinery.
    """

    warmup: Tuple[DynamicOp, ...]
    measured: Tuple[DynamicOp, ...]
    working_set: WorkingSetSnapshot


@dataclass(frozen=True)
class TraceBundle:
    """One benchmark's dynamic trace, generated once and replayed many times."""

    benchmark: str
    seed: int
    instructions: int
    warmup_instructions: int
    #: The untimed stream that primes the cache hierarchy.
    warmup: Tuple[DynamicOp, ...]
    #: The measured stream the timing model replays.
    measured: Tuple[DynamicOp, ...]
    #: Live working set at the warm-up/measure boundary.
    working_set: WorkingSetSnapshot
    #: The §9.1 schedule this bundle was segmented under, or ``None`` for a
    #: conventional (fully measured) bundle.
    sampling: Optional[SamplingConfig] = None
    #: Per-period replay segments; empty unless ``sampling`` is set.
    samples: Tuple[SampleSegment, ...] = field(default=())

    @classmethod
    def generate(cls, profile: Union[str, BenchmarkProfile], seed: int,
                 instructions: int,
                 warmup_instructions: Optional[int] = None,
                 sampling: Optional[SamplingConfig] = None) -> "TraceBundle":
        """Generate the warm-up and measured streams for one benchmark.

        The generation order matches a direct :meth:`Simulator.run_profile`
        run: the warm-up portion is materialized first, the working set is
        snapshotted at the warm-up/measure boundary, and the measured portion
        continues the same generator state — so replaying the bundle is
        indistinguishable from regenerating the workload per configuration.

        With ``sampling``, the ``instructions``-long dynamic stream is instead
        segmented into the schedule's skip/warm-up/measure windows (see
        :meth:`_generate_sampled`).  A schedule that would measure everything
        (no fast-forward, no warm-up) or nothing (the trace ends inside the
        first fast-forward window) is normalized to the unsampled layout, so
        degenerate schedules reproduce the unsampled results bit-for-bit.
        """
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        if sampling is not None:
            if warmup_instructions is not None:
                # The schedule's own warm-up windows define cache priming;
                # accepting both would silently ignore one of them (and which
                # one would depend on whether the schedule normalizes below).
                raise ConfigurationError(
                    "warmup_instructions cannot be combined with a sampling "
                    "schedule: the schedule's warm-up windows apply")
            schedule = SamplingSchedule(sampling.validate())
            if sampling.degenerate or schedule.measured_count(instructions) == 0:
                if instructions > MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS:
                    raise ConfigurationError(
                        f"sampling schedule measures "
                        f"{'everything' if sampling.degenerate else 'nothing'} "
                        f"over {instructions} instructions and would fall "
                        f"back to materializing the whole horizon unsampled; "
                        f"choose a schedule whose period fits the horizon "
                        f"(e.g. SamplingConfig.paper_scaled())")
                sampling = None
            else:
                return cls._generate_sampled(profile, seed, instructions,
                                             sampling, schedule)
        if instructions > MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS:
            raise ConfigurationError(
                f"an unsampled bundle would materialize all {instructions} "
                f"instructions as dynamic ops; horizons past "
                f"{MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS} require a §9.1 "
                f"sampling schedule (e.g. --sampling paper-scaled / "
                f"SamplingConfig.paper_scaled())")
        if warmup_instructions is None:
            warmup_instructions = default_warmup_instructions(instructions)
        workload = SyntheticWorkload(profile, seed=seed)
        warmup = tuple(workload.trace(warmup_instructions)) \
            if warmup_instructions else ()
        snapshot = workload.snapshot_working_set()
        measured = tuple(workload.trace(instructions))
        return cls(benchmark=profile.name, seed=seed, instructions=instructions,
                   warmup_instructions=warmup_instructions, warmup=warmup,
                   measured=measured, working_set=snapshot)

    @classmethod
    def _generate_sampled(cls, profile: BenchmarkProfile, seed: int,
                          instructions: int, sampling: SamplingConfig,
                          schedule: SamplingSchedule) -> "TraceBundle":
        """Segment one continuous generation run into sampling periods.

        One workload walks the whole ``instructions`` horizon so the dynamic
        stream is identical to what an unsampled run of the same length would
        produce; the schedule only decides each window's fate: skip windows
        advance the workload functionally through the state-evolution core
        (:meth:`SyntheticWorkload.fast_forward` — allocator state, working
        set and locality cursors move, nothing is materialized), warm-up
        windows are emitted for untimed cache priming, and each measure
        window is emitted for timing with the working set frozen at its
        warm-up/measure boundary.  An event split by a window boundary stays
        pending inside the workload, so the concatenation of all windows is
        exactly the continuous stream.
        """
        workload = SyntheticWorkload(profile, seed=seed)
        samples = []
        pending_warm: Tuple[DynamicOp, ...] = ()
        for start, end, phase in schedule.windows(instructions):
            length = end - start
            if phase == SamplingSchedule.SKIP:
                workload.fast_forward(length)
                pending_warm = ()
            elif phase == SamplingSchedule.WARMUP:
                pending_warm = tuple(workload.emit(length))
            else:
                snapshot = workload.snapshot_working_set()
                samples.append(SampleSegment(
                    warmup=pending_warm,
                    measured=tuple(workload.emit(length)),
                    working_set=snapshot))
                pending_warm = ()
        return cls(benchmark=profile.name, seed=seed, instructions=instructions,
                   warmup_instructions=0, warmup=(), measured=(),
                   working_set=workload.snapshot_working_set(),
                   sampling=sampling, samples=tuple(samples))

    @property
    def measured_instructions(self) -> int:
        """Dynamic instructions the timing model actually replays."""
        if self.samples:
            return sum(len(sample.measured) for sample in self.samples)
        return len(self.measured)

    def __len__(self) -> int:
        return self.measured_instructions

    # -- compiled-stream cache ----------------------------------------------------
    def compiled_streams(self, config, machine=None):
        """The bundle's compiled replay artifacts for one configuration.

        Compilation is cached *per configuration-equivalence class* (see
        :func:`repro.sim.compiled.stream_class_key`): sweep cells whose
        configurations inject the same µops — e.g. with and without the lock
        location cache — share one packed stream, one warm-up access
        sequence and one working-set array set.  Tokenization (the
        configuration-independent interning of the dynamic traces) happens
        at most once per bundle (per sample, for sampled bundles).

        Returns a :class:`repro.sim.compiled.BundleStreams`.
        """
        return self._compiled(None, config, machine)

    def compiled_sample_streams(self, index: int, config, machine=None):
        """Compiled replay artifacts for one :class:`SampleSegment`."""
        return self._compiled(index, config, machine)

    def _compiled(self, index, config, machine):
        """Compile (warm-up, measured, working set) for one segment.

        ``index`` selects a sample of a sampled bundle; ``None`` selects the
        conventional whole-bundle streams.
        """
        if index is None and self.samples:
            # A sampled bundle's top-level streams are empty; compiling them
            # would "succeed" with a zero-µop result instead of failing.
            raise ConfigurationError(
                "sampled bundle has no whole-bundle streams; use "
                "compiled_sample_streams(index, ...) per sample")
        from repro.pipeline.config import MachineConfig
        from repro.sim.compiled import (
            BundleStreams,
            StreamCompiler,
            stream_class_key,
            tokenize,
        )

        machine = machine or MachineConfig()
        streams = self.__dict__.get(_STREAM_CACHE_ATTR)
        if streams is None:
            streams = {}
            object.__setattr__(self, _STREAM_CACHE_ATTR, streams)
        key = (stream_class_key(config), machine, index)
        cached = streams.get(key)
        if cached is not None:
            return cached

        segment = self if index is None else self.samples[index]
        tokens = self.__dict__.get(_TOKEN_CACHE_ATTR)
        if tokens is None:
            tokens = {}
            object.__setattr__(self, _TOKEN_CACHE_ATTR, tokens)
        segment_tokens = tokens.get(index)
        if segment_tokens is None:
            segment_tokens = tokens[index] = (
                tokenize(segment.measured),
                tokenize(segment.warmup) if segment.warmup else None)
        measured_tokens, warm_tokens = segment_tokens

        compiler = StreamCompiler(config, machine)
        built = BundleStreams(
            measured=compiler.compile_measured(measured_tokens),
            warm=compiler.compile_warm(warm_tokens)
            if warm_tokens is not None else None,
            working_set=compiler.working_set_arrays(segment.working_set),
        )
        streams[key] = built
        return built

    def release_sample_caches(self, index: int) -> None:
        """Drop the compiled artifacts pinned for one sample.

        Removes the sample's interned token streams and every
        configuration-class compiled stream (packed µop arrays, warm access
        sequences and working-set snapshot arrays) built for it, so a
        long-horizon sampled replay that is done with a sample stops pinning
        its — by far dominant — compiled footprint.  The raw
        :class:`SampleSegment` traces stay: they are what makes the bundle
        replayable under further configurations, and re-deriving the compiled
        artifacts from them is exactly the lazy path :meth:`_compiled` already
        implements, so a released sample can still be replayed (it just
        recompiles).
        """
        tokens = self.__dict__.get(_TOKEN_CACHE_ATTR)
        if tokens:
            tokens.pop(index, None)
        streams = self.__dict__.get(_STREAM_CACHE_ATTR)
        if streams:
            for key in [key for key in streams if key[2] == index]:
                del streams[key]

    def footprint_ops(self) -> int:
        """The bundle's pinned memory, in dynamic-op equivalents.

        What the engine's per-process bundle memo budgets against: the raw
        trace streams (top-level and per-sample), the working-set snapshots,
        and — crucially for long sampled bundles — the lazily-built token and
        compiled-stream caches this instance currently pins, which for a
        compiled replay dwarf the traces themselves.
        """
        def _snapshot_ops(snapshot: WorkingSetSnapshot) -> int:
            return len(snapshot.lines) + len(snapshot.locks)

        ops = len(self.measured) + len(self.warmup) \
            + _snapshot_ops(self.working_set)
        for sample in self.samples:
            ops += len(sample.measured) + len(sample.warmup) \
                + _snapshot_ops(sample.working_set)
        tokens = self.__dict__.get(_TOKEN_CACHE_ATTR)
        if tokens:
            for measured_tokens, warm_tokens in tokens.values():
                ops += len(measured_tokens)
                if warm_tokens is not None:
                    ops += len(warm_tokens)
        streams = self.__dict__.get(_STREAM_CACHE_ATTR)
        if streams:
            for built in streams.values():
                measured = built.measured
                # words + lat_template run per µop; mem_pos/mem_addr/mem_spec
                # run per memory access.  len(measured) reads the flat word
                # column without materializing the per-µop tuple fallback.
                ops += 2 * len(measured) + 3 * len(measured.mem_pos)
                # A pinned per-µop tuple list — a tuple-only stream (some
                # template overflowed the packed field widths), or a flat
                # stream whose tuples the Python fallback scheduler
                # materialized — costs ~8 slots per µop on top of the flat
                # columns; budget it, but never *trigger* materialization.
                tuples = measured.__dict__.get("_uop_tuples")
                if tuples is not None:
                    ops += 8 * len(tuples)
                if built.warm is not None:
                    # addrs + specs.
                    ops += 2 * len(built.warm)
                working_set = built.working_set
                ops += len(working_set.shadow) + len(working_set.locks) \
                    + len(working_set.data)
        return ops

    def __getstate__(self):
        """Pickle only the trace content, never the compiled caches."""
        return {key: value for key, value in self.__dict__.items()
                if key not in (_TOKEN_CACHE_ATTR, _STREAM_CACHE_ATTR)}

    def __setstate__(self, state):
        self.__dict__.update(state)
