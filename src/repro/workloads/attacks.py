"""End-to-end exploit scenarios.

The motivation for Watchdog is that use-after-free bugs are *exploitable*:
after a free, the attacker arranges for the memory to be reallocated and
filled with attacker-controlled data, so the victim's dangling pointer now
reads (or overwrites) attacker-chosen values (§1).  These scenarios build
small programs in which the "attack" observably succeeds on an unprotected
baseline — the victim reads the attacker's planted value — and are used by
the examples and the security tests to show that Watchdog detects the
dangling access before the corrupted value is ever consumed.

The buffer-overflow scenario exercises the bounds extension (§8): it only
triggers a violation under the full-memory-safety configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.isa.registers import parse_reg
from repro.program.builder import ProgramBuilder
from repro.program.ir import Program

#: The value the attacker plants; scenarios check whether the victim read it.
ATTACKER_VALUE = 0xDEAD_BEEF_F00D
#: The value the victim originally stored.
VICTIM_VALUE = 0x1111_2222_3333


@dataclass
class AttackScenario:
    """One exploit scenario."""

    name: str
    description: str
    build: Callable[[], Program]
    #: Register holding the value the victim ultimately consumed.
    observed_register: str
    #: Violation kind Watchdog is expected to raise (None if the scenario is
    #: only detectable with the bounds extension).
    expected_kind: Optional[str]
    #: True if detection requires the bounds extension (§8).
    requires_bounds: bool = False

    def program(self) -> Program:
        return self.build()


# ----------------------------------------------------------------------- scenarios
def _heap_uaf_hijack() -> Program:
    """Classic heap use-after-free hijack via reallocation.

    The victim allocates an object holding a sensitive value, keeps an alias,
    frees it, and later reads through the alias.  In between, the attacker
    grabs an allocation of the same size — the allocator hands back the same
    chunk — and plants a payload, which is what the victim then reads.
    """
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 64)                     # victim object
        main.mov("r2", "r1")                      # victim keeps an alias
        main.mov_imm("r8", VICTIM_VALUE)
        main.store("r1", "r8", 8)
        main.free("r1")                           # premature free
        main.malloc("r3", 64)                     # attacker allocation (reuses chunk)
        main.mov_imm("r9", ATTACKER_VALUE)
        main.store("r3", "r9", 8)                 # attacker plants payload
        main.load("r10", "r2", 8)                 # victim reads via dangling alias
    return builder.build()


def _stack_uaf_hijack() -> Program:
    """Stack use-after-free: a published local address is read after the
    frame is popped and overwritten by a later call's frame."""
    builder = ProgramBuilder()
    with builder.function("publish_local") as publish:
        publish.stack_alloc("r1", 32)
        publish.mov_imm("r8", VICTIM_VALUE)
        publish.store("r1", "r8", 0)
        publish.global_addr("r2", 0)
        publish.store_ptr("r2", "r1", 0)          # global = &local
        publish.ret()
    with builder.function("attacker_frame") as attacker:
        attacker.stack_alloc("r4", 32)
        attacker.mov_imm("r9", ATTACKER_VALUE)
        attacker.store("r4", "r9", 0)             # clobbers the stale slot
        attacker.ret()
    with builder.function("main") as main:
        main.call("publish_local")
        main.call("attacker_frame")
        main.global_addr("r2", 0)
        main.load_ptr("r3", "r2", 0)
        main.load("r10", "r3", 0)                 # read through stale stack pointer
    return builder.build()


def _double_free_corruption() -> Program:
    """Double free: the second free corrupts allocator state in real attacks;
    here the runtime's identifier check catches it directly (§4.1)."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 48)
        main.mov("r2", "r1")
        main.free("r1")
        main.malloc("r3", 48)
        main.free("r2")                           # frees the attacker's chunk
        main.mov_imm("r10", 0)
    return builder.build()


def _heap_overflow() -> Program:
    """Sequential heap buffer overflow into an adjacent object (spatial
    violation — caught only with the bounds extension, §8)."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 32)                     # buffer
        main.malloc("r2", 32)                     # adjacent sensitive object
        main.mov_imm("r8", VICTIM_VALUE)
        main.store("r2", "r8", 0)
        main.mov_imm("r9", ATTACKER_VALUE)
        main.add_imm("r3", "r1", 40)              # past the end of the buffer
        main.store("r3", "r9", 0)                 # overflowing write
        main.load("r10", "r2", 0)                 # victim reads its object
    return builder.build()


def all_attack_scenarios() -> List[AttackScenario]:
    """Every exploit scenario used by the examples and the security tests."""
    return [
        AttackScenario(
            name="heap-uaf-hijack",
            description="use-after-free read of attacker-reallocated heap chunk",
            build=_heap_uaf_hijack,
            observed_register="r10",
            expected_kind="use-after-free"),
        AttackScenario(
            name="stack-uaf-hijack",
            description="read through a stale stack address overwritten by a later frame",
            build=_stack_uaf_hijack,
            observed_register="r10",
            expected_kind="use-after-free"),
        AttackScenario(
            name="double-free",
            description="second free of an already-freed (and reallocated) chunk",
            build=_double_free_corruption,
            observed_register="r10",
            expected_kind="double-free"),
        AttackScenario(
            name="heap-overflow",
            description="sequential overflow from one heap object into its neighbour",
            build=_heap_overflow,
            observed_register="r10",
            expected_kind="out-of-bounds",
            requires_bounds=True),
    ]


def scenario_by_name(name: str) -> AttackScenario:
    for scenario in all_attack_scenarios():
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown attack scenario {name!r}")
