"""Per-benchmark workload profiles.

The paper evaluates twenty C SPEC benchmarks (§9.1).  Since the benchmarks
themselves cannot be executed here, each is represented by a profile
describing the dynamic characteristics that determine Watchdog's overhead:

* how memory-intensive the benchmark is (fraction of instructions that are
  loads/stores) and how its accesses are sized/typed,
* how many of those accesses are 64-bit integer accesses (what conservative
  identification must treat as pointer operations, §5.1) and how many
  actually move pointers (what ISA-assisted identification marks, §5.2) —
  these per-benchmark fractions are calibrated to Figure 5,
* allocation and call intensity (identifier management work),
* working-set size and access locality (cache behaviour of data, shadow and
  lock accesses),
* branch density and misprediction rate (baseline ILP).

The numbers are approximations of each benchmark's published behaviour
chosen so the reproduction exhibits the same *pattern* across benchmarks as
the paper's figures: pointer-dense integer codes (mcf, gcc, perl, twolf)
incur the largest overheads while float-heavy array codes (lbm, milc, art,
equake) incur little.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BenchmarkProfile:
    """Dynamic characteristics of one SPEC-like benchmark."""

    name: str
    #: Fraction of dynamic instructions that access memory.
    memory_fraction: float
    #: Of the memory accesses, fraction that are loads (rest are stores).
    load_fraction: float
    #: Of the memory accesses, fraction that are 64-bit integer accesses
    #: (conservative pointer candidates, Figure 5 left bars).
    word_integer_fraction: float
    #: Of the memory accesses, fraction that actually move pointers
    #: (ISA-assisted classification, Figure 5 right bars).
    pointer_fraction: float
    #: Of the memory accesses, fraction that are floating-point.
    fp_access_fraction: float
    #: Fraction of non-memory instructions that are floating-point arithmetic.
    fp_compute_fraction: float
    #: Fraction of dynamic instructions that are conditional branches.
    branch_fraction: float
    #: Branch misprediction rate.
    mispredict_rate: float
    #: Function calls per 1000 instructions.
    calls_per_kilo: float
    #: Heap allocations per 1000 instructions.
    allocs_per_kilo: float
    #: Typical allocation size in bytes.
    typical_alloc_bytes: int
    #: Number of live allocations forming the working set.
    working_set_objects: int
    #: Probability that a memory access hits the recently-touched hot subset.
    temporal_locality: float
    #: Probability that a memory access continues a sequential stride.
    spatial_locality: float

    def __post_init__(self) -> None:
        fractions = (self.memory_fraction, self.load_fraction, self.pointer_fraction,
                     self.word_integer_fraction, self.fp_access_fraction,
                     self.branch_fraction, self.mispredict_rate,
                     self.temporal_locality, self.spatial_locality)
        if any(not 0.0 <= value <= 1.0 for value in fractions):
            raise ConfigurationError(f"profile {self.name}: fractions must be in [0,1]")
        if self.pointer_fraction > self.word_integer_fraction:
            raise ConfigurationError(
                f"profile {self.name}: pointer accesses cannot exceed word-integer accesses")


def _p(name: str, mem: float, load: float, word: float, ptr: float, fp_acc: float,
       fp_cmp: float, br: float, misp: float, calls: float, allocs: float,
       alloc_bytes: int, objects: int, temporal: float, spatial: float) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, memory_fraction=mem, load_fraction=load,
        word_integer_fraction=word, pointer_fraction=ptr, fp_access_fraction=fp_acc,
        fp_compute_fraction=fp_cmp, branch_fraction=br, mispredict_rate=misp,
        calls_per_kilo=calls, allocs_per_kilo=allocs, typical_alloc_bytes=alloc_bytes,
        working_set_objects=objects, temporal_locality=temporal, spatial_locality=spatial)


#: The twenty benchmarks of §9.1, ordered as the figures list them.
SPEC_PROFILES: Tuple[BenchmarkProfile, ...] = (
    # name      mem   load  word  ptr   fpacc fpcmp br    misp  calls allocs bytes objs  temp  spat
    _p("lbm",    0.38, 0.62, 0.07, 0.03, 0.70, 0.55, 0.04, 0.01, 0.2,  0.01,  4096, 512,  0.45, 0.95),
    _p("comp",   0.27, 0.68, 0.17, 0.07, 0.02, 0.05, 0.14, 0.05, 0.6,  0.05,  256,  96,   0.93, 0.85),
    _p("gzip",   0.29, 0.66, 0.19, 0.08, 0.01, 0.04, 0.15, 0.06, 0.8,  0.05,  512,  96,   0.93, 0.85),
    _p("milc",   0.36, 0.64, 0.12, 0.05, 0.65, 0.50, 0.05, 0.02, 0.5,  0.02,  2048, 512,  0.50, 0.92),
    _p("bzip2",  0.30, 0.65, 0.21, 0.11, 0.01, 0.03, 0.15, 0.07, 0.7,  0.04,  1024, 96,   0.90, 0.85),
    _p("ammp",   0.34, 0.66, 0.26, 0.15, 0.40, 0.35, 0.09, 0.03, 1.5,  0.20,  192,  384,  0.86, 0.78),
    _p("go",     0.27, 0.70, 0.33, 0.19, 0.00, 0.02, 0.18, 0.09, 2.5,  0.10,  128,  192,  0.92, 0.72),
    _p("sjeng",  0.26, 0.69, 0.32, 0.17, 0.00, 0.02, 0.18, 0.09, 3.0,  0.08,  128,  192,  0.92, 0.72),
    _p("equake", 0.36, 0.65, 0.24, 0.13, 0.45, 0.40, 0.08, 0.03, 1.0,  0.30,  512,  384,  0.80, 0.86),
    _p("h264",   0.34, 0.64, 0.31, 0.17, 0.10, 0.15, 0.12, 0.05, 2.0,  0.15,  512,  160,  0.90, 0.85),
    _p("ijpeg",  0.30, 0.64, 0.26, 0.15, 0.05, 0.10, 0.12, 0.04, 1.5,  0.12,  768,  160,  0.88, 0.86),
    _p("gobmk",  0.28, 0.69, 0.36, 0.21, 0.00, 0.02, 0.19, 0.10, 3.0,  0.12,  160,  256,  0.90, 0.70),
    _p("art",    0.33, 0.66, 0.14, 0.07, 0.55, 0.45, 0.07, 0.02, 0.5,  0.05,  2048, 448,  0.55, 0.90),
    _p("twolf",  0.30, 0.68, 0.45, 0.29, 0.05, 0.08, 0.16, 0.08, 2.5,  0.40,  96,   512,  0.86, 0.62),
    _p("hmmer",  0.37, 0.63, 0.29, 0.16, 0.02, 0.05, 0.10, 0.03, 1.0,  0.10,  384,  128,  0.92, 0.88),
    _p("vpr",    0.31, 0.67, 0.43, 0.27, 0.08, 0.10, 0.15, 0.07, 2.5,  0.35,  128,  384,  0.87, 0.65),
    _p("mcf",    0.33, 0.70, 0.57, 0.40, 0.00, 0.01, 0.17, 0.09, 1.5,  0.50,  192,  2048, 0.60, 0.50),
    _p("mesa",   0.32, 0.63, 0.29, 0.16, 0.30, 0.30, 0.09, 0.03, 2.0,  0.15,  640,  192,  0.90, 0.84),
    _p("gcc",    0.32, 0.68, 0.52, 0.36, 0.00, 0.02, 0.18, 0.09, 4.0,  0.80,  144,  640,  0.84, 0.62),
    _p("perl",   0.33, 0.67, 0.55, 0.39, 0.00, 0.02, 0.19, 0.08, 5.0,  1.00,  128,  512,  0.85, 0.64),
)

#: Dynamic-instruction horizon the long-run profiles are meant to be
#: simulated at.  Unsampled, a horizon this long is intractable for the
#: Python timing model; under the §9.1 periodic schedules only the measure
#: windows are timed, which is what opens these workloads up.
LONG_HORIZON_INSTRUCTIONS = 1_000_000

#: Long-horizon variants of representative §9.1 benchmarks.  Same dynamic
#: instruction mix as their short counterparts, but working sets sized for a
#: million-instruction execution (far beyond the caches) with weaker
#: temporal locality — over a short trace these never leave their cold-start
#: transient, so they are only meaningful under sampled simulation.  They are
#: deliberately *not* part of :func:`benchmark_names`: the paper's figure
#: grids stay at the calibrated twenty-benchmark scale.
LONG_PROFILES: Tuple[BenchmarkProfile, ...] = (
    # name        mem   load  word  ptr   fpacc fpcmp br    misp  calls allocs bytes objs  temp  spat
    _p("mcf-long",  0.33, 0.70, 0.57, 0.40, 0.00, 0.01, 0.17, 0.09, 1.5,  0.50,  192,  8192, 0.50, 0.50),
    _p("gcc-long",  0.32, 0.68, 0.52, 0.36, 0.00, 0.02, 0.18, 0.09, 4.0,  0.80,  144,  4096, 0.75, 0.62),
    _p("lbm-long",  0.38, 0.62, 0.07, 0.03, 0.70, 0.55, 0.04, 0.01, 0.2,  0.01,  4096, 3072, 0.35, 0.95),
    _p("perl-long", 0.33, 0.67, 0.55, 0.39, 0.00, 0.02, 0.19, 0.08, 5.0,  1.00,  128,  3072, 0.78, 0.64),
)

#: Dynamic-instruction horizon of the paper's actual measurement regime
#: (§9.1 simulates billions of instructions per benchmark; 100M per cell is
#: the reproduction's paper-scale operating point).  Only reachable through
#: sampled simulation with the state-evolution core's bulk fast-forward —
#: materializing a horizon this long is out of the question.
PAPER_HORIZON_INSTRUCTIONS = 100_000_000

#: Paper-scale variants of the long-horizon benchmarks.  Same dynamic
#: instruction mix, but working sets sized for a 100M-instruction execution
#: (object populations well past every cache level) with the weak temporal
#: locality of a full reference run.  Like the ``*-long`` profiles they are
#: excluded from :func:`benchmark_names`: the calibrated twenty-benchmark
#: figure grids stay at their published scale.
PAPER_PROFILES: Tuple[BenchmarkProfile, ...] = (
    # name         mem   load  word  ptr   fpacc fpcmp br    misp  calls allocs bytes objs   temp  spat
    _p("mcf-paper",  0.33, 0.70, 0.57, 0.40, 0.00, 0.01, 0.17, 0.09, 1.5,  0.50,  192,  12288, 0.45, 0.50),
    _p("gcc-paper",  0.32, 0.68, 0.52, 0.36, 0.00, 0.02, 0.18, 0.09, 4.0,  0.80,  144,  6144,  0.72, 0.62),
    _p("lbm-paper",  0.38, 0.62, 0.07, 0.03, 0.70, 0.55, 0.04, 0.01, 0.2,  0.01,  4096, 4096,  0.32, 0.95),
    _p("perl-paper", 0.33, 0.67, 0.55, 0.39, 0.00, 0.02, 0.19, 0.08, 5.0,  1.00,  128,  4608,  0.75, 0.64),
)

#: Dynamic-instruction horizon matching the 1B-instruction regions of
#: interest that full-SPEC sampled-simulation studies standardize on — an
#: order of magnitude past the ``*-paper`` operating point.  Only reachable
#: streaming (:mod:`repro.workloads.streaming`): a retained bundle at this
#: horizon would pin hundreds of raw sample traces, whereas the streaming
#: driver holds exactly one regardless of horizon.
ONE_B_HORIZON_INSTRUCTIONS = 1_000_000_000

#: Billion-instruction variants of the long-horizon benchmarks.  Same
#: dynamic instruction mix; working sets another step past the ``*-paper``
#: populations, with temporal locality weakened toward a full reference
#: run's.  Like the other long-horizon tiers they are excluded from
#: :func:`benchmark_names` (the calibrated twenty-benchmark figure grids
#: stay at their published scale).
ONE_B_PROFILES: Tuple[BenchmarkProfile, ...] = (
    # name      mem   load  word  ptr   fpacc fpcmp br    misp  calls allocs bytes objs   temp  spat
    _p("mcf-1b",  0.33, 0.70, 0.57, 0.40, 0.00, 0.01, 0.17, 0.09, 1.5,  0.50,  192,  16384, 0.40, 0.50),
    _p("gcc-1b",  0.32, 0.68, 0.52, 0.36, 0.00, 0.02, 0.18, 0.09, 4.0,  0.80,  144,  8192,  0.70, 0.62),
    _p("lbm-1b",  0.38, 0.62, 0.07, 0.03, 0.70, 0.55, 0.04, 0.01, 0.2,  0.01,  4096, 6144,  0.30, 0.95),
    _p("perl-1b", 0.33, 0.67, 0.55, 0.39, 0.00, 0.02, 0.19, 0.08, 5.0,  1.00,  128,  6144,  0.72, 0.64),
)

_BY_NAME: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in SPEC_PROFILES + LONG_PROFILES + PAPER_PROFILES
    + ONE_B_PROFILES}


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up a SPEC-like or long-horizon profile by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ConfigurationError(f"unknown benchmark {name!r}; known: {known}") from None


def benchmark_names() -> List[str]:
    """Benchmark names in the order the paper's figures list them."""
    return [profile.name for profile in SPEC_PROFILES]


def long_profile_names() -> List[str]:
    """Names of the long-horizon profiles (sampled-simulation workloads)."""
    return [profile.name for profile in LONG_PROFILES]


def paper_profile_names() -> List[str]:
    """Names of the paper-scale (100M-horizon) profiles."""
    return [profile.name for profile in PAPER_PROFILES]


def one_b_profile_names() -> List[str]:
    """Names of the billion-instruction (streaming-only) profiles."""
    return [profile.name for profile in ONE_B_PROFILES]


# -- multi-core workload mixes ---------------------------------------------------------

@dataclass(frozen=True)
class WorkloadMix:
    """A multiprogrammed bundle of §9.1 profiles, one per core."""

    name: str
    #: Member profile names in core order (core *i* runs ``members[i]``).
    members: Tuple[str, ...]
    description: str

    def __post_init__(self) -> None:
        for member in self.members:
            if member not in _BY_NAME:
                raise ConfigurationError(
                    f"mix {self.name}: unknown member profile {member!r}")


# Members are ordered by a memory-intensity proxy (working-set bytes ×
# (1 − temporal locality) × memory fraction — the quantity that tracks MPKI
# in this model): mix1 takes the four most intensive profiles, mix5 the four
# least, and mix6/mix7 blend the extremes, in the mix1–mix7 style of
# multiprogrammed SPEC studies.
MIXES: Tuple[WorkloadMix, ...] = (
    WorkloadMix("mix1", ("lbm", "milc", "art", "mcf"),
                "four most memory-intensive profiles"),
    WorkloadMix("mix2", ("equake", "gcc", "twolf", "perl"),
                "high-intensity pointer-chasing profiles"),
    WorkloadMix("mix3", ("vpr", "mesa", "ijpeg", "ammp"),
                "mid-intensity profiles"),
    WorkloadMix("mix4", ("h264", "bzip2", "hmmer", "gobmk"),
                "lower-mid-intensity profiles"),
    WorkloadMix("mix5", ("go", "sjeng", "gzip", "comp"),
                "four least memory-intensive profiles"),
    WorkloadMix("mix6", ("lbm", "mcf", "gzip", "comp"),
                "two most + two least intensive profiles"),
    WorkloadMix("mix7", ("milc", "gcc", "go", "bzip2"),
                "one profile from each intensity quartile"),
)

_MIX_BY_NAME: Dict[str, WorkloadMix] = {mix.name: mix for mix in MIXES}


def mix_names() -> List[str]:
    """Mix names in definition (intensity) order."""
    return [mix.name for mix in MIXES]


def mix_by_name(name: str) -> WorkloadMix:
    try:
        return _MIX_BY_NAME[name]
    except KeyError:
        known = ", ".join(mix_names())
        raise ConfigurationError(
            f"unknown mix {name!r}; known: {known}") from None


def parse_mix_benchmark(token: str):
    """Decode a mix benchmark token, or ``None`` for an ordinary benchmark.

    Grammar: ``mixK`` runs every member; ``mixK:N`` the first *N* members;
    ``mixK:N@S`` *N* members starting at member index *S* (so ``mix1:1@2``
    is member 2 of mix1 running solo).  Returns ``(mix, members)`` where
    ``members`` is a tuple of ``(member_index, profile_name)`` pairs, one
    per core in core order — member indices (not core slots) key the
    per-member seed derivation, so a member keeps its workload whether it
    runs solo or inside the full mix.
    """
    name, sep, suffix = token.partition(":")
    mix = _MIX_BY_NAME.get(name)
    if mix is None:
        if name.startswith("mix") and name not in _BY_NAME:
            raise ConfigurationError(
                f"unknown mix {name!r}; known: {', '.join(mix_names())}")
        return None
    start, count = 0, len(mix.members)
    if sep:
        head, at, tail = suffix.partition("@")
        try:
            count = int(head)
            if at:
                start = int(tail)
        except ValueError:
            raise ConfigurationError(
                f"bad mix token {token!r}: expected mixK, mixK:N or "
                f"mixK:N@S") from None
        if count < 1 or start < 0 or start + count > len(mix.members):
            raise ConfigurationError(
                f"bad mix token {token!r}: {mix.name} has "
                f"{len(mix.members)} members")
    members = tuple((start + j, mix.members[start + j]) for j in range(count))
    return mix, members


def mix_member_seed(mix_name: str, member_index: int, base_seed: int) -> int:
    """Deterministic per-member seed, derived like PR 1's benchmark seeds.

    Folding a crc32 of ``mix#member`` into the base seed decorrelates the
    members' synthetic traces (identical seeds would phase-lock identical
    profiles) while keeping every mix reproducible across runs and worker
    pools.
    """
    tag = f"{mix_name}#{member_index}".encode()
    return base_seed ^ (zlib.crc32(tag) & 0xFFFF)
