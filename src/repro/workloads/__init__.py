"""Workloads: SPEC-like synthetic benchmarks, the Juliet-style suite, attacks.

* :mod:`repro.workloads.profiles` — per-benchmark characteristics for the
  twenty C SPEC benchmarks the paper evaluates (§9.1),
* :mod:`repro.workloads.state_core` — the generator's state-evolution core:
  allocator-backed object set, RNG stream and locality cursors, evolvable in
  bulk (the §9.1 fast-forward fast path; optional native kernel in
  :mod:`repro.workloads._ffcore`),
* :mod:`repro.workloads.synthetic` — the trace-emission layer on top of the
  core: the synthetic dynamic-trace generator driven by those profiles (the
  SPEC substitute, see DESIGN.md §1),
* :mod:`repro.workloads.juliet` — generator for the 291 CWE-416/562
  use-after-free cases modelled on the NIST Juliet suite (§9.2), plus benign
  twins used to confirm the absence of false positives,
* :mod:`repro.workloads.attacks` — end-to-end exploit scenarios (heap UAF
  with reallocation, stack UAF, double free, buffer overflow) used by the
  examples and the security tests.
"""

from repro.workloads.profiles import BenchmarkProfile, SPEC_PROFILES, profile_by_name
from repro.workloads.state_core import WorkloadCore
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.juliet import JulietSuite, JulietCase
from repro.workloads.attacks import AttackScenario, all_attack_scenarios

__all__ = [
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "profile_by_name",
    "WorkloadCore",
    "SyntheticWorkload",
    "JulietSuite",
    "JulietCase",
    "AttackScenario",
    "all_attack_scenarios",
]
