"""``python -m repro`` — the experiment runner CLI (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
