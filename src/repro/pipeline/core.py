"""Trace-driven out-of-order timing model.

This model replays a timed µop stream (baseline plus Watchdog-injected µops)
through a dependence-, window- and port-limited approximation of the Table 2
core.  It captures the effects the paper's evaluation attributes Watchdog's
overhead to:

* extra µops consuming front-end (rename/dispatch) and issue bandwidth
  (Figure 8 vs Figure 7: "the execution time overhead is lower than the µop
  overhead because these µops are off the critical path"),
* check µops contending for data-cache load ports unless the dedicated lock
  location cache provides extra bandwidth (Figure 9),
* shadow metadata accesses adding cache pressure (§9.3 idealized-shadow
  ablation),
* metadata dependences being kept *off* the program's critical path thanks to
  decoupled metadata (§6.2): injected µops depend on the address register's
  data value and on metadata, but program µops never depend on metadata.

The model is not cycle-accurate — it is a behavioural dependence-graph
scheduler — but every structural limit (widths, ROB/IQ/LQ/SQ occupancy, port
counts, cache latencies, branch refill) is enforced, which is what determines
the *relative* overheads the paper reports.
"""

from __future__ import annotations

import functools
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

from repro.core.config import WatchdogConfig
from repro.isa.microops import UopKind, WATCHDOG_KINDS
from repro.isa.registers import NUM_REG_SLOTS, ArchReg
from repro.memory.hierarchy import MemoryHierarchy, PortKind
from repro.pipeline.config import MachineConfig
from repro.pipeline.resources import FunctionalUnits
from repro.sim.trace import TimedUop

# -- per-µop flag word of the compiled stream format ----------------------------------
# Bits 0-4 hold the UopKind code; the compiler (repro.sim.compiled) packs
# these and the array scheduler below consumes them.
FLAG_KIND_MASK = 31
FLAG_LQ = 32          #: µop occupies the load queue
FLAG_SQ = 64          #: µop occupies the store queue
FLAG_BRANCH = 128     #: µop is a branch
FLAG_MISPREDICT = 256  #: branch instance was mispredicted


@functools.lru_cache(maxsize=64)
def _derived_hierarchy_config(base, lock_cache_enabled: bool,
                              ideal_shadow: bool):
    """The machine's hierarchy config with the Watchdog knobs applied.

    Memoized: sweeps construct one core per cell, and rebuilding the frozen
    config dataclass (validation included) thousands of times is measurable.
    """
    return base.__class__(
        l1d=base.l1d, l2=base.l2, l3=base.l3, lock_cache=base.lock_cache,
        l1d_prefetcher=base.l1d_prefetcher, l2_prefetcher=base.l2_prefetcher,
        l1_tlb=base.l1_tlb, lock_tlb=base.lock_tlb,
        dram_latency=base.dram_latency,
        lock_cache_enabled=lock_cache_enabled, ideal_shadow=ideal_shadow)


@dataclass
class TimingResult:
    """Cycle count and supporting statistics for one timing run."""

    cycles: int
    total_uops: int
    injected_uops: int
    macro_instructions: int
    memory_accesses: int
    lock_cache_misses: int
    l1d_misses: int
    port_waits: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed µops per cycle."""
        return self.total_uops / self.cycles if self.cycles else 0.0

    @property
    def uop_overhead(self) -> float:
        base = self.total_uops - self.injected_uops
        return self.injected_uops / base if base else 0.0


class OutOfOrderCore:
    """Dependence/port/window-limited replay of a timed µop stream."""

    def __init__(self, machine: Optional[MachineConfig] = None,
                 watchdog: Optional[WatchdogConfig] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 timecore: Optional[bool] = None):
        self.machine = machine or MachineConfig()
        self.watchdog = watchdog or WatchdogConfig()
        if hierarchy is None:
            # The Watchdog configuration decides whether the lock cache exists
            # and whether shadow accesses are idealized.
            hierarchy = MemoryHierarchy(_derived_hierarchy_config(
                self.machine.hierarchy, self.watchdog.lock_cache_enabled,
                self.watchdog.ideal_shadow))
        self.hierarchy = hierarchy
        #: Native timing core knob: ``None`` uses the kernel when available
        #: (still subject to ``REPRO_TIMECORE=0``), ``False`` forces the
        #: Python loops.  Propagated to the hierarchy's batch paths.
        self.timecore = timecore
        if timecore is not None:
            self.hierarchy.native_override = bool(timecore)
        self.units = FunctionalUnits(self.machine.functional_units, self.watchdog)

    # -- helpers -----------------------------------------------------------------
    def _memory_latency(self, timed: TimedUop) -> int:
        if timed.address is None:
            return self.machine.latency_for(timed.uop.kind)
        return self.hierarchy.access(timed.address, is_write=timed.is_write,
                                     port=timed.port)

    def _latency(self, timed: TimedUop) -> int:
        kind = timed.uop.kind
        if kind in (UopKind.LOAD, UopKind.SHADOW_LOAD, UopKind.CHECK,
                    UopKind.GETIDENT):
            return self._memory_latency(timed)
        if kind in (UopKind.STORE, UopKind.SHADOW_STORE, UopKind.SETIDENT,
                    UopKind.LOCK_PUSH, UopKind.LOCK_POP):
            # Stores retire from the store queue; their cache access is off the
            # critical path but still consumes hierarchy bandwidth/state.
            if timed.address is not None:
                self.hierarchy.access(timed.address, is_write=True, port=timed.port)
            return self.machine.latency_for(kind)
        return self.machine.latency_for(kind)

    # -- the scheduler -----------------------------------------------------------
    def simulate(self, timed_uops: Iterable[TimedUop]) -> TimingResult:
        """Replay the stream and return the cycle count."""
        machine = self.machine
        ready: Dict[ArchReg, int] = {}
        meta_ready: Dict[ArchReg, int] = {}

        rob: Deque[int] = deque()          # commit times of in-flight µops
        iq: Deque[int] = deque()           # issue times of dispatched µops
        lq: Deque[int] = deque()           # completion times of in-flight loads
        sq: Deque[int] = deque()           # completion times of in-flight stores

        dispatch_cycle = machine.fetch_latency + machine.rename_latency
        dispatched_in_cycle = 0
        fetch_stall_until = 0

        last_commit_time = 0
        commits_in_cycle = 0
        commit_cycle = 0

        total_uops = 0
        injected_uops = 0
        macro_instructions = 0
        memory_accesses = 0
        seen_macros = set()
        last_macro_seq = -1

        for timed in timed_uops:
            uop = timed.uop
            total_uops += uop.uop_cost
            if uop.is_injected:
                injected_uops += uop.uop_cost
            macro_seq = uop.macro_seq
            if macro_seq >= 0:
                # Injector-stamped µops: stamps are monotonic per dynamic
                # macro instance and shared by all µops of one expansion, so
                # a simple change detector counts macro instructions exactly
                # (unlike ``id()``, stamps are never reused after GC).
                if macro_seq != last_macro_seq:
                    last_macro_seq = macro_seq
                    macro_instructions += 1
            elif uop.macro is not None and id(uop.macro) not in seen_macros:
                # Hand-built µop streams without stamps fall back to object
                # identity with periodic clearing (best-effort).
                seen_macros.add(id(uop.macro))
                macro_instructions += 1
                if len(seen_macros) > 65536:
                    seen_macros.clear()
            if timed.address is not None:
                memory_accesses += 1

            # ---- dispatch: front-end width, ROB/IQ/LQ/SQ occupancy ----------
            if dispatched_in_cycle >= machine.dispatch_width:
                dispatch_cycle += 1
                dispatched_in_cycle = 0
            dispatch_time = max(dispatch_cycle, fetch_stall_until)

            if len(rob) >= machine.rob_entries:
                dispatch_time = max(dispatch_time, rob.popleft())
            elif rob and rob[0] <= dispatch_time:
                rob.popleft()
            if len(iq) >= machine.iq_entries:
                dispatch_time = max(dispatch_time, iq.popleft())
            elif iq and iq[0] <= dispatch_time:
                iq.popleft()
            # LQ/SQ: like the ROB/IQ, entries whose µop has completed by the
            # dispatch point have left the queue — drain them before deciding
            # whether the queue is actually full and must stall dispatch.
            if uop.kind in (UopKind.LOAD, UopKind.SHADOW_LOAD):
                while lq and lq[0] <= dispatch_time:
                    lq.popleft()
                if len(lq) >= machine.lq_entries:
                    dispatch_time = max(dispatch_time, lq.popleft())
            elif uop.kind in (UopKind.STORE, UopKind.SHADOW_STORE):
                while sq and sq[0] <= dispatch_time:
                    sq.popleft()
                if len(sq) >= machine.sq_entries:
                    dispatch_time = max(dispatch_time, sq.popleft())

            if dispatch_time > dispatch_cycle:
                dispatch_cycle = dispatch_time
                dispatched_in_cycle = 0
            dispatched_in_cycle += uop.uop_cost

            # ---- issue: data + metadata dependences, then a port -------------
            operands_ready = dispatch_time + machine.dispatch_latency
            for src in uop.srcs:
                operands_ready = max(operands_ready, ready.get(src, 0))
            for src in uop.meta_srcs:
                operands_ready = max(operands_ready, meta_ready.get(src, 0))

            pool = self.units.pool_for(uop.kind)
            start = pool.reserve(operands_ready, occupancy=uop.uop_cost)
            latency = self._latency(timed)
            completion = start + latency

            # ---- writeback ----------------------------------------------------
            if uop.dest is not None and uop.kind not in WATCHDOG_KINDS:
                ready[uop.dest] = completion
            if uop.meta_dest is not None:
                meta_ready[uop.meta_dest] = completion

            # ---- branch misprediction refill ---------------------------------
            if uop.kind is UopKind.BRANCH and timed.mispredicted_branch:
                fetch_stall_until = max(fetch_stall_until,
                                        completion + machine.branch_misprediction_penalty)

            # ---- in-order commit ---------------------------------------------
            commit_time = max(completion, last_commit_time)
            if commit_time == commit_cycle:
                commits_in_cycle += uop.uop_cost
                if commits_in_cycle >= machine.commit_width:
                    commit_time += 1
                    commits_in_cycle = 0
            else:
                commit_cycle = commit_time
                commits_in_cycle = uop.uop_cost
            last_commit_time = commit_time

            # ---- occupancy bookkeeping -----------------------------------------
            rob.append(commit_time)
            iq.append(start)
            if uop.kind in (UopKind.LOAD, UopKind.SHADOW_LOAD):
                lq.append(completion)
            elif uop.kind in (UopKind.STORE, UopKind.SHADOW_STORE):
                sq.append(commit_time)

        cycles = max(last_commit_time, 1)
        port_waits = {name: pool.average_wait()
                      for name, pool in self.units.all_pools().items()}
        return TimingResult(
            cycles=cycles,
            total_uops=total_uops,
            injected_uops=injected_uops,
            macro_instructions=macro_instructions,
            memory_accesses=memory_accesses,
            lock_cache_misses=self.hierarchy.lock_cache.misses,
            l1d_misses=self.hierarchy.l1d.misses,
            port_waits=port_waits,
        )

    # -- the array scheduler -------------------------------------------------------
    def simulate_compiled(self, stream) -> TimingResult:
        """Replay a :class:`~repro.sim.compiled.CompiledStream`.

        Bit-identical to :meth:`simulate` over the equivalent ``TimedUop``
        stream (the golden equivalence tests enforce this), but consuming
        packed per-µop tuples instead of objects, in two passes:

        1. the memory hierarchy replays the packed access sequence in one
           batch (access order equals program order, so cache state and load
           latencies are independent of scheduling decisions),
        2. a tight integer loop schedules dispatch, operand readiness (flat
           register-slot scoreboards), port reservation, completion and
           in-order commit.

        When the native timing core is available (and ``timecore`` is not
        ``False``), both passes run inside the C kernel instead, with
        bit-identical results; any unpackable stream or unusual machine
        shape falls back to the Python loop below.
        """
        if self.timecore is not False:
            from repro.native import _timecore
            lib = _timecore.load()
            if lib is not None:
                result = self._simulate_compiled_native(stream, lib)
                if result is not None:
                    return result
        lats = stream.lat_template[:]
        self.hierarchy.access_batch(stream.mem_addr, stream.mem_spec,
                                    stream.mem_pos, lats)
        return self._schedule_python(stream, lats)

    def schedule_compiled(self, stream, lats) -> TimingResult:
        """Run only the scheduler pass over an already-filled latency array.

        The fused :meth:`simulate_compiled` replays the hierarchy and
        schedules in one call; a multi-core simulation instead interleaves
        the cores' hierarchy replays in epochs (so shared-level contention
        is ordered across cores) and then schedules each core's stream over
        the latencies its epochs produced.  Scheduling is per-core state
        only, so given equal latencies the result is bit-identical to the
        fused path — on the native and the Python scheduler alike.
        """
        if self.timecore is not False:
            from repro.native import _timecore
            lib = _timecore.load()
            machine = self.machine
            if lib is not None and min(
                    machine.rob_entries, machine.iq_entries,
                    machine.lq_entries, machine.sq_entries,
                    machine.dispatch_width, machine.commit_width) >= 1:
                packed = _timecore.pack_stream(stream, lib)
                if packed is not None:
                    if not (isinstance(lats, array) and lats.typecode == "q"):
                        lats = array("q", lats)
                    return self._schedule_native(stream, packed[0], lats, lib)
        return self._schedule_python(stream, lats)

    def _schedule_python(self, stream, lats) -> TimingResult:
        """Pass 2 of :meth:`simulate_compiled`: the Python array scheduler."""
        machine = self.machine

        # kind code -> port-pool index, honouring the Watchdog configuration
        # (check µops fall back to the data load ports without a lock cache).
        pools = list(self.units.all_pools().values())
        pool_index = {id(pool): i for i, pool in enumerate(pools)}
        pool_map = [0] * len(UopKind)
        for kind in UopKind:
            pool_map[kind.code] = pool_index[id(self.units.pool_for(kind))]
        free_times = [pool._next_free for pool in pools]
        pool_uses = [0] * len(pools)
        pool_waits = [0] * len(pools)

        ready = [0] * NUM_REG_SLOTS
        meta_ready = [0] * NUM_REG_SLOTS

        # FIFO queues as append-only lists with explicit head cursors (the
        # compiled loop never touches more than len(stream) entries, and
        # cursor arithmetic beats deque method calls).
        rob: list = []
        iq: list = []
        lq: list = []
        sq: list = []
        rob_append = rob.append
        iq_append = iq.append
        lq_append = lq.append
        sq_append = sq.append
        rob_head = iq_head = lq_head = sq_head = 0
        rob_len = iq_len = lq_len = sq_len = 0
        rob_size = machine.rob_entries
        iq_size = machine.iq_entries
        lq_size = machine.lq_entries
        sq_size = machine.sq_entries

        dispatch_width = machine.dispatch_width
        dispatch_latency = machine.dispatch_latency
        commit_width = machine.commit_width
        mispredict_penalty = machine.branch_misprediction_penalty

        dispatch_cycle = machine.fetch_latency + machine.rename_latency
        dispatched = 0
        fetch_stall = 0
        last_commit = 0
        commits = 0
        commit_cycle = 0

        for (flags, cost, dest, s0, s1, md, ms0, ms1), latency in \
                zip(stream.uops, lats):
            # ---- dispatch: front-end width, window occupancy ----------------
            if dispatched >= dispatch_width:
                dispatch_cycle += 1
                dispatched = 0
            t = dispatch_cycle
            if fetch_stall > t:
                t = fetch_stall
            if rob_len >= rob_size:
                v = rob[rob_head]
                rob_head += 1
                rob_len -= 1
                if v > t:
                    t = v
            elif rob_len and rob[rob_head] <= t:
                rob_head += 1
                rob_len -= 1
            if iq_len >= iq_size:
                v = iq[iq_head]
                iq_head += 1
                iq_len -= 1
                if v > t:
                    t = v
            elif iq_len and iq[iq_head] <= t:
                iq_head += 1
                iq_len -= 1
            if flags & 96:
                if flags & FLAG_LQ:
                    while lq_len and lq[lq_head] <= t:
                        lq_head += 1
                        lq_len -= 1
                    if lq_len >= lq_size:
                        v = lq[lq_head]
                        lq_head += 1
                        lq_len -= 1
                        if v > t:
                            t = v
                else:
                    while sq_len and sq[sq_head] <= t:
                        sq_head += 1
                        sq_len -= 1
                    if sq_len >= sq_size:
                        v = sq[sq_head]
                        sq_head += 1
                        sq_len -= 1
                        if v > t:
                            t = v
            if t > dispatch_cycle:
                dispatch_cycle = t
                dispatched = cost
            else:
                dispatched += cost

            # ---- issue: operand readiness, then a port ----------------------
            r = t + dispatch_latency
            if s0 >= 0:
                v = ready[s0]
                if v > r:
                    r = v
                if s1 >= 0:
                    v = ready[s1]
                    if v > r:
                        r = v
            if ms0 >= 0:
                v = meta_ready[ms0]
                if v > r:
                    r = v
                if ms1 >= 0:
                    v = meta_ready[ms1]
                    if v > r:
                        r = v
            p = pool_map[flags & 31]
            free = free_times[p]
            b = min(free)
            if b > r:
                start = b
                pool_waits[p] += b - r
            else:
                start = r
            free[free.index(b)] = start + cost
            pool_uses[p] += 1
            completion = start + latency

            # ---- writeback ---------------------------------------------------
            if dest >= 0:
                ready[dest] = completion
            if md >= 0:
                meta_ready[md] = completion

            # ---- branch misprediction refill --------------------------------
            if flags & FLAG_MISPREDICT:
                v = completion + mispredict_penalty
                if v > fetch_stall:
                    fetch_stall = v

            # ---- in-order commit --------------------------------------------
            c = completion
            if last_commit > c:
                c = last_commit
            if c == commit_cycle:
                commits += cost
                if commits >= commit_width:
                    c += 1
                    commits = 0
            else:
                commit_cycle = c
                commits = cost
            last_commit = c

            # ---- occupancy bookkeeping --------------------------------------
            rob_append(c)
            rob_len += 1
            iq_append(start)
            iq_len += 1
            if flags & FLAG_LQ:
                lq_append(completion)
                lq_len += 1
            elif flags & FLAG_SQ:
                sq_append(c)
                sq_len += 1

        for pool, uses, waited in zip(pools, pool_uses, pool_waits):
            pool.uses += uses
            pool.total_wait += waited
        port_waits = {name: pool.average_wait()
                      for name, pool in self.units.all_pools().items()}
        return TimingResult(
            cycles=max(last_commit, 1),
            total_uops=stream.total_uops,
            injected_uops=stream.injected_uops,
            macro_instructions=stream.macro_instructions,
            memory_accesses=stream.memory_accesses,
            lock_cache_misses=self.hierarchy.lock_cache.misses,
            l1d_misses=self.hierarchy.l1d.misses,
            port_waits=port_waits,
        )

    def _simulate_compiled_native(self, stream, lib) -> Optional[TimingResult]:
        """Run both passes of :meth:`simulate_compiled` in the C kernel.

        Returns ``None`` (leaving all state untouched) when the stream or
        machine shape cannot be expressed in the kernel's packed format —
        the caller then takes the Python loop.
        """
        from repro.native import _timecore

        machine = self.machine
        if min(machine.rob_entries, machine.iq_entries, machine.lq_entries,
               machine.sq_entries, machine.dispatch_width,
               machine.commit_width) < 1:
            return None
        packed = _timecore.pack_stream(stream, lib)
        if packed is None:
            return None
        words, lat_template, mem_pos, mem_addr, mem_spec, _core = packed

        # The packed view aliases the stream's own arenas; copy before the
        # hierarchy writes load latencies into it.
        lats = lat_template[:]
        if len(mem_addr):
            self.hierarchy._batch_native(lib, mem_addr, mem_spec, mem_pos,
                                         lats, True)
        return self._schedule_native(stream, words, lats, lib)

    def _schedule_native(self, stream, words, lats, lib) -> TimingResult:
        """Pass 2 of :meth:`_simulate_compiled_native`: the C scheduler.

        ``words`` is the packed µop array from ``pack_stream``; ``lats`` the
        post-hierarchy int64 latency array.
        """
        machine = self.machine
        pools = list(self.units.all_pools().values())
        pool_index = {id(pool): i for i, pool in enumerate(pools)}
        pool_map = array("q", bytes(8 * len(UopKind)))
        for kind in UopKind:
            pool_map[kind.code] = pool_index[id(self.units.pool_for(kind))]
        offsets = [0]
        flat_free: list = []
        for pool in pools:
            flat_free.extend(pool._next_free)
            offsets.append(len(flat_free))
        pool_free = array("q", flat_free)
        pool_off = array("q", offsets)
        pool_uses = array("q", bytes(8 * len(pools)))
        pool_waits = array("q", bytes(8 * len(pools)))
        # 64 slots covers every register index the packed format can encode,
        # independent of NUM_REG_SLOTS.
        ready = array("q", bytes(8 * 64))
        meta_ready = array("q", bytes(8 * 64))
        robq = array("q", bytes(8 * machine.rob_entries))
        iqq = array("q", bytes(8 * machine.iq_entries))
        lqq = array("q", bytes(8 * machine.lq_entries))
        sqq = array("q", bytes(8 * machine.sq_entries))
        cfg = array("q", (machine.dispatch_width, machine.dispatch_latency,
                          machine.commit_width,
                          machine.branch_misprediction_penalty,
                          machine.fetch_latency + machine.rename_latency,
                          machine.rob_entries, machine.iq_entries,
                          machine.lq_entries, machine.sq_entries))
        last_commit = lib.sched_run(
            cfg.buffer_info()[0], words.buffer_info()[0],
            lats.buffer_info()[0], len(words), ready.buffer_info()[0],
            meta_ready.buffer_info()[0], pool_map.buffer_info()[0],
            pool_free.buffer_info()[0], pool_off.buffer_info()[0],
            pool_uses.buffer_info()[0], pool_waits.buffer_info()[0],
            robq.buffer_info()[0], iqq.buffer_info()[0],
            lqq.buffer_info()[0], sqq.buffer_info()[0])

        for i, pool in enumerate(pools):
            # In-place: FunctionalUnits hands out the same list objects.
            pool._next_free[:] = pool_free[pool_off[i]:pool_off[i + 1]]
            pool.uses += pool_uses[i]
            pool.total_wait += pool_waits[i]
        port_waits = {name: pool.average_wait()
                      for name, pool in self.units.all_pools().items()}
        return TimingResult(
            cycles=max(last_commit, 1),
            total_uops=stream.total_uops,
            injected_uops=stream.injected_uops,
            macro_instructions=stream.macro_instructions,
            memory_accesses=stream.memory_accesses,
            lock_cache_misses=self.hierarchy.lock_cache.misses,
            l1d_misses=self.hierarchy.l1d.misses,
            port_waits=port_waits,
        )
