"""Trace-driven out-of-order timing model.

This model replays a timed µop stream (baseline plus Watchdog-injected µops)
through a dependence-, window- and port-limited approximation of the Table 2
core.  It captures the effects the paper's evaluation attributes Watchdog's
overhead to:

* extra µops consuming front-end (rename/dispatch) and issue bandwidth
  (Figure 8 vs Figure 7: "the execution time overhead is lower than the µop
  overhead because these µops are off the critical path"),
* check µops contending for data-cache load ports unless the dedicated lock
  location cache provides extra bandwidth (Figure 9),
* shadow metadata accesses adding cache pressure (§9.3 idealized-shadow
  ablation),
* metadata dependences being kept *off* the program's critical path thanks to
  decoupled metadata (§6.2): injected µops depend on the address register's
  data value and on metadata, but program µops never depend on metadata.

The model is not cycle-accurate — it is a behavioural dependence-graph
scheduler — but every structural limit (widths, ROB/IQ/LQ/SQ occupancy, port
counts, cache latencies, branch refill) is enforced, which is what determines
the *relative* overheads the paper reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

from repro.core.config import WatchdogConfig
from repro.isa.microops import UopKind, WATCHDOG_KINDS
from repro.isa.registers import ArchReg
from repro.memory.hierarchy import MemoryHierarchy, PortKind
from repro.pipeline.config import MachineConfig
from repro.pipeline.resources import FunctionalUnits
from repro.sim.trace import TimedUop


@dataclass
class TimingResult:
    """Cycle count and supporting statistics for one timing run."""

    cycles: int
    total_uops: int
    injected_uops: int
    macro_instructions: int
    memory_accesses: int
    lock_cache_misses: int
    l1d_misses: int
    port_waits: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed µops per cycle."""
        return self.total_uops / self.cycles if self.cycles else 0.0

    @property
    def uop_overhead(self) -> float:
        base = self.total_uops - self.injected_uops
        return self.injected_uops / base if base else 0.0


class OutOfOrderCore:
    """Dependence/port/window-limited replay of a timed µop stream."""

    def __init__(self, machine: Optional[MachineConfig] = None,
                 watchdog: Optional[WatchdogConfig] = None,
                 hierarchy: Optional[MemoryHierarchy] = None):
        self.machine = machine or MachineConfig()
        self.watchdog = watchdog or WatchdogConfig()
        hierarchy_config = self.machine.hierarchy
        if hierarchy is None:
            # The Watchdog configuration decides whether the lock cache exists
            # and whether shadow accesses are idealized.
            hierarchy_config = hierarchy_config.__class__(
                l1d=hierarchy_config.l1d, l2=hierarchy_config.l2,
                l3=hierarchy_config.l3, lock_cache=hierarchy_config.lock_cache,
                l1d_prefetcher=hierarchy_config.l1d_prefetcher,
                l2_prefetcher=hierarchy_config.l2_prefetcher,
                l1_tlb=hierarchy_config.l1_tlb, lock_tlb=hierarchy_config.lock_tlb,
                dram_latency=hierarchy_config.dram_latency,
                lock_cache_enabled=self.watchdog.lock_cache_enabled,
                ideal_shadow=self.watchdog.ideal_shadow)
            hierarchy = MemoryHierarchy(hierarchy_config)
        self.hierarchy = hierarchy
        self.units = FunctionalUnits(self.machine.functional_units, self.watchdog)

    # -- helpers -----------------------------------------------------------------
    def _memory_latency(self, timed: TimedUop) -> int:
        if timed.address is None:
            return self.machine.latency_for(timed.uop.kind)
        return self.hierarchy.access(timed.address, is_write=timed.is_write,
                                     port=timed.port)

    def _latency(self, timed: TimedUop) -> int:
        kind = timed.uop.kind
        if kind in (UopKind.LOAD, UopKind.SHADOW_LOAD, UopKind.CHECK,
                    UopKind.GETIDENT):
            return self._memory_latency(timed)
        if kind in (UopKind.STORE, UopKind.SHADOW_STORE, UopKind.SETIDENT,
                    UopKind.LOCK_PUSH, UopKind.LOCK_POP):
            # Stores retire from the store queue; their cache access is off the
            # critical path but still consumes hierarchy bandwidth/state.
            if timed.address is not None:
                self.hierarchy.access(timed.address, is_write=True, port=timed.port)
            return self.machine.latency_for(kind)
        return self.machine.latency_for(kind)

    # -- the scheduler -----------------------------------------------------------
    def simulate(self, timed_uops: Iterable[TimedUop]) -> TimingResult:
        """Replay the stream and return the cycle count."""
        machine = self.machine
        ready: Dict[ArchReg, int] = {}
        meta_ready: Dict[ArchReg, int] = {}

        rob: Deque[int] = deque()          # commit times of in-flight µops
        iq: Deque[int] = deque()           # issue times of dispatched µops
        lq: Deque[int] = deque()           # completion times of in-flight loads
        sq: Deque[int] = deque()           # completion times of in-flight stores

        dispatch_cycle = machine.fetch_latency + machine.rename_latency
        dispatched_in_cycle = 0
        fetch_stall_until = 0

        last_commit_time = 0
        commits_in_cycle = 0
        commit_cycle = 0

        total_uops = 0
        injected_uops = 0
        macro_instructions = 0
        memory_accesses = 0
        seen_macros = set()

        for timed in timed_uops:
            uop = timed.uop
            total_uops += uop.uop_cost
            if uop.is_injected:
                injected_uops += uop.uop_cost
            if uop.macro is not None and id(uop.macro) not in seen_macros:
                # Count unique macro instructions cheaply; the set is bounded
                # by clearing it periodically (macro identity repeats only for
                # static instructions re-executed much later).
                seen_macros.add(id(uop.macro))
                macro_instructions += 1
                if len(seen_macros) > 65536:
                    seen_macros.clear()
            if timed.address is not None:
                memory_accesses += 1

            # ---- dispatch: front-end width, ROB/IQ/LQ/SQ occupancy ----------
            if dispatched_in_cycle >= machine.dispatch_width:
                dispatch_cycle += 1
                dispatched_in_cycle = 0
            dispatch_time = max(dispatch_cycle, fetch_stall_until)

            if len(rob) >= machine.rob_entries:
                dispatch_time = max(dispatch_time, rob.popleft())
            elif rob and rob[0] <= dispatch_time:
                rob.popleft()
            if len(iq) >= machine.iq_entries:
                dispatch_time = max(dispatch_time, iq.popleft())
            elif iq and iq[0] <= dispatch_time:
                iq.popleft()
            if uop.kind in (UopKind.LOAD, UopKind.SHADOW_LOAD) and len(lq) >= machine.lq_entries:
                dispatch_time = max(dispatch_time, lq.popleft())
            if uop.kind in (UopKind.STORE, UopKind.SHADOW_STORE) and len(sq) >= machine.sq_entries:
                dispatch_time = max(dispatch_time, sq.popleft())

            if dispatch_time > dispatch_cycle:
                dispatch_cycle = dispatch_time
                dispatched_in_cycle = 0
            dispatched_in_cycle += uop.uop_cost

            # ---- issue: data + metadata dependences, then a port -------------
            operands_ready = dispatch_time + machine.dispatch_latency
            for src in uop.srcs:
                operands_ready = max(operands_ready, ready.get(src, 0))
            for src in uop.meta_srcs:
                operands_ready = max(operands_ready, meta_ready.get(src, 0))

            pool = self.units.pool_for(uop.kind)
            start = pool.reserve(operands_ready, occupancy=uop.uop_cost)
            latency = self._latency(timed)
            completion = start + latency

            # ---- writeback ----------------------------------------------------
            if uop.dest is not None and uop.kind not in WATCHDOG_KINDS:
                ready[uop.dest] = completion
            if uop.meta_dest is not None:
                meta_ready[uop.meta_dest] = completion

            # ---- branch misprediction refill ---------------------------------
            if uop.kind is UopKind.BRANCH and timed.mispredicted_branch:
                fetch_stall_until = max(fetch_stall_until,
                                        completion + machine.branch_misprediction_penalty)

            # ---- in-order commit ---------------------------------------------
            commit_time = max(completion, last_commit_time)
            if commit_time == commit_cycle:
                commits_in_cycle += uop.uop_cost
                if commits_in_cycle >= machine.commit_width:
                    commit_time += 1
                    commits_in_cycle = 0
            else:
                commit_cycle = commit_time
                commits_in_cycle = uop.uop_cost
            last_commit_time = commit_time

            # ---- occupancy bookkeeping -----------------------------------------
            rob.append(commit_time)
            iq.append(start)
            if uop.kind in (UopKind.LOAD, UopKind.SHADOW_LOAD):
                lq.append(completion)
                if len(lq) > machine.lq_entries:
                    lq.popleft()
            if uop.kind in (UopKind.STORE, UopKind.SHADOW_STORE):
                sq.append(commit_time)
                if len(sq) > machine.sq_entries:
                    sq.popleft()

        cycles = max(last_commit_time, 1)
        port_waits = {name: pool.average_wait()
                      for name, pool in self.units.all_pools().items()}
        return TimingResult(
            cycles=cycles,
            total_uops=total_uops,
            injected_uops=injected_uops,
            macro_instructions=macro_instructions,
            memory_accesses=memory_accesses,
            lock_cache_misses=self.hierarchy.lock_cache.misses,
            l1d_misses=self.hierarchy.l1d.misses,
            port_waits=port_waits,
        )
