"""Structural execution resources.

The timing model charges every µop against a finite set of execution ports:
integer ALUs, the branch unit, multiply/divide units, FP units, the two data
cache load ports, the single store port and — when the lock location cache is
present — a dedicated lock port (§4.2: the point of the lock location cache is
"to provide more bandwidth for accessing lock locations").  When the lock
cache is disabled, check µops compete for the data load ports instead, which
is exactly the contention the Figure 9 experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.isa.microops import UopKind
from repro.pipeline.config import FunctionalUnitConfig


class PortPool:
    """A group of identical ports, each busy until some cycle."""

    def __init__(self, name: str, count: int):
        if count <= 0:
            raise ConfigurationError(f"port pool {name} needs at least one port")
        self.name = name
        self._next_free: List[int] = [0] * count
        self.uses = 0
        self.total_wait = 0

    def reserve(self, earliest: int, occupancy: int = 1) -> int:
        """Reserve the soonest-available port at or after ``earliest``.

        Returns the cycle at which the port (and hence the µop) can start.
        """
        index = min(range(len(self._next_free)), key=lambda i: self._next_free[i])
        start = max(earliest, self._next_free[index])
        self._next_free[index] = start + occupancy
        self.uses += 1
        self.total_wait += start - earliest
        return start

    @property
    def count(self) -> int:
        return len(self._next_free)

    def average_wait(self) -> float:
        return self.total_wait / self.uses if self.uses else 0.0


class FunctionalUnits:
    """Maps µop kinds to port pools according to the Watchdog configuration."""

    def __init__(self, config: FunctionalUnitConfig, watchdog: WatchdogConfig):
        self.config = config
        self.watchdog = watchdog
        self.alu = PortPool("alu", config.int_alu)
        self.branch = PortPool("branch", config.branch)
        self.load = PortPool("load", config.load_ports)
        self.store = PortPool("store", config.store_ports)
        self.muldiv = PortPool("muldiv", config.mul_div)
        self.fp = PortPool("fp", config.fp_units)
        self.lock = PortPool("lock", config.lock_ports)

    def pool_for(self, kind: UopKind) -> PortPool:
        """The port pool a µop of ``kind`` issues to."""
        if kind is UopKind.LOAD or kind is UopKind.SHADOW_LOAD or kind is UopKind.GETIDENT:
            return self.load
        if kind is UopKind.STORE or kind is UopKind.SHADOW_STORE or kind is UopKind.SETIDENT:
            return self.store
        if kind is UopKind.CHECK:
            # Check µops read a lock location: dedicated port if the lock
            # location cache exists, otherwise they contend for load ports.
            if self.watchdog.lock_cache_enabled:
                return self.lock
            return self.load
        if kind in (UopKind.LOCK_PUSH, UopKind.LOCK_POP):
            return self.lock if self.watchdog.lock_cache_enabled else self.store
        if kind is UopKind.BRANCH:
            return self.branch
        if kind is UopKind.MUL or kind is UopKind.DIV:
            return self.muldiv
        if kind is UopKind.FP:
            return self.fp
        return self.alu

    def all_pools(self) -> Dict[str, PortPool]:
        return {
            "alu": self.alu,
            "branch": self.branch,
            "load": self.load,
            "store": self.store,
            "muldiv": self.muldiv,
            "fp": self.fp,
            "lock": self.lock,
        }
