"""Out-of-order core timing model.

The paper evaluates Watchdog on a simulated out-of-order x86-64 core whose
parameters mirror Intel's Sandy Bridge (Table 2).  This package provides:

* :mod:`repro.pipeline.config` — the Table 2 machine configuration,
* :mod:`repro.pipeline.resources` — structural resources (issue ports,
  functional units, load/store ports, the lock-location cache port),
* :mod:`repro.pipeline.core` — a trace-driven, dependence- and
  structure-limited timing model that replays the dynamic µop stream
  (baseline µops plus Watchdog-injected µops) and reports cycle counts.
"""

from repro.pipeline.config import MachineConfig, FunctionalUnitConfig
from repro.pipeline.resources import PortPool, FunctionalUnits
from repro.pipeline.core import OutOfOrderCore, TimingResult

__all__ = [
    "MachineConfig",
    "FunctionalUnitConfig",
    "PortPool",
    "FunctionalUnits",
    "OutOfOrderCore",
    "TimingResult",
]
