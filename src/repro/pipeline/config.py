"""Machine configuration (Table 2).

The simulated processor parameters were "selected to be similar to Intel's
Core i7 'Sandy Bridge' processor" (§9.1).  The timing model consumes the
subset of Table 2 that constrains throughput: front-end and issue widths,
window sizes (ROB/IQ/LQ/SQ), functional-unit and memory-port counts, and
execution latencies.  The memory hierarchy parameters live in
:class:`repro.memory.hierarchy.HierarchyConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.isa.microops import UopKind
from repro.memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class FunctionalUnitConfig:
    """Counts of each execution resource (Table 2, Window/Exec rows)."""

    int_alu: int = 6
    branch: int = 1
    load_ports: int = 2
    store_ports: int = 1
    mul_div: int = 2
    fp_units: int = 2
    #: The lock location cache adds dedicated access bandwidth (§4.2); check
    #: µops use it instead of the data-cache load ports when it is enabled.
    lock_ports: int = 2


@dataclass(frozen=True)
class MachineConfig:
    """Table 2 core parameters plus execution latencies."""

    clock_ghz: float = 3.2
    fetch_bytes_per_cycle: int = 16
    fetch_latency: int = 3
    rename_width: int = 6
    rename_latency: int = 2
    dispatch_width: int = 6
    dispatch_latency: int = 1
    issue_width: int = 6
    commit_width: int = 6
    rob_entries: int = 168
    iq_entries: int = 54
    lq_entries: int = 64
    sq_entries: int = 36
    int_physical_registers: int = 160
    fp_physical_registers: int = 144
    branch_misprediction_penalty: int = 14
    functional_units: FunctionalUnitConfig = field(default_factory=FunctionalUnitConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.rob_entries <= 0:
            raise ConfigurationError("issue width and ROB size must be positive")

    #: Fixed execution latencies per µop kind (cache-access kinds get their
    #: latency from the memory hierarchy instead).
    EXEC_LATENCY: Dict[UopKind, int] = field(default_factory=lambda: {
        UopKind.ALU: 1,
        UopKind.MUL: 3,
        UopKind.DIV: 20,
        UopKind.FP: 3,
        UopKind.BRANCH: 1,
        UopKind.BOUNDS_CHECK: 1,
        UopKind.META_SELECT: 1,
        UopKind.SETIDENT: 1,
        UopKind.GETIDENT: 1,
        UopKind.SETBOUNDS: 1,
        UopKind.NOP: 1,
        UopKind.STORE: 1,
        UopKind.SHADOW_STORE: 1,
        UopKind.LOCK_PUSH: 2,
        UopKind.LOCK_POP: 2,
    }, repr=False, compare=False)

    def latency_for(self, kind: UopKind) -> int:
        """Execution latency for non-cache-timed µop kinds."""
        return self.EXEC_LATENCY.get(kind, 1)

    def describe(self) -> str:
        """Human-readable rendering of the configuration (Table 2 style)."""
        fu = self.functional_units
        lines = [
            f"Clock            {self.clock_ghz:.1f} GHz",
            f"Fetch            {self.fetch_bytes_per_cycle} bytes/cycle, "
            f"{self.fetch_latency} cycle latency",
            f"Rename           max {self.rename_width} uops/cycle, "
            f"{self.rename_latency} cycle latency",
            f"Dispatch         max {self.dispatch_width} uops/cycle",
            f"Issue            {self.issue_width}-wide",
            f"ROB/IQ           {self.rob_entries}-entry ROB, {self.iq_entries}-entry IQ",
            f"LQ/SQ            {self.lq_entries}-entry LQ, {self.sq_entries}-entry SQ",
            f"Registers        {self.int_physical_registers} int + "
            f"{self.fp_physical_registers} fp",
            f"Int FUs          {fu.int_alu} ALU, {fu.branch} branch, "
            f"{fu.load_ports} ld, {fu.store_ports} st, {fu.mul_div} mul/div",
            f"FP FUs           {fu.fp_units}",
            f"L1 D$            {self.hierarchy.l1d.size_bytes // 1024}KB, "
            f"{self.hierarchy.l1d.associativity}-way, {self.hierarchy.l1d.hit_latency} cycles",
            f"Private L2$      {self.hierarchy.l2.size_bytes // 1024}KB, "
            f"{self.hierarchy.l2.associativity}-way, {self.hierarchy.l2.hit_latency} cycles",
            f"Shared L3$       {self.hierarchy.l3.size_bytes // (1024 * 1024)}MB, "
            f"{self.hierarchy.l3.associativity}-way, {self.hierarchy.l3.hit_latency} cycles",
            f"Lock Location $  {self.hierarchy.lock_cache.size_bytes // 1024}KB, "
            f"{self.hierarchy.lock_cache.associativity}-way",
            f"Memory           {self.hierarchy.dram_latency} cycle latency",
        ]
        return "\n".join(lines)
