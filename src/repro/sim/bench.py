"""Performance benchmark for the simulation hot path (``repro bench``).

Times the Figure 7 runtime-overhead cell matrix — every benchmark profile
under the unprotected baseline, conservative and ISA-assisted use-after-free
checking, and the idealized-shadow ablation — through :class:`Simulator`
exactly the way the sweep engine executes it, and reports throughput
(cells/sec, µops/sec) with a per-phase breakdown (workload generation,
stream compilation, simulation).

Results are written to ``BENCH_<rev>.json`` so the performance trajectory is
tracked across PRs, and ``--check`` compares the measured µops/sec against a
checked-in baseline, failing on regressions beyond the tolerance — that is
what the CI perf-smoke job runs.
"""

from __future__ import annotations

import datetime
import json
import subprocess
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import WatchdogConfig
from repro.pipeline.config import MachineConfig
from repro.sim.simulator import PIPELINE_COMPILED, PIPELINE_REFERENCE, Simulator
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import benchmark_names

#: The Figure 7 cell matrix: identification policies plus the §9.3 ablation,
#: each measured against the unprotected baseline.
MATRIX_CONFIGS: Tuple[Tuple[str, WatchdogConfig], ...] = (
    ("baseline", WatchdogConfig.disabled()),
    ("conservative", WatchdogConfig.conservative_uaf()),
    ("isa-assisted", WatchdogConfig.isa_assisted_uaf()),
    ("ideal-shadow", WatchdogConfig.idealized_shadow()),
)

#: Benchmarks used by ``--quick`` (mirrors ``ExperimentSettings.quick``).
QUICK_BENCHMARKS = ("gzip", "mcf", "lbm", "gcc")
QUICK_INSTRUCTIONS = 3_000
DEFAULT_INSTRUCTIONS = 8_000
DEFAULT_SEED = 7


def repo_revision() -> str:
    """Short git revision of the working tree, or ``dev`` outside a checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "dev"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "dev"


def run_matrix(benchmarks: Sequence[str], instructions: int, seed: int,
               pipeline: str,
               machine: Optional[MachineConfig] = None) -> Dict[str, object]:
    """Time the cell matrix under one pipeline; returns the stats record."""
    simulator = Simulator(machine=machine, pipeline=pipeline)
    phases = {"generate": 0.0, "compile": 0.0, "simulate": 0.0}
    total_uops = 0
    cells = 0
    started = time.perf_counter()
    for benchmark in benchmarks:
        t0 = time.perf_counter()
        bundle = TraceBundle.generate(benchmark, seed=seed,
                                      instructions=instructions)
        phases["generate"] += time.perf_counter() - t0
        for _, config in MATRIX_CONFIGS:
            if pipeline == PIPELINE_COMPILED:
                t0 = time.perf_counter()
                bundle.compiled_streams(config, machine=simulator.machine)
                phases["compile"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            outcome = simulator.run_bundle(bundle, config)
            phases["simulate"] += time.perf_counter() - t0
            total_uops += outcome.timing.total_uops
            cells += 1
    wall = time.perf_counter() - started
    return {
        "pipeline": pipeline,
        "cells": cells,
        "total_uops": total_uops,
        "wall_seconds": round(wall, 4),
        "cells_per_sec": round(cells / wall, 3),
        "uops_per_sec": round(total_uops / wall, 1),
        "phases_seconds": {name: round(value, 4)
                           for name, value in phases.items()},
    }


def run_bench(benchmarks: Optional[Sequence[str]] = None,
              instructions: Optional[int] = None,
              seed: int = DEFAULT_SEED,
              include_reference: bool = True,
              quick: bool = False) -> Dict[str, object]:
    """Run the benchmark (optionally under both pipelines) and summarize.

    ``instructions=None`` selects the scale implied by ``quick``; an
    explicit count always wins.
    """
    if quick:
        benchmarks = tuple(benchmarks or QUICK_BENCHMARKS)
        if instructions is None:
            instructions = QUICK_INSTRUCTIONS
    else:
        benchmarks = tuple(benchmarks or benchmark_names())
        if instructions is None:
            instructions = DEFAULT_INSTRUCTIONS
    record: Dict[str, object] = {
        "revision": repo_revision(),
        "generated_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "matrix": {
            "name": "fig7-runtime-overhead",
            "benchmarks": list(benchmarks),
            "configurations": [label for label, _ in MATRIX_CONFIGS],
            "instructions": instructions,
            "seed": seed,
        },
        "compiled": run_matrix(benchmarks, instructions, seed,
                               PIPELINE_COMPILED),
    }
    if include_reference:
        record["reference"] = run_matrix(benchmarks, instructions, seed,
                                         PIPELINE_REFERENCE)
        compiled_rate = record["compiled"]["uops_per_sec"]
        reference_rate = record["reference"]["uops_per_sec"]
        if reference_rate:
            record["speedup_vs_reference"] = round(
                compiled_rate / reference_rate, 2)
    return record


def write_record(record: Dict[str, object],
                 output: Optional[str] = None) -> Path:
    """Write the benchmark record to ``BENCH_<rev>.json`` (or ``output``)."""
    path = Path(output) if output else Path(f"BENCH_{record['revision']}.json")
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def check_against_baseline(record: Dict[str, object], baseline_path: str,
                           max_regression: float = 0.30) -> Tuple[bool, str]:
    """Compare measured µops/sec against a checked-in baseline.

    Returns (ok, message).  The baseline file stores the floor-setting
    ``uops_per_sec`` (typically measured on the slowest supported runner
    class); the check fails when throughput drops more than
    ``max_regression`` below it.
    """
    data = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    baseline_rate = float(data["uops_per_sec"])
    measured = float(record["compiled"]["uops_per_sec"])
    floor = baseline_rate * (1.0 - max_regression)
    ok = measured >= floor
    message = (f"measured {measured:,.0f} uops/sec vs baseline "
               f"{baseline_rate:,.0f} (floor {floor:,.0f}, "
               f"tolerance {max_regression:.0%}): "
               f"{'OK' if ok else 'REGRESSION'}")
    return ok, message


def format_summary(record: Dict[str, object]) -> str:
    """Human-readable rendering of a benchmark record."""
    lines = [f"revision {record['revision']}  "
             f"matrix {record['matrix']['name']} "
             f"({len(record['matrix']['benchmarks'])} benchmarks x "
             f"{len(record['matrix']['configurations'])} configs, "
             f"{record['matrix']['instructions']} instructions)"]
    for key in ("compiled", "reference"):
        stats = record.get(key)
        if not stats:
            continue
        phases = stats["phases_seconds"]
        phase_text = ", ".join(f"{name} {value:.2f}s"
                               for name, value in phases.items())
        lines.append(f"{key:>10}: {stats['cells']} cells in "
                     f"{stats['wall_seconds']:.2f}s — "
                     f"{stats['uops_per_sec']:,.0f} uops/sec, "
                     f"{stats['cells_per_sec']:.2f} cells/sec ({phase_text})")
    if "speedup_vs_reference" in record:
        lines.append(f"{'speedup':>10}: {record['speedup_vs_reference']}x "
                     f"compiled vs in-tree reference pipeline")
    return "\n".join(lines)
