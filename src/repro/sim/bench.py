"""Performance benchmark for the simulation hot path (``repro bench``).

Times the Figure 7 runtime-overhead cell matrix — every benchmark profile
under the unprotected baseline, conservative and ISA-assisted use-after-free
checking, and the idealized-shadow ablation — through :class:`Simulator`
exactly the way the sweep engine executes it, and reports throughput
(cells/sec, µops/sec) with a per-phase breakdown (workload generation,
stream compilation, simulation).

Results are written to ``BENCH_<rev>.json`` so the performance trajectory is
tracked across PRs, and ``--check`` compares the measured µops/sec against a
checked-in baseline, failing on regressions beyond the tolerance — that is
what the CI perf-smoke job runs.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.core.config import WatchdogConfig
from repro.pipeline.config import MachineConfig
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.sim.simulator import PIPELINE_COMPILED, PIPELINE_REFERENCE, Simulator
from repro.workloads import _ffcore
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import (
    LONG_HORIZON_INSTRUCTIONS,
    ONE_B_HORIZON_INSTRUCTIONS,
    PAPER_HORIZON_INSTRUCTIONS,
    benchmark_names,
    profile_by_name,
)
from repro.workloads.streaming import SampleStream
from repro.workloads.synthetic import SyntheticWorkload

#: The Figure 7 cell matrix: identification policies plus the §9.3 ablation,
#: each measured against the unprotected baseline.
MATRIX_CONFIGS: Tuple[Tuple[str, WatchdogConfig], ...] = (
    ("baseline", WatchdogConfig.disabled()),
    ("conservative", WatchdogConfig.conservative_uaf()),
    ("isa-assisted", WatchdogConfig.isa_assisted_uaf()),
    ("ideal-shadow", WatchdogConfig.idealized_shadow()),
)

#: Benchmarks used by ``--quick`` (mirrors ``ExperimentSettings.quick``).
QUICK_BENCHMARKS = ("gzip", "mcf", "lbm", "gcc")
QUICK_INSTRUCTIONS = 3_000
DEFAULT_INSTRUCTIONS = 8_000
DEFAULT_SEED = 7

#: The sampled long-profile cell: one long-horizon benchmark timed under the
#: quick §9.1 schedule and the headline ISA-assisted configuration.  This is
#: the sampling fast path's regression gate (perf-smoke runs it via
#: ``repro bench --quick --check``); ``--quick`` shortens the horizon so the
#: CI job stays a smoke test.
SAMPLED_BENCHMARK = "mcf-long"
SAMPLED_INSTRUCTIONS = LONG_HORIZON_INSTRUCTIONS
SAMPLED_QUICK_INSTRUCTIONS = 400_000

#: The skip-window-only cell: how fast the state-evolution core advances a
#: workload functionally (no trace materialized).  This is the quantity that
#: decides whether paper-scale horizons are reachable, gated in CI via
#: ``fast_forward_ops_per_sec`` (recorded pre-split baseline: ~270k ops/sec,
#: when skip windows ran the full per-op generation path).
FAST_FORWARD_BENCHMARK = "mcf-long"
FAST_FORWARD_OPS = 8_000_000
FAST_FORWARD_QUICK_OPS = 2_000_000

#: The multi-core mix cell: the most memory-intensive 4-app bundle replayed
#: through :class:`~repro.sim.multicore.MultiCoreSimulator` under the
#: unprotected baseline and the headline ISA-assisted configuration.  Gated
#: in CI via ``mix_uops_per_sec`` — the epoch-interleaved shared-hierarchy
#: replay is a new hot path with its own regression budget.
MIX_BENCHMARK = "mix1"
MIX_INSTRUCTIONS = DEFAULT_INSTRUCTIONS
MIX_QUICK_INSTRUCTIONS = QUICK_INSTRUCTIONS
MIX_CONFIGS: Tuple[Tuple[str, WatchdogConfig], ...] = (
    ("baseline", WatchdogConfig.disabled()),
    ("isa-assisted", WatchdogConfig.isa_assisted_uaf()),
)

#: The paper-scale smoke cell: one ``*-paper`` benchmark over the full 100M
#: instruction horizon under a §9.1 schedule that keeps the timed portion
#: smoke-test sized (0.2% measured, 4 periods).  Its completion inside the
#: CI perf-smoke job is what demonstrates the paper's measurement regime is
#: actually reachable end to end.
PAPER_BENCHMARK = "mcf-paper"
PAPER_INSTRUCTIONS = PAPER_HORIZON_INSTRUCTIONS
PAPER_SMOKE_SAMPLING = SamplingConfig(fast_forward=24_900_000,
                                      warmup=50_000, sample=50_000)

#: The billion-instruction streaming smoke cell: one ``*-1b`` benchmark over
#: the full 1B horizon through :meth:`Simulator.run_streaming`, under a §9.1
#: schedule that keeps the timed portion smoke-test sized (0.1% measured,
#: 10 periods).  Gated two ways in CI: ``one_b_ops_per_sec`` floors the
#: end-to-end rate (generation-dominated — it collapses if the native
#: fast-forward kernel stops carrying the skip windows), and
#: ``one_b_peak_rss_mb`` *ceilings* the process peak RSS — the streaming
#: guarantee that memory stays one-sample-flat regardless of horizon (a
#: retained 1B bundle would blow through it by gigabytes).
ONE_B_BENCHMARK = "mcf-1b"
ONE_B_INSTRUCTIONS = ONE_B_HORIZON_INSTRUCTIONS
ONE_B_SMOKE_SAMPLING = SamplingConfig(fast_forward=99_800_000,
                                      warmup=100_000, sample=100_000)


def repo_revision() -> str:
    """Short git revision of the working tree, or ``dev`` outside a checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "dev"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "dev"


def run_matrix(benchmarks: Sequence[str], instructions: int, seed: int,
               pipeline: str,
               machine: Optional[MachineConfig] = None,
               sampling: Optional[SamplingConfig] = None,
               timecore: Optional[bool] = None) -> Dict[str, object]:
    """Time the cell matrix under one pipeline; returns the stats record.

    The compile phase covers everything between trace tokens and the
    kernel-ready stream, *including* stream packing: the compiler emits the
    kernel's flat wire format directly, and any residual tuple-only stream
    is packed (or marked unpackable) here rather than lazily inside the
    first ``simulate_compiled`` call — so ``phases_seconds`` bills packing
    to compile, not simulate.
    """
    from repro.native import _timecore

    simulator = Simulator(machine=machine, pipeline=pipeline,
                          timecore=timecore)
    lib = None if timecore is False else _timecore.load()
    phases = {"generate": 0.0, "compile": 0.0, "simulate": 0.0}
    total_uops = 0
    cells = 0
    sampled_bundles = 0
    started = time.perf_counter()
    for benchmark in benchmarks:
        t0 = time.perf_counter()
        bundle = TraceBundle.generate(benchmark, seed=seed,
                                      instructions=instructions,
                                      sampling=sampling)
        phases["generate"] += time.perf_counter() - t0
        if bundle.samples:
            sampled_bundles += 1
        for _, config in MATRIX_CONFIGS:
            if pipeline == PIPELINE_COMPILED:
                t0 = time.perf_counter()
                if bundle.samples:
                    for index in range(len(bundle.samples)):
                        built = bundle.compiled_sample_streams(
                            index, config, machine=simulator.machine)
                        _timecore.pack_stream(built.measured, lib)
                else:
                    built = bundle.compiled_streams(
                        config, machine=simulator.machine)
                    _timecore.pack_stream(built.measured, lib)
                phases["compile"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            outcome = simulator.run_bundle(bundle, config)
            phases["simulate"] += time.perf_counter() - t0
            total_uops += outcome.timing.total_uops
            cells += 1
    wall = time.perf_counter() - started
    return {
        "pipeline": pipeline,
        "cells": cells,
        #: How many of the benchmarks' bundles genuinely sampled; a requested
        #: schedule that measures nothing at this scale normalizes to
        #: unsampled, and the record must not claim otherwise.
        "sampled_bundles": sampled_bundles,
        "total_uops": total_uops,
        "wall_seconds": round(wall, 4),
        "cells_per_sec": round(cells / wall, 3),
        "uops_per_sec": round(total_uops / wall, 1),
        "phases_seconds": {name: round(value, 4)
                           for name, value in phases.items()},
    }


def run_sampled_cell(benchmark: str = SAMPLED_BENCHMARK,
                     instructions: int = SAMPLED_INSTRUCTIONS,
                     seed: int = DEFAULT_SEED,
                     sampling: Optional[SamplingConfig] = None,
                     machine: Optional[MachineConfig] = None) -> Dict[str, object]:
    """Time one sampled long-profile cell end to end (the sampling fast path).

    Generation walks the full horizon (fast-forward is functional), so the
    throughput figure is timed µops per second of *simulation* wall time —
    the quantity the sampled fast path controls — with generation reported
    separately.
    """
    sampling = sampling or SamplingConfig.quick()
    # Pinned to the compiled pipeline (like run_matrix's explicit pipeline
    # arg): the gate must measure the path its baseline floor describes,
    # whatever REPRO_PIPELINE says.
    simulator = Simulator(machine=machine, pipeline=PIPELINE_COMPILED)
    t0 = time.perf_counter()
    bundle = TraceBundle.generate(benchmark, seed=seed,
                                  instructions=instructions, sampling=sampling)
    generate_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    outcome = simulator.run_bundle(bundle, WatchdogConfig.isa_assisted_uaf())
    simulate_wall = time.perf_counter() - t0
    timing = outcome.timing
    return {
        "benchmark": benchmark,
        "instructions": instructions,
        "sampling": dataclasses.asdict(sampling),
        "samples": len(bundle.samples),
        "measured_instructions": bundle.measured_instructions,
        "timed_uops": timing.total_uops,
        "generate_seconds": round(generate_wall, 4),
        "simulate_seconds": round(simulate_wall, 4),
        "uops_per_sec": round(timing.total_uops / simulate_wall, 1)
        if simulate_wall else 0.0,
    }


def run_fast_forward_cell(benchmark: str = FAST_FORWARD_BENCHMARK,
                          ops: int = FAST_FORWARD_OPS,
                          seed: int = DEFAULT_SEED) -> Dict[str, object]:
    """Time a pure skip window: functional fast-forward, nothing emitted.

    Workload construction (the initial working-set population) is excluded —
    the cell measures exactly what a §9.1 skip window costs.  ``accelerated``
    records whether the native kernel was active, so a regression caused by
    a silently failed kernel build is distinguishable from a real slowdown.
    """
    workload = SyntheticWorkload(profile_by_name(benchmark), seed=seed)
    t0 = time.perf_counter()
    workload.fast_forward(ops)
    wall = time.perf_counter() - t0
    return {
        "benchmark": benchmark,
        "ops": ops,
        "wall_seconds": round(wall, 4),
        "fast_forward_ops_per_sec": round(ops / wall, 1) if wall else 0.0,
        "accelerated": _ffcore.load() is not None,
    }


def run_paper_cell(benchmark: str = PAPER_BENCHMARK,
                   instructions: int = PAPER_INSTRUCTIONS,
                   seed: int = DEFAULT_SEED,
                   sampling: Optional[SamplingConfig] = None,
                   machine: Optional[MachineConfig] = None) -> Dict[str, object]:
    """Run one paper-scale (100M-instruction) sampled cell end to end.

    Identical in shape to :func:`run_sampled_cell` but at the paper horizon:
    generation walks all 100M instructions (fast-forward covers 99.8% of
    them), and only the schedule's measure windows are timed.
    """
    return run_sampled_cell(benchmark=benchmark, instructions=instructions,
                            seed=seed,
                            sampling=sampling or PAPER_SMOKE_SAMPLING,
                            machine=machine)


def peak_rss_mb() -> Optional[float]:
    """This process's peak resident set size in MB, or ``None`` if unknown.

    Best-effort via ``getrusage``: Linux reports ``ru_maxrss`` in KB, macOS
    in bytes, and platforms without the ``resource`` module (Windows) report
    nothing.  The figure is the process-lifetime high-water mark — it only
    ever grows — so per-cell stamps record the high water *as of that cell
    finishing*, and a ceiling on a late cell bounds the whole run.
    """
    try:
        import resource
    except ImportError:
        return None
    try:
        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (OSError, ValueError):
        return None
    if not usage:
        return None
    divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
    return round(usage / divisor, 1)


def run_one_b_cell(benchmark: str = ONE_B_BENCHMARK,
                   instructions: int = ONE_B_INSTRUCTIONS,
                   seed: int = DEFAULT_SEED,
                   sampling: Optional[SamplingConfig] = None,
                   machine: Optional[MachineConfig] = None) -> Dict[str, object]:
    """Run one billion-instruction streaming cell end to end.

    Streaming is explicit (:meth:`Simulator.run_streaming`, regardless of
    the ``REPRO_STREAMING`` override): the cell exists to demonstrate — and
    regression-gate — that the 1B regime completes in one-sample-flat
    memory.  The headline figure is *end-to-end* horizon instructions per
    wall second, because at 99.8% skip the run is generation-dominated by
    construction: that is the quantity that collapses (by ~15x) if the
    native fast-forward kernel silently stops carrying the skip windows.
    ``peak_rss_mb`` is stamped by :func:`run_bench` when the cell finishes
    and is ceiling-gated via ``one_b_peak_rss_mb``.
    """
    sampling = sampling or ONE_B_SMOKE_SAMPLING
    simulator = Simulator(machine=machine, pipeline=PIPELINE_COMPILED)
    stream = SampleStream(benchmark, seed, instructions, sampling)
    t0 = time.perf_counter()
    outcome = simulator.run_streaming(benchmark,
                                      WatchdogConfig.isa_assisted_uaf(),
                                      instructions=instructions,
                                      sampling=sampling, seed=seed)
    wall = time.perf_counter() - t0
    timing = outcome.timing
    return {
        "benchmark": benchmark,
        "instructions": instructions,
        "sampling": dataclasses.asdict(sampling),
        "samples": len(stream),
        "measured_instructions":
            SamplingSchedule(sampling).measured_count(instructions),
        "streaming": True,
        "timed_uops": timing.total_uops,
        "wall_seconds": round(wall, 4),
        "one_b_ops_per_sec": round(instructions / wall, 1) if wall else 0.0,
        "timed_uops_per_sec": round(timing.total_uops / wall, 1)
        if wall else 0.0,
    }


def run_timecore_cell(benchmarks: Optional[Sequence[str]] = None,
                      instructions: Optional[int] = None,
                      seed: int = DEFAULT_SEED) -> Dict[str, object]:
    """Time the fig7 matrix with the native timing core pinned on.

    Two figures are gated in CI against the ``benchmarks/perf_baseline.json``
    floors: ``kernel_uops_per_sec`` (µops per second of *simulate-phase*
    wall time — the quantity the C kernel controls) and
    ``compile_uops_per_sec`` (µops per second of *compile-phase* wall time —
    the flat stream compiler, which packs the kernel's wire format
    directly).  ``end_to_end_uops_per_sec`` (compile + simulate) is recorded
    for trajectory comparisons.  Deliberately not scaled down by
    ``--quick``: the floors describe the full-matrix rate, and at smoke
    scale per-cell setup noise would swamp the kernel.  ``accelerated``
    records whether the kernel actually loaded, so a regression caused by a
    silently failed build is distinguishable from a real slowdown.
    """
    from repro.native import _timecore

    benchmarks = tuple(benchmarks or benchmark_names())
    if instructions is None:
        instructions = DEFAULT_INSTRUCTIONS
    stats = run_matrix(benchmarks, instructions, seed, PIPELINE_COMPILED,
                       timecore=True)
    simulate = stats["phases_seconds"]["simulate"]
    compile_s = stats["phases_seconds"]["compile"]
    return {
        "benchmarks": list(benchmarks),
        "instructions": instructions,
        "cells": stats["cells"],
        "total_uops": stats["total_uops"],
        "wall_seconds": stats["wall_seconds"],
        "simulate_seconds": simulate,
        "compile_seconds": compile_s,
        "matrix_uops_per_sec": stats["uops_per_sec"],
        "kernel_uops_per_sec": round(stats["total_uops"] / simulate, 1)
        if simulate else 0.0,
        "compile_uops_per_sec": round(stats["total_uops"] / compile_s, 1)
        if compile_s else 0.0,
        "end_to_end_uops_per_sec": round(
            stats["total_uops"] / (compile_s + simulate), 1)
        if compile_s + simulate else 0.0,
        "accelerated": _timecore.load() is not None,
    }


def run_mix_cell(mix_token: str = MIX_BENCHMARK,
                 instructions: int = MIX_INSTRUCTIONS,
                 seed: int = DEFAULT_SEED,
                 machine: Optional[MachineConfig] = None) -> Dict[str, object]:
    """Time one 4-core mix cell pair (baseline + ISA-assisted Watchdog).

    Member bundles are generated under the same per-member derived seeds the
    sweep engine uses, so the cell exercises exactly the ``repro run``
    multi-core path: sequential per-core warm-up, then the epoch-interleaved
    replay against the shared L2/L3/lock-cache backend.  The gated figure is
    µops per second of *simulate* wall time (generation reported
    separately), summed over both configurations and all cores.
    """
    from repro.sim.multicore import MultiCoreSimulator
    from repro.workloads.profiles import mix_member_seed, parse_mix_benchmark

    mix, members = parse_mix_benchmark(mix_token)
    t0 = time.perf_counter()
    bundles = [TraceBundle.generate(profile_name,
                                    seed=mix_member_seed(mix.name,
                                                         member_index, seed),
                                    instructions=instructions)
               for member_index, profile_name in members]
    generate_wall = time.perf_counter() - t0
    simulator = MultiCoreSimulator(machine=machine, pipeline=PIPELINE_COMPILED)
    total_uops = 0
    t0 = time.perf_counter()
    for _, config in MIX_CONFIGS:
        outcome = simulator.run_mix(mix_token, bundles, config)
        total_uops += outcome.timing.total_uops
    simulate_wall = time.perf_counter() - t0
    return {
        "mix": mix_token,
        "members": [profile_name for _, profile_name in members],
        "cores": len(members),
        "instructions": instructions,
        "configurations": [label for label, _ in MIX_CONFIGS],
        "total_uops": total_uops,
        "generate_seconds": round(generate_wall, 4),
        "simulate_seconds": round(simulate_wall, 4),
        "mix_uops_per_sec": round(total_uops / simulate_wall, 1)
        if simulate_wall else 0.0,
    }


def run_suite_cell(seed: int = DEFAULT_SEED, quick: bool = True) -> Dict[str, object]:
    """Time the full registered experiment suite through the generic runner.

    This is the registry fast path's regression gate: every grid experiment's
    spec merged into one deduplicated batch (plus the standalone tables and
    the Juliet suite), serial, cold, no persistent cache — exactly what
    ``repro run --all`` costs before any caching helps.  Throughput is
    *unique simulated cells* per wall second; a regression here means either
    the merge stopped deduplicating (more cells simulated) or the per-cell
    hot path slowed down.
    """
    from repro.experiments import REGISTRY, run_experiments
    from repro.experiments.common import ExperimentSettings
    from repro.sim.engine import SweepEngine

    settings = ExperimentSettings.quick() if quick else ExperimentSettings()
    if seed != settings.seed:
        settings = dataclasses.replace(settings, seed=seed)
    engine = SweepEngine()
    t0 = time.perf_counter()
    suite = run_experiments(list(REGISTRY), settings=settings, engine=engine)
    wall = time.perf_counter() - t0
    return {
        "experiments": len(suite.reports),
        "benchmarks": list(settings.benchmarks),
        "instructions": settings.instructions,
        "seed": settings.seed,
        "grid_cells_total": suite.engine["grid_cells_total"],
        "simulated_cells": engine.simulated_cells,
        "simulation_batches": engine.simulation_batches,
        "checks_ok": suite.ok,
        "wall_seconds": round(wall, 4),
        "suite_cells_per_sec": round(engine.simulated_cells / wall, 3)
        if wall else 0.0,
    }


def run_bench(benchmarks: Optional[Sequence[str]] = None,
              instructions: Optional[int] = None,
              seed: int = DEFAULT_SEED,
              include_reference: bool = True,
              quick: bool = False,
              sampling: Optional[SamplingConfig] = None,
              include_sampled: bool = True,
              include_fast_forward: bool = True,
              include_paper: bool = True,
              include_suite: bool = True,
              include_timecore: bool = True,
              include_mix: bool = True,
              include_one_b: bool = True) -> Dict[str, object]:
    """Run the benchmark (optionally under both pipelines) and summarize.

    ``instructions=None`` selects the scale implied by ``quick``; an
    explicit count always wins.  ``sampling`` applies a §9.1 schedule to the
    whole matrix; independently, ``include_sampled`` appends the sampled
    long-profile cell (:func:`run_sampled_cell`) that regression-gates the
    sampling fast path, ``include_fast_forward`` the skip-window-only cell
    (:func:`run_fast_forward_cell`), ``include_paper`` the 100M
    paper-scale smoke cell (:func:`run_paper_cell` — deliberately not scaled
    down by ``quick``: completing the full paper horizon is the point), and
    ``include_suite`` the merged registry suite cell
    (:func:`run_suite_cell`, always at quick scale), and
    ``include_timecore`` the native-timing-core matrix cell
    (:func:`run_timecore_cell` — like the paper cell, never scaled down by
    ``quick``: the ``kernel_uops_per_sec`` floor describes the full matrix),
    and ``include_mix`` the 4-core mix cell (:func:`run_mix_cell`, scaled
    down by ``quick``) gating the shared-hierarchy interleaved replay, and
    ``include_one_b`` the billion-instruction streaming cell
    (:func:`run_one_b_cell` — never scaled down by ``quick``: completing the
    full 1B horizon in flat memory is the point; its schedule is already
    smoke-tier).

    Every cell record is stamped with ``peak_rss_mb`` — the process peak
    RSS as of that cell finishing (best-effort; absent where ``getrusage``
    is unavailable) — so ``BENCH_<rev>.json`` tracks the memory trajectory
    alongside throughput.
    """
    if quick:
        benchmarks = tuple(benchmarks or QUICK_BENCHMARKS)
        if instructions is None:
            instructions = QUICK_INSTRUCTIONS
    else:
        benchmarks = tuple(benchmarks or benchmark_names())
        if instructions is None:
            instructions = DEFAULT_INSTRUCTIONS
    def _stamped(cell: Dict[str, object]) -> Dict[str, object]:
        rss = peak_rss_mb()
        if rss is not None:
            cell["peak_rss_mb"] = rss
        return cell

    record: Dict[str, object] = {
        "revision": repo_revision(),
        "generated_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "matrix": {
            "name": "fig7-runtime-overhead",
            "benchmarks": list(benchmarks),
            "configurations": [label for label, _ in MATRIX_CONFIGS],
            "instructions": instructions,
            "seed": seed,
            "sampling": None if sampling is None
            else dataclasses.asdict(sampling),
        },
        "compiled": _stamped(run_matrix(benchmarks, instructions, seed,
                                        PIPELINE_COMPILED, sampling=sampling)),
    }
    if include_reference:
        record["reference"] = _stamped(
            run_matrix(benchmarks, instructions, seed,
                       PIPELINE_REFERENCE, sampling=sampling))
        compiled_rate = record["compiled"]["uops_per_sec"]
        reference_rate = record["reference"]["uops_per_sec"]
        if reference_rate:
            record["speedup_vs_reference"] = round(
                compiled_rate / reference_rate, 2)
    if include_sampled:
        record["sampled"] = _stamped(run_sampled_cell(
            instructions=SAMPLED_QUICK_INSTRUCTIONS if quick
            else SAMPLED_INSTRUCTIONS, seed=seed))
    if include_fast_forward:
        record["fast_forward"] = _stamped(run_fast_forward_cell(
            ops=FAST_FORWARD_QUICK_OPS if quick else FAST_FORWARD_OPS,
            seed=seed))
    if include_paper:
        record["paper_sampled"] = _stamped(run_paper_cell(seed=seed))
    if include_suite:
        record["suite"] = _stamped(run_suite_cell(seed=seed))
    if include_timecore:
        record["timecore"] = _stamped(run_timecore_cell(seed=seed))
    if include_mix:
        record["mix"] = _stamped(run_mix_cell(
            instructions=MIX_QUICK_INSTRUCTIONS if quick
            else MIX_INSTRUCTIONS, seed=seed))
    if include_one_b:
        record["one_b"] = _stamped(run_one_b_cell(seed=seed))
    record["kernels"] = kernel_statuses()
    record["degradations"] = [event.to_dict()
                              for event in kernel_degradation_events()]
    return record


def kernel_statuses() -> Dict[str, Dict[str, object]]:
    """Both native kernels' load statuses (probing them if not yet decided).

    Recorded on every bench record so a perf number can always be traced to
    the code path that produced it: a silently-failed kernel build shows up
    here (and as a degradation event) instead of masquerading as a
    regression of the hot path itself.
    """
    from repro.native import _timecore, build

    _timecore.load()
    _ffcore.load()
    return {name: status.to_dict()
            for name, status in sorted(build.statuses().items())}


def kernel_degradation_events():
    """Unexpected kernel unavailability, as structured degradation events."""
    from repro.experiments.common import kernel_degradation_events as probe

    return probe()


def write_record(record: Dict[str, object],
                 output: Optional[str] = None) -> Path:
    """Write the benchmark record to ``BENCH_<rev>.json`` (or ``output``)."""
    path = Path(output) if output else Path(f"BENCH_{record['revision']}.json")
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def check_against_baseline(record: Dict[str, object], baseline_path: str,
                           max_regression: float = 0.30) -> Tuple[bool, str]:
    """Compare measured µops/sec against a checked-in baseline.

    Returns (ok, message).  The baseline file stores the floor-setting
    ``uops_per_sec`` (typically measured on the slowest supported runner
    class); the check fails when throughput drops more than
    ``max_regression`` below it.  ``sampled_uops_per_sec``,
    ``fast_forward_ops_per_sec``, ``paper_sampled_uops_per_sec``,
    ``suite_cells_per_sec``, ``kernel_uops_per_sec``,
    ``compile_uops_per_sec``, ``mix_uops_per_sec`` and
    ``one_b_ops_per_sec`` baseline entries additionally gate the sampled
    long-profile cell, the skip-window-only fast-forward cell, the 100M
    paper-scale cell, the merged registry suite cell, the native-timecore
    matrix cell (simulate-phase and compile-phase throughput respectively),
    the 4-core mix cell and the billion-instruction streaming cell the same
    way.

    ``one_b_peak_rss_mb`` is a **ceiling**, not a floor: the check fails
    when the 1B streaming cell's recorded peak RSS *exceeds* it.  No
    tolerance is applied — the ceiling already carries its own headroom over
    the one-sample working figure, and the failure mode it guards against
    (samples being retained across the horizon) overshoots by gigabytes,
    not percent.  A record without the measurement (platforms where
    ``getrusage`` is unavailable) is reported as skipped.
    """
    data = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    checks = [("matrix", float(data["uops_per_sec"]),
               float(record["compiled"]["uops_per_sec"]), "uops/sec")]
    skipped = []
    #: (label, cell name, baseline key, record key within the cell, unit).
    optional_gates = (
        ("sampled", "sampled", "sampled_uops_per_sec", "uops_per_sec",
         "uops/sec"),
        ("fast_forward", "fast_forward", "fast_forward_ops_per_sec",
         "fast_forward_ops_per_sec", "ops/sec"),
        ("paper_sampled", "paper_sampled", "paper_sampled_uops_per_sec",
         "uops_per_sec", "uops/sec"),
        ("suite", "suite", "suite_cells_per_sec", "suite_cells_per_sec",
         "cells/sec"),
        ("timecore", "timecore", "kernel_uops_per_sec",
         "kernel_uops_per_sec", "uops/sec"),
        ("compile", "timecore", "compile_uops_per_sec",
         "compile_uops_per_sec", "uops/sec"),
        ("mix", "mix", "mix_uops_per_sec", "mix_uops_per_sec", "uops/sec"),
        ("one_b", "one_b", "one_b_ops_per_sec", "one_b_ops_per_sec",
         "ops/sec"),
    )
    for label, name, baseline_key, record_key, unit in optional_gates:
        floor = data.get(baseline_key)
        if floor is None:
            continue
        cell = record.get(name)
        if cell is not None:
            checks.append((label, float(floor), float(cell[record_key]), unit))
        else:
            # The baseline declares a floor but the record skipped the cell
            # (--no-sampled and friends): say so rather than silently pass.
            skipped.append(f"{label}: SKIPPED (no {name} cell in record)")
    #: (label, cell name, baseline key, record key, unit) — measured values
    #: must stay *at or below* the baseline; no tolerance is applied.
    ceiling_gates = (
        ("one_b_rss", "one_b", "one_b_peak_rss_mb", "peak_rss_mb", "MB"),
    )
    ceiling_checks = []
    for label, name, baseline_key, record_key, unit in ceiling_gates:
        ceiling = data.get(baseline_key)
        if ceiling is None:
            continue
        cell = record.get(name)
        if cell is None:
            skipped.append(f"{label}: SKIPPED (no {name} cell in record)")
        elif cell.get(record_key) is None:
            skipped.append(f"{label}: SKIPPED ({record_key} unavailable "
                           f"on this platform)")
        else:
            ceiling_checks.append((label, float(ceiling),
                                   float(cell[record_key]), unit))
    ok = True
    parts = []
    for name, baseline_rate, measured, unit in checks:
        floor = baseline_rate * (1.0 - max_regression)
        passed = measured >= floor
        ok = ok and passed
        parts.append(f"{name}: measured {measured:,.0f} {unit} vs baseline "
                     f"{baseline_rate:,.0f} (floor {floor:,.0f}, "
                     f"tolerance {max_regression:.0%}): "
                     f"{'OK' if passed else 'REGRESSION'}")
    for name, ceiling, measured, unit in ceiling_checks:
        passed = measured <= ceiling
        ok = ok and passed
        parts.append(f"{name}: measured {measured:,.0f} {unit} vs ceiling "
                     f"{ceiling:,.0f} (no tolerance): "
                     f"{'OK' if passed else 'EXCEEDED'}")
    return ok, "; ".join(parts + skipped)


def format_summary(record: Dict[str, object]) -> str:
    """Human-readable rendering of a benchmark record."""
    lines = [f"revision {record['revision']}  "
             f"matrix {record['matrix']['name']} "
             f"({len(record['matrix']['benchmarks'])} benchmarks x "
             f"{len(record['matrix']['configurations'])} configs, "
             f"{record['matrix']['instructions']} instructions)"]
    for key in ("compiled", "reference"):
        stats = record.get(key)
        if not stats:
            continue
        phases = stats["phases_seconds"]
        phase_text = ", ".join(f"{name} {value:.2f}s"
                               for name, value in phases.items())
        lines.append(f"{key:>10}: {stats['cells']} cells in "
                     f"{stats['wall_seconds']:.2f}s — "
                     f"{stats['uops_per_sec']:,.0f} uops/sec, "
                     f"{stats['cells_per_sec']:.2f} cells/sec ({phase_text})")
    if "speedup_vs_reference" in record:
        lines.append(f"{'speedup':>10}: {record['speedup_vs_reference']}x "
                     f"compiled vs in-tree reference pipeline")
    for key in ("sampled", "paper_sampled"):
        sampled = record.get(key)
        if sampled:
            lines.append(
                f"{key:>13}: {sampled['benchmark']} "
                f"{sampled['instructions']:,} instructions, "
                f"{sampled['samples']} samples "
                f"({sampled['measured_instructions']:,} measured) — "
                f"{sampled['uops_per_sec']:,.0f} uops/sec "
                f"(generate {sampled['generate_seconds']:.2f}s, "
                f"simulate {sampled['simulate_seconds']:.2f}s)")
    one_b = record.get("one_b")
    if one_b:
        rss = one_b.get("peak_rss_mb")
        rss_text = f", peak RSS {rss:,.0f} MB" if rss is not None else ""
        lines.append(
            f"{'one-b':>13}: {one_b['benchmark']} "
            f"{one_b['instructions']:,} instructions streamed, "
            f"{one_b['samples']} samples "
            f"({one_b['measured_instructions']:,} measured) in "
            f"{one_b['wall_seconds']:.2f}s — "
            f"{one_b['one_b_ops_per_sec']:,.0f} ops/sec end to end"
            f"{rss_text}")
    fast_forward = record.get("fast_forward")
    if fast_forward:
        lines.append(
            f"{'fast-forward':>13}: {fast_forward['benchmark']} "
            f"{fast_forward['ops']:,} skipped ops in "
            f"{fast_forward['wall_seconds']:.2f}s — "
            f"{fast_forward['fast_forward_ops_per_sec']:,.0f} ops/sec "
            f"({'native kernel' if fast_forward['accelerated'] else 'pure python'})")
    timecore = record.get("timecore")
    if timecore:
        compile_rate = timecore.get("compile_uops_per_sec")
        compile_text = (f", {compile_rate:,.0f} uops/sec in compile"
                        if compile_rate else "")
        lines.append(
            f"{'timecore':>13}: {timecore['cells']} cells, "
            f"{timecore['total_uops']:,} uops "
            f"(simulate {timecore['simulate_seconds']:.2f}s of "
            f"{timecore['wall_seconds']:.2f}s) — "
            f"{timecore['kernel_uops_per_sec']:,.0f} uops/sec in kernel"
            f"{compile_text} "
            f"({'native kernel' if timecore['accelerated'] else 'pure python'})")
    mix = record.get("mix")
    if mix:
        lines.append(
            f"{'mix':>13}: {mix['mix']} ({mix['cores']} cores: "
            f"{'+'.join(mix['members'])}), "
            f"{mix['instructions']} instructions/core, "
            f"{mix['total_uops']:,} uops over "
            f"{len(mix['configurations'])} configs — "
            f"{mix['mix_uops_per_sec']:,.0f} uops/sec "
            f"(generate {mix['generate_seconds']:.2f}s, "
            f"simulate {mix['simulate_seconds']:.2f}s)")
    suite = record.get("suite")
    if suite:
        lines.append(
            f"{'suite':>13}: {suite['experiments']} experiments, "
            f"{suite['simulated_cells']} unique cells "
            f"(of {suite['grid_cells_total']} grid cells) in "
            f"{suite['simulation_batches']} batch(es), "
            f"{suite['wall_seconds']:.2f}s — "
            f"{suite['suite_cells_per_sec']:.2f} cells/sec")
    kernels = record.get("kernels")
    if kernels:
        parts = []
        for name, status in kernels.items():
            if status.get("available"):
                state = "native"
            elif status.get("disabled"):
                state = "disabled"
            else:
                state = f"UNAVAILABLE ({status.get('reason', 'unknown')})"
            parts.append(f"{name}={state}")
        lines.append(f"{'kernels':>13}: " + ", ".join(parts))
    for event in record.get("degradations") or ():
        lines.append(f"{'degraded':>13}: {event.get('kind')}: "
                     f"{event.get('subject')} — {event.get('detail')}")
    return "\n".join(lines)
