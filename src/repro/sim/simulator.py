"""Top-level simulator.

Glues the pieces together for the two kinds of runs the evaluation needs:

* **workload timing runs** (Figures 5, 7, 8, 9, 10, 11): a synthetic
  SPEC-like workload generates a dynamic trace; the trace expander injects
  Watchdog µops and annotates addresses; the out-of-order core replays the
  timed µop stream against the Table 2 memory hierarchy and reports cycles,
* **program detection runs** (§9.2, the examples, the attack scenarios): a
  program built with the builder executes on the functional machine under a
  Watchdog configuration, and the result records whether a violation was
  detected (optionally also recording a dynamic trace so the same run can be
  timed).
"""

from __future__ import annotations

import os
import dataclasses
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.config import WatchdogConfig
from repro.core.pointer_id import PointerIdStats
from repro.core.uop_injection import InjectionStats
from repro.memory.pages import PageAccountant
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import OutOfOrderCore, TimingResult
from repro.program.ir import Program
from repro.program.machine import ExecutionResult, Machine
from repro.sim.sampling import SamplingConfig
from repro.sim.trace import DynamicOp, TraceExpander
from repro.workloads.bundle import TraceBundle, WorkingSet, \
    default_warmup_instructions
from repro.workloads.profiles import BenchmarkProfile, profile_by_name
from repro.workloads.streaming import SampleStream, use_streaming
from repro.workloads.synthetic import SyntheticWorkload


@dataclass
class SimulationOutcome:
    """Everything one simulation run produced."""

    benchmark: str
    configuration: str
    timing: Optional[TimingResult] = None
    injection: Optional[InjectionStats] = None
    pointer_stats: Optional[PointerIdStats] = None
    pages: Optional[PageAccountant] = None
    detection: Optional[ExecutionResult] = None
    #: Per-core :class:`~repro.sim.results.CoreResult` blocks of a
    #: multi-core mix run (empty for single-core runs).
    cores: tuple = ()

    @property
    def cycles(self) -> int:
        if self.timing is None:
            return 0
        return self.timing.cycles

    @property
    def detected(self) -> bool:
        return bool(self.detection and self.detection.detected)


#: Pipeline implementations selectable per Simulator (or via the
#: ``REPRO_PIPELINE`` environment variable, which worker processes inherit).
PIPELINE_COMPILED = "compiled"
PIPELINE_REFERENCE = "reference"


def resolve_pipeline(pipeline: Optional[str] = None) -> str:
    """The effective pipeline selection for ``pipeline`` (``None`` = env/default).

    Shared by :class:`Simulator` and the result cache's fingerprinting, so a
    cached cell is keyed by exactly the pipeline that produced it.
    """
    if pipeline is None:
        pipeline = os.environ.get("REPRO_PIPELINE", PIPELINE_COMPILED)
    if pipeline not in (PIPELINE_COMPILED, PIPELINE_REFERENCE):
        raise ValueError(f"unknown pipeline {pipeline!r} "
                         f"(expected 'compiled' or 'reference')")
    return pipeline


def aggregate_outcomes(outcomes: Sequence[SimulationOutcome]) -> SimulationOutcome:
    """Fold per-sample outcomes into one, §9.1-style.

    Cycle and µop counters sum — the aggregate IPC is total µops over total
    cycles, i.e. the cycle-weighted mean of the per-sample IPCs, exactly as
    if the measure windows had executed back to back — injection and pointer
    classification counters sum, and the page accountant unions the touched
    word sets.  Per-port wait averages are weighted by each sample's cycles.
    """
    first = outcomes[0]
    timings = [outcome.timing for outcome in outcomes]
    total_cycles = sum(timing.cycles for timing in timings)
    port_waits = {}
    for timing in timings:
        for port, wait in timing.port_waits.items():
            port_waits[port] = port_waits.get(port, 0.0) \
                + wait * (timing.cycles / total_cycles if total_cycles else 0.0)
    timing = TimingResult(
        cycles=total_cycles,
        total_uops=sum(t.total_uops for t in timings),
        injected_uops=sum(t.injected_uops for t in timings),
        macro_instructions=sum(t.macro_instructions for t in timings),
        memory_accesses=sum(t.memory_accesses for t in timings),
        lock_cache_misses=sum(t.lock_cache_misses for t in timings),
        l1d_misses=sum(t.l1d_misses for t in timings),
        port_waits=port_waits,
    )
    injection = InjectionStats(**{
        field.name: sum(getattr(outcome.injection, field.name)
                        for outcome in outcomes)
        for field in dataclasses.fields(InjectionStats)})
    pointer = PointerIdStats(
        memory_ops=sum(o.pointer_stats.memory_ops for o in outcomes),
        pointer_ops=sum(o.pointer_stats.pointer_ops for o in outcomes))
    pages = PageAccountant()
    for outcome in outcomes:
        pages.data_words |= outcome.pages.data_words
        pages.shadow_words |= outcome.pages.shadow_words
    return SimulationOutcome(
        benchmark=first.benchmark,
        configuration=first.configuration,
        timing=timing,
        injection=injection,
        pointer_stats=pointer,
        pages=pages,
    )


class OutcomeAccumulator:
    """Fold per-sample outcomes one at a time, releasing each as it lands.

    Bit-identical to calling :func:`aggregate_outcomes` on the full outcome
    list — pinned by the streaming golden tests — while pinning only
    per-sample scalars between samples.  The heavyweight parts of an outcome
    (the page accountant's touched-word sets, injection/pointer counters)
    fold into running totals immediately; only each sample's
    :class:`TimingResult` (a handful of ints and a small per-port dict) is
    retained, because the §9.1 cycle-weighted port-wait average divides by
    the *total* cycles, which are unknown until the last sample.  At
    :meth:`finalize` the port waits are folded with exactly
    :func:`aggregate_outcomes`'s float expression in exactly its iteration
    order, so streaming aggregation is not merely close but equal.
    """

    def __init__(self):
        self.benchmark: Optional[str] = None
        self.configuration: Optional[str] = None
        self._timings: List[TimingResult] = []
        self._injection = {field.name: 0
                           for field in dataclasses.fields(InjectionStats)}
        self._memory_ops = 0
        self._pointer_ops = 0
        self._pages = PageAccountant()

    def __len__(self) -> int:
        return len(self._timings)

    def add(self, outcome: SimulationOutcome) -> None:
        """Absorb one per-sample outcome (in sample order)."""
        if not self._timings:
            self.benchmark = outcome.benchmark
            self.configuration = outcome.configuration
        self._timings.append(outcome.timing)
        injection = self._injection
        for name in injection:
            injection[name] += getattr(outcome.injection, name)
        self._memory_ops += outcome.pointer_stats.memory_ops
        self._pointer_ops += outcome.pointer_stats.pointer_ops
        self._pages.data_words |= outcome.pages.data_words
        self._pages.shadow_words |= outcome.pages.shadow_words

    def finalize(self) -> SimulationOutcome:
        """The aggregate of everything absorbed, §9.1-style."""
        timings = self._timings
        if not timings:
            raise ValueError("no sample outcomes were accumulated")
        total_cycles = sum(timing.cycles for timing in timings)
        port_waits = {}
        for timing in timings:
            for port, wait in timing.port_waits.items():
                port_waits[port] = port_waits.get(port, 0.0) \
                    + wait * (timing.cycles / total_cycles if total_cycles else 0.0)
        timing = TimingResult(
            cycles=total_cycles,
            total_uops=sum(t.total_uops for t in timings),
            injected_uops=sum(t.injected_uops for t in timings),
            macro_instructions=sum(t.macro_instructions for t in timings),
            memory_accesses=sum(t.memory_accesses for t in timings),
            lock_cache_misses=sum(t.lock_cache_misses for t in timings),
            l1d_misses=sum(t.l1d_misses for t in timings),
            port_waits=port_waits,
        )
        return SimulationOutcome(
            benchmark=self.benchmark,
            configuration=self.configuration,
            timing=timing,
            injection=InjectionStats(**self._injection),
            pointer_stats=PointerIdStats(memory_ops=self._memory_ops,
                                         pointer_ops=self._pointer_ops),
            pages=self._pages,
        )


class Simulator:
    """Runs workloads and programs under Watchdog configurations.

    ``pipeline`` selects the timing implementation: ``"compiled"`` (default)
    packs traces into template-expanded array streams and runs the array
    scheduler; ``"reference"`` keeps the original object-per-µop path.  The
    two are bit-identical (enforced by the golden equivalence tests); the
    reference model exists as the readable specification and as the
    verification oracle.
    """

    def __init__(self, machine: Optional[MachineConfig] = None,
                 pipeline: Optional[str] = None,
                 release_sample_caches: bool = False,
                 timecore: Optional[bool] = None):
        self.machine = machine or MachineConfig()
        self.pipeline = resolve_pipeline(pipeline)
        #: Native timing-core override handed to every core this simulator
        #: builds: ``True`` forces the C kernel (still falls back if it can't
        #: load), ``False`` forces the Python loops, ``None`` defers to the
        #: ``REPRO_TIMECORE`` environment switch.
        self.timecore = timecore
        #: When set, sampled replays drop each sample's compiled-stream and
        #: working-set-array caches as soon as its outcome is aggregated
        #: (see :meth:`sample_outcomes`), trading recompilation on a later
        #: replay for a flat memory profile over long horizons.
        self.release_sample_caches = bool(release_sample_caches)

    # -- workload timing runs ---------------------------------------------------------
    def run_trace(self, trace: Iterable[DynamicOp], config: WatchdogConfig,
                  name: str = "trace",
                  warmup_trace: Optional[Iterable[DynamicOp]] = None,
                  workload: Optional[WorkingSet] = None) -> SimulationOutcome:
        """Expand and time an already-generated dynamic trace.

        ``warmup_trace`` mirrors the §9.1 methodology: its accesses prime the
        cache hierarchy (data, shadow and lock accesses alike) but are not
        timed and do not contribute to any statistic.  When the workload
        itself is provided, its whole live working set (data lines, lock
        locations and — for metadata-maintaining configurations — shadow
        lines) is additionally pre-touched, which is what the long warm-up
        windows of the paper's sampling methodology achieve.
        """
        if self.pipeline == PIPELINE_COMPILED:
            # Freeze the working set before anything consumes the measured
            # trace: for live workloads the generator advances the working
            # set, and the warm-up must reflect the warm-up/measure boundary.
            if workload is not None and hasattr(workload, "snapshot_working_set"):
                workload = workload.snapshot_working_set()
            # Materialize generator traces next: compilation consumes the
            # iterator, and an unsupported-shape fallback must replay the
            # *whole* trace through the reference model, not the remainder.
            if not isinstance(trace, (list, tuple)):
                trace = list(trace)
            if warmup_trace is not None and \
                    not isinstance(warmup_trace, (list, tuple)):
                warmup_trace = list(warmup_trace)
            outcome = self._run_trace_compiled(trace, config, name,
                                               warmup_trace, workload)
            if outcome is not None:
                return outcome
            # Unsupported trace shape: fall through to the reference model.
        return self._run_trace_reference(trace, config, name, warmup_trace,
                                         workload)

    def _run_trace_reference(self, trace, config, name, warmup_trace,
                             workload) -> SimulationOutcome:
        """Expand and time a trace through the reference object pipeline."""
        pages = PageAccountant()
        expander = TraceExpander(config, pages=pages)
        core = OutOfOrderCore(machine=self.machine, watchdog=config,
                              timecore=self.timecore)
        if workload is not None:
            self._warm_working_set(core, config, workload)
        if warmup_trace is not None:
            self._warm_hierarchy(core, config, warmup_trace)
        timing = core.simulate(expander.iter_expand(trace))
        return SimulationOutcome(
            benchmark=name,
            configuration=self._config_name(config),
            timing=timing,
            injection=expander.stats,
            pointer_stats=expander.pointer_id_stats,
            pages=pages,
        )

    def _run_trace_compiled(self, trace, config, name, warmup_trace,
                            workload) -> Optional[SimulationOutcome]:
        """Compile and run an ad-hoc trace; None if the shape is unsupported.

        The caller materialized the traces and froze the working set, so an
        unsupported-shape bail-out leaves everything replayable by the
        reference model.
        """
        from repro.sim import compiled as compiled_mod

        compiler = compiled_mod.StreamCompiler(config, self.machine)
        try:
            ws_arrays = compiler.working_set_arrays(workload) \
                if workload is not None else None
            warm = compiler.compile_warm(compiled_mod.tokenize(warmup_trace)) \
                if warmup_trace is not None else None
            measured = compiler.compile_measured(compiled_mod.tokenize(trace))
        except compiled_mod.CompiledTraceUnsupported:
            return None
        return self._run_compiled(measured, warm, ws_arrays, config, name)

    def _run_compiled(self, measured, warm, ws_arrays, config,
                      name: str) -> SimulationOutcome:
        """Warm the hierarchy and run the array scheduler on packed streams."""
        from repro.sim import compiled as compiled_mod

        core = OutOfOrderCore(machine=self.machine, watchdog=config,
                              timecore=self.timecore)
        if ws_arrays is not None:
            compiled_mod.warm_working_set(core.hierarchy, ws_arrays, config)
        if warm is not None:
            compiled_mod.warm_trace(core.hierarchy, warm, config)
        timing = core.simulate_compiled(measured)
        return SimulationOutcome(
            benchmark=name,
            configuration=self._config_name(config),
            timing=timing,
            injection=measured.injection,
            pointer_stats=measured.pointer,
            pages=measured.pages,
        )

    @staticmethod
    def _warm_working_set(core: OutOfOrderCore, config: WatchdogConfig,
                          workload: WorkingSet) -> None:
        """Install the workload's entire live working set before measuring.

        Brings every data line (and, when metadata is maintained, every
        corresponding shadow line) and every lock location at least into the
        lower cache levels, so the measured window contains only the misses a
        steady-state execution would see (capacity/conflict misses and lines
        belonging to objects allocated during the window).  Shadow lines are
        installed first and data lines last, so — as in steady state — the
        frequently-used data stays resident in the upper levels while the
        (colder) metadata sits behind it in the hierarchy.

        Both pipelines share one implementation
        (:func:`repro.sim.compiled.warm_working_set`), which installs the
        warm state directly instead of replaying hundreds of thousands of
        demand accesses through the miss/prefetch machinery.
        """
        from repro.sim.compiled import warm_working_set, working_set_arrays

        warm_working_set(core.hierarchy, working_set_arrays(workload, config),
                         config)

    @staticmethod
    def _warm_hierarchy(core: OutOfOrderCore, config: WatchdogConfig,
                        warmup_trace: Iterable[DynamicOp]) -> None:
        """Prime caches/TLBs with the warm-up portion of a workload.

        Every data, lock and shadow access of the warm-up stream is replayed
        into the hierarchy.  In addition, for configurations that maintain
        shadow metadata, the shadow line of every warmed *data* line is
        touched as well: during the paper's 10M-instruction warm-up windows
        the metadata working set is fully resident, and short synthetic
        traces would otherwise charge the measured window with artificial
        cold misses on first-touched shadow lines.
        """
        from repro.memory.hierarchy import PortKind

        warm_expander = TraceExpander(config)
        warm_shadow = config.enabled and not config.ideal_shadow
        # A 64-byte data line shadows onto ``metadata_words`` consecutive
        # shadow lines; touch all of them so no artificial first-touch miss
        # remains in the measured window.
        shadow_step = 64 // config.metadata_words
        for timed in warm_expander.iter_expand(warmup_trace):
            if timed.address is None:
                continue
            core.hierarchy.access(timed.address, is_write=timed.is_write,
                                  port=timed.port)
            if warm_shadow and timed.port is PortKind.DATA:
                line_base = timed.address & ~63
                for step in range(config.metadata_words):
                    shadow_address = warm_expander.shadow.shadow_address(
                        line_base + step * shadow_step)
                    core.hierarchy.access(shadow_address, is_write=False,
                                          port=PortKind.SHADOW)
        core.hierarchy.reset_stats()

    def run_benchmark(self, benchmark: str, config: WatchdogConfig,
                      instructions: int = 20_000, seed: int = 0,
                      warmup_instructions: Optional[int] = None,
                      sampling: Optional["SamplingConfig"] = None) -> SimulationOutcome:
        """Generate and time one SPEC-like synthetic benchmark."""
        profile = profile_by_name(benchmark)
        return self.run_profile(profile, config, instructions=instructions, seed=seed,
                                warmup_instructions=warmup_instructions,
                                sampling=sampling)

    def run_profile(self, profile: BenchmarkProfile, config: WatchdogConfig,
                    instructions: int = 20_000, seed: int = 0,
                    warmup_instructions: Optional[int] = None,
                    sampling: Optional["SamplingConfig"] = None) -> SimulationOutcome:
        """Generate and time a workload from an explicit profile.

        The workload generator produces one continuous dynamic stream; the
        first ``warmup_instructions`` (default: a quarter of the measured
        portion) warm the caches and the remainder is measured, mirroring the
        warm-up/measure structure of the paper's sampling methodology.
        ``sampling`` instead applies the §9.1 periodic schedule itself: the
        stream is segmented into fast-forward/warm-up/measure windows and
        only the measure windows are timed (see :meth:`run_bundle`).

        The measured portion streams straight into the timing core (O(1)
        trace memory, suitable for very long one-off runs); sweeps that need
        to replay one trace under many configurations materialize a
        :class:`TraceBundle` instead and use :meth:`run_bundle`, which
        produces bit-identical results.

        Sampled runs past the streaming threshold (or with ``REPRO_STREAMING=1``
        set) take :meth:`run_streaming` instead of materializing a retained
        bundle — same windows, same samples, bit-identical aggregate, flat
        memory.
        """
        if sampling is not None:
            if warmup_instructions is None \
                    and use_streaming(instructions, sampling):
                return self.run_streaming(profile, config,
                                          instructions=instructions,
                                          sampling=sampling, seed=seed)
            bundle = TraceBundle.generate(profile, seed=seed,
                                          instructions=instructions,
                                          warmup_instructions=warmup_instructions,
                                          sampling=sampling)
            return self.run_bundle(bundle, config)
        workload = SyntheticWorkload(profile, seed=seed)
        if warmup_instructions is None:
            warmup_instructions = default_warmup_instructions(instructions)
        warmup = workload.trace(warmup_instructions) if warmup_instructions else None
        return self.run_trace(workload.generate(instructions), config,
                              name=profile.name, warmup_trace=warmup,
                              workload=workload)

    def run_bundle(self, bundle: TraceBundle, config: WatchdogConfig) -> SimulationOutcome:
        """Time one pre-generated trace bundle under one configuration.

        The bundle is immutable: the same bundle can be replayed under any
        number of configurations (serially or from several worker processes)
        and yields exactly the cycles a fresh per-configuration workload
        generation would have produced.  Under the compiled pipeline the
        bundle additionally caches its packed streams per
        configuration-equivalence class, so replaying n configurations costs
        one tokenization, one compilation per injection behaviour, and n
        array-scheduler runs.

        A sampled bundle (§9.1) runs each measure window as an independent
        timing run — fresh core, working set installed from the window's own
        snapshot, warm-up window replayed untimed — and aggregates the
        per-sample results (see :func:`aggregate_outcomes`).
        """
        if bundle.samples:
            return self._run_sampled(bundle, config)
        if self.pipeline == PIPELINE_COMPILED:
            from repro.sim.compiled import CompiledTraceUnsupported

            try:
                streams = bundle.compiled_streams(config, machine=self.machine)
            except CompiledTraceUnsupported:
                pass
            else:
                return self._run_compiled(streams.measured, streams.warm,
                                          streams.working_set, config,
                                          bundle.benchmark)
        return self.run_trace(iter(bundle.measured), config,
                              name=bundle.benchmark,
                              warmup_trace=bundle.warmup or None,
                              workload=bundle.working_set)

    def _run_sampled(self, bundle: TraceBundle,
                     config: WatchdogConfig) -> SimulationOutcome:
        """Replay every sample of a sampled bundle and fold the results."""
        return aggregate_outcomes(self.sample_outcomes(bundle, config))

    def run_streaming(self, profile, config: WatchdogConfig,
                      instructions: int, sampling: SamplingConfig,
                      seed: int = 0) -> SimulationOutcome:
        """Run a §9.1-sampled workload streaming: one sample in memory.

        Each sample segment is generated, wrapped as a transient one-sample
        bundle, compiled, simulated and folded into the accumulator — then
        every per-sample artifact (raw traces, token/stream caches,
        working-set arrays) is dropped with the bundle before the next
        sample is generated.  Peak memory is one sample regardless of
        horizon; the result is bit-identical to :meth:`run_bundle` over the
        retained bundle of the same (profile, seed, instructions, sampling).
        ``profile`` may be a :class:`BenchmarkProfile` or a profile name.
        """
        stream = SampleStream(profile, seed, instructions, sampling)
        accumulator = OutcomeAccumulator()
        for segment in stream.segments():
            bundle = stream.segment_bundle(segment)
            accumulator.add(self.sample_outcome(bundle, 0, config))
        return accumulator.finalize()

    def sample_outcome(self, bundle: TraceBundle, index: int,
                       config: WatchdogConfig) -> SimulationOutcome:
        """Replay one sample of a sampled bundle under one configuration.

        Each sample is an ordinary (warm-up, working set, measured) replay at
        window scale, so both pipelines reuse their unsampled machinery
        unchanged — which is what keeps compiled and reference bit-identical
        under sampling.
        """
        if self.pipeline == PIPELINE_COMPILED:
            from repro.sim.compiled import CompiledTraceUnsupported

            try:
                streams = bundle.compiled_sample_streams(
                    index, config, machine=self.machine)
            except CompiledTraceUnsupported:
                pass
            else:
                return self._run_compiled(
                    streams.measured, streams.warm, streams.working_set,
                    config, bundle.benchmark)
        # Straight to the reference model: compilation of this exact
        # sample just failed (or the reference pipeline is selected), so
        # run_trace's re-tokenize-and-retry would be wasted work.
        sample = bundle.samples[index]
        return self._run_trace_reference(
            iter(sample.measured), config, bundle.benchmark,
            sample.warmup or None, sample.working_set)

    def sample_outcomes(self, bundle: TraceBundle,
                        config: WatchdogConfig) -> List[SimulationOutcome]:
        """Per-sample outcomes of a sampled bundle, in sample order.

        Samples are mutually independent, which is what lets the sweep engine
        fan them out across its worker pool and aggregate in index order with
        bit-identical results (see :func:`repro.sim.engine.execute_job`).
        With :attr:`release_sample_caches` set, each sample's compiled
        streams and working-set arrays are dropped right after its outcome is
        recorded, so a paper-scale replay pins at most one sample's compiled
        footprint instead of accumulating every sample's.
        """
        outcomes: List[SimulationOutcome] = []
        for index in range(len(bundle.samples)):
            outcomes.append(self.sample_outcome(bundle, index, config))
            if self.release_sample_caches:
                bundle.release_sample_caches(index)
        return outcomes

    # -- program detection runs --------------------------------------------------------
    def run_program(self, program: Program, config: WatchdogConfig,
                    with_timing: bool = False) -> SimulationOutcome:
        """Execute a program functionally; optionally also time its trace."""
        machine = Machine(config, record_trace=with_timing)
        detection = machine.run(program)
        outcome = SimulationOutcome(
            benchmark=program.entry,
            configuration=self._config_name(config),
            detection=detection,
            injection=machine.watchdog.injection_stats,
            pointer_stats=machine.watchdog.pointer_id_stats,
            pages=machine.watchdog.pages,
        )
        if with_timing and detection.trace:
            timed = self.run_trace(detection.trace, config, name=program.entry)
            outcome.timing = timed.timing
        return outcome

    # -- helpers --------------------------------------------------------------------------
    @staticmethod
    def _config_name(config: WatchdogConfig) -> str:
        if not config.enabled:
            return "baseline"
        parts = [config.pointer_identification.value]
        if config.bounds_enabled:
            parts.append(config.bounds_mode.value)
        if not config.lock_cache_enabled:
            parts.append("no-lock-cache")
        if config.ideal_shadow:
            parts.append("ideal-shadow")
        if not config.copy_elimination:
            parts.append("no-copy-elim")
        return "+".join(parts)
