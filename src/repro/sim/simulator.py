"""Top-level simulator.

Glues the pieces together for the two kinds of runs the evaluation needs:

* **workload timing runs** (Figures 5, 7, 8, 9, 10, 11): a synthetic
  SPEC-like workload generates a dynamic trace; the trace expander injects
  Watchdog µops and annotates addresses; the out-of-order core replays the
  timed µop stream against the Table 2 memory hierarchy and reports cycles,
* **program detection runs** (§9.2, the examples, the attack scenarios): a
  program built with the builder executes on the functional machine under a
  Watchdog configuration, and the result records whether a violation was
  detected (optionally also recording a dynamic trace so the same run can be
  timed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import WatchdogConfig
from repro.core.pointer_id import PointerIdStats
from repro.core.uop_injection import InjectionStats
from repro.memory.pages import PageAccountant
from repro.memory.shadow import ShadowSpace
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import OutOfOrderCore, TimingResult
from repro.program.ir import Program
from repro.program.machine import ExecutionResult, Machine
from repro.sim.trace import DynamicOp, TraceExpander
from repro.workloads.bundle import TraceBundle, WorkingSet, \
    default_warmup_instructions
from repro.workloads.profiles import BenchmarkProfile, profile_by_name
from repro.workloads.synthetic import SyntheticWorkload


@dataclass
class SimulationOutcome:
    """Everything one simulation run produced."""

    benchmark: str
    configuration: str
    timing: Optional[TimingResult] = None
    injection: Optional[InjectionStats] = None
    pointer_stats: Optional[PointerIdStats] = None
    pages: Optional[PageAccountant] = None
    detection: Optional[ExecutionResult] = None

    @property
    def cycles(self) -> int:
        if self.timing is None:
            return 0
        return self.timing.cycles

    @property
    def detected(self) -> bool:
        return bool(self.detection and self.detection.detected)


class Simulator:
    """Runs workloads and programs under Watchdog configurations."""

    def __init__(self, machine: Optional[MachineConfig] = None):
        self.machine = machine or MachineConfig()

    # -- workload timing runs ---------------------------------------------------------
    def run_trace(self, trace: Iterable[DynamicOp], config: WatchdogConfig,
                  name: str = "trace",
                  warmup_trace: Optional[Iterable[DynamicOp]] = None,
                  workload: Optional[WorkingSet] = None) -> SimulationOutcome:
        """Expand and time an already-generated dynamic trace.

        ``warmup_trace`` mirrors the §9.1 methodology: its accesses prime the
        cache hierarchy (data, shadow and lock accesses alike) but are not
        timed and do not contribute to any statistic.  When the workload
        itself is provided, its whole live working set (data lines, lock
        locations and — for metadata-maintaining configurations — shadow
        lines) is additionally pre-touched, which is what the long warm-up
        windows of the paper's sampling methodology achieve.
        """
        pages = PageAccountant()
        expander = TraceExpander(config, pages=pages)
        core = OutOfOrderCore(machine=self.machine, watchdog=config)
        if workload is not None:
            self._warm_working_set(core, config, workload)
        if warmup_trace is not None:
            self._warm_hierarchy(core, config, warmup_trace)
        timing = core.simulate(expander.iter_expand(trace))
        return SimulationOutcome(
            benchmark=name,
            configuration=self._config_name(config),
            timing=timing,
            injection=expander.stats,
            pointer_stats=expander.pointer_id_stats,
            pages=pages,
        )

    @staticmethod
    def _warm_working_set(core: OutOfOrderCore, config: WatchdogConfig,
                          workload: WorkingSet) -> None:
        """Touch the workload's entire live working set before measuring.

        Brings every data line (and, when metadata is maintained, every
        corresponding shadow line) and every lock location at least into the
        lower cache levels, so the measured window contains only the misses a
        steady-state execution would see (capacity/conflict misses and lines
        belonging to objects allocated during the window).
        """
        from repro.memory.hierarchy import PortKind

        shadow = ShadowSpace(metadata_words=config.metadata_words)
        warm_shadow = config.enabled and not config.ideal_shadow
        shadow_step = 64 // config.metadata_words
        # Shadow lines are touched first and data lines afterwards, so that —
        # as in steady state — the frequently-used data stays resident in the
        # upper levels while the (colder) metadata sits behind it in the
        # hierarchy rather than displacing it.
        if warm_shadow:
            for line in workload.working_set_lines():
                for step in range(config.metadata_words):
                    core.hierarchy.access(
                        shadow.shadow_address(line + step * shadow_step),
                        is_write=False, port=PortKind.SHADOW)
        if config.enabled:
            for lock in workload.lock_locations():
                core.hierarchy.access(lock, is_write=False, port=PortKind.LOCK)
        for line in workload.working_set_lines():
            core.hierarchy.access(line, is_write=False, port=PortKind.DATA)
        core.hierarchy.reset_stats()

    @staticmethod
    def _warm_hierarchy(core: OutOfOrderCore, config: WatchdogConfig,
                        warmup_trace: Iterable[DynamicOp]) -> None:
        """Prime caches/TLBs with the warm-up portion of a workload.

        Every data, lock and shadow access of the warm-up stream is replayed
        into the hierarchy.  In addition, for configurations that maintain
        shadow metadata, the shadow line of every warmed *data* line is
        touched as well: during the paper's 10M-instruction warm-up windows
        the metadata working set is fully resident, and short synthetic
        traces would otherwise charge the measured window with artificial
        cold misses on first-touched shadow lines.
        """
        from repro.memory.hierarchy import PortKind

        warm_expander = TraceExpander(config)
        warm_shadow = config.enabled and not config.ideal_shadow
        # A 64-byte data line shadows onto ``metadata_words`` consecutive
        # shadow lines; touch all of them so no artificial first-touch miss
        # remains in the measured window.
        shadow_step = 64 // config.metadata_words
        for timed in warm_expander.iter_expand(warmup_trace):
            if timed.address is None:
                continue
            core.hierarchy.access(timed.address, is_write=timed.is_write,
                                  port=timed.port)
            if warm_shadow and timed.port is PortKind.DATA:
                line_base = timed.address & ~63
                for step in range(config.metadata_words):
                    shadow_address = warm_expander.shadow.shadow_address(
                        line_base + step * shadow_step)
                    core.hierarchy.access(shadow_address, is_write=False,
                                          port=PortKind.SHADOW)
        core.hierarchy.reset_stats()

    def run_benchmark(self, benchmark: str, config: WatchdogConfig,
                      instructions: int = 20_000, seed: int = 0,
                      warmup_instructions: Optional[int] = None) -> SimulationOutcome:
        """Generate and time one SPEC-like synthetic benchmark."""
        profile = profile_by_name(benchmark)
        return self.run_profile(profile, config, instructions=instructions, seed=seed,
                                warmup_instructions=warmup_instructions)

    def run_profile(self, profile: BenchmarkProfile, config: WatchdogConfig,
                    instructions: int = 20_000, seed: int = 0,
                    warmup_instructions: Optional[int] = None) -> SimulationOutcome:
        """Generate and time a workload from an explicit profile.

        The workload generator produces one continuous dynamic stream; the
        first ``warmup_instructions`` (default: a quarter of the measured
        portion) warm the caches and the remainder is measured, mirroring the
        warm-up/measure structure of the paper's sampling methodology.

        The measured portion streams straight into the timing core (O(1)
        trace memory, suitable for very long one-off runs); sweeps that need
        to replay one trace under many configurations materialize a
        :class:`TraceBundle` instead and use :meth:`run_bundle`, which
        produces bit-identical results.
        """
        workload = SyntheticWorkload(profile, seed=seed)
        if warmup_instructions is None:
            warmup_instructions = default_warmup_instructions(instructions)
        warmup = workload.trace(warmup_instructions) if warmup_instructions else None
        return self.run_trace(workload.generate(instructions), config,
                              name=profile.name, warmup_trace=warmup,
                              workload=workload)

    def run_bundle(self, bundle: TraceBundle, config: WatchdogConfig) -> SimulationOutcome:
        """Time one pre-generated trace bundle under one configuration.

        The bundle is immutable: the same bundle can be replayed under any
        number of configurations (serially or from several worker processes)
        and yields exactly the cycles a fresh per-configuration workload
        generation would have produced.
        """
        return self.run_trace(iter(bundle.measured), config,
                              name=bundle.benchmark,
                              warmup_trace=bundle.warmup or None,
                              workload=bundle.working_set)

    # -- program detection runs --------------------------------------------------------
    def run_program(self, program: Program, config: WatchdogConfig,
                    with_timing: bool = False) -> SimulationOutcome:
        """Execute a program functionally; optionally also time its trace."""
        machine = Machine(config, record_trace=with_timing)
        detection = machine.run(program)
        outcome = SimulationOutcome(
            benchmark=program.entry,
            configuration=self._config_name(config),
            detection=detection,
            injection=machine.watchdog.injection_stats,
            pointer_stats=machine.watchdog.pointer_id_stats,
            pages=machine.watchdog.pages,
        )
        if with_timing and detection.trace:
            timed = self.run_trace(detection.trace, config, name=program.entry)
            outcome.timing = timed.timing
        return outcome

    # -- helpers --------------------------------------------------------------------------
    @staticmethod
    def _config_name(config: WatchdogConfig) -> str:
        if not config.enabled:
            return "baseline"
        parts = [config.pointer_identification.value]
        if config.bounds_enabled:
            parts.append(config.bounds_mode.value)
        if not config.lock_cache_enabled:
            parts.append("no-lock-cache")
        if config.ideal_shadow:
            parts.append("ideal-shadow")
        if not config.copy_elimination:
            parts.append("no-copy-elim")
        return "+".join(parts)
