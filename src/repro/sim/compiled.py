"""Compiled µop streams: template-based trace expansion into packed arrays.

The object pipeline (:class:`~repro.sim.trace.TraceExpander` feeding
:meth:`~repro.pipeline.core.OutOfOrderCore.simulate`) allocates a
``MicroOp``/``TimedUop`` pair for every µop of every (benchmark ×
configuration) cell and re-runs decode + injection per dynamic instance.
This module replaces that hot path with a three-step compilation:

1. **Tokenization** (configuration-independent, once per trace): every
   dynamic op is reduced to the *identity* of its static instruction —
   opcode, register operands, access size, pointer hint — plus its dynamic
   annotations (effective address, lock location, misprediction flag).
   Identities are interned, so a trace becomes four parallel arrays.

2. **Template expansion** (once per identity per configuration class): the
   real injector expands each unique identity once
   (:func:`repro.core.uop_injection.compile_template`); the expansion is
   lowered into numeric per-µop tuples (kind/queue/branch flags, µop cost,
   register *slots* instead of ``ArchReg`` objects) plus address-derivation
   rules from :data:`repro.sim.trace.ANNOTATION_RULES`.

3. **Stream packing** (once per configuration class): replaying the token
   arrays through the template table yields one :class:`CompiledStream` —
   flat ``array("q")`` columns in the native kernel's wire format (packed
   µop words, a latency prefill, and the memory-access sequence the
   hierarchy replays in a single batch) — along with exact
   injection/pointer/page statistics reconstructed from per-template
   deltas.  Each template's µop words are packed once at build time, so
   stream assembly is pure ``array.extend`` and the kernel consumes the
   stream with zero further marshalling; per-µop tuples are rebuilt on
   demand (:attr:`CompiledStream.uops`) only for the Python fallback
   scheduler.  A template whose cost or register slots exceed the packed
   field widths makes the whole stream tuple-only, exactly as the old
   post-hoc packing did.

Two Watchdog configurations that inject identically (same ``enabled``,
pointer-identification mode, bounds mode and copy-elimination setting) share
one compiled stream: the *class key* deliberately excludes knobs that only
affect timing (lock cache, idealized shadow).  The array scheduler that
consumes these streams lives in
:meth:`repro.pipeline.core.OutOfOrderCore.simulate_compiled`; the golden
equivalence tests pin it bit-for-bit to the object pipeline.
"""

from __future__ import annotations

import dataclasses
from array import array
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.native._timecore import pack_entry_words, unpack_words

from repro.core.config import WatchdogConfig
from repro.core.pointer_id import PointerIdStats
from repro.core.uop_injection import InjectionStats, compile_template
from repro.errors import ProgramError
from repro.isa.instructions import Instruction
from repro.isa.microops import UopKind, WATCHDOG_KINDS
from repro.isa.registers import RegClass, reg_slot
from repro.memory.address_space import SHADOW_BIT
from repro.memory.hierarchy import (
    PORT_CODES,
    PORT_DATA,
    PORT_LOCK,
    PORT_SHADOW,
    SPEC_USE_LATENCY,
    SPEC_WRITE,
)
from repro.memory.pages import PageAccountant
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import (
    FLAG_BRANCH,
    FLAG_LQ,
    FLAG_MISPREDICT,
    FLAG_SQ,
)
from repro.sim.trace import (
    ADDR_DATA,
    ADDR_FRAME_PUSH,
    ADDR_FRAME_POP,
    ADDR_LOCK,
    ADDR_NONE,
    ADDR_SHADOW,
    ANNOTATION_RULES,
    DynamicOp,
    HIERARCHY_LATENCY_KINDS,
    LQ_KINDS,
    SQ_KINDS,
    TraceExpander,
)

_M47 = 1 << 47

#: Uniform warm-up access specs (read accesses on each port).
SPEC_DATA_READ = PORT_DATA
SPEC_LOCK_READ = PORT_LOCK
SPEC_SHADOW_READ = PORT_SHADOW


class CompiledTraceUnsupported(ProgramError):
    """The trace contains a shape the compiled pipeline does not pack.

    Raised for instructions with more than two register (or metadata)
    sources; the simulator falls back to the reference object pipeline.
    """


def stream_class_key(config: WatchdogConfig) -> tuple:
    """The configuration-equivalence class of a compiled stream.

    Exactly the knobs that change which µops are injected and how they are
    annotated; lock-cache presence, idealized shadow and halt-on-violation
    only affect *timing* and therefore share streams.
    """
    return (config.enabled, config.pointer_identification,
            config.bounds_mode, config.copy_elimination)


# -- tokenization ---------------------------------------------------------------------

class TraceTokens:
    """A dynamic trace reduced to interned instruction identities."""

    __slots__ = ("tids", "addrs", "locks", "mis", "insts")

    def __init__(self, tids, addrs, locks, mis, insts):
        self.tids = tids
        self.addrs = addrs
        self.locks = locks
        self.mis = mis
        #: One representative :class:`Instruction` per identity.
        self.insts = insts

    def __len__(self) -> int:
        return len(self.tids)


def tokenize(trace: Iterable[DynamicOp]) -> TraceTokens:
    """Intern a dynamic trace into parallel (tid, address, lock, mis) arrays.

    The identity key covers every instruction field that can influence µop
    injection or timing annotation under the default (stateless) pointer
    identifiers: opcode, register operands, access size and pointer hint.
    Immediates, labels and comments are deliberately excluded — they never
    reach the timing model.

    The synthetic workload generator interns :class:`Instruction` objects
    per shape, so most dynamic ops repeat a handful of object identities;
    those resolve through an ``id()``-keyed memo (the ``keepalive`` list
    pins the memoized objects, so an id can never be recycled mid-call) and
    only the first occurrence of each object pays for the structural key.
    """
    key_to_tid = {}
    id_to_tid = {}
    keepalive: List[Instruction] = []
    insts: List[Instruction] = []
    tids: List[int] = []
    addrs: List[Optional[int]] = []
    locks: List[Optional[int]] = []
    mis: List[bool] = []
    get = key_to_tid.get
    id_get = id_to_tid.get
    keep = keepalive.append
    int_class = RegClass.INT
    append_tid = tids.append
    append_addr = addrs.append
    append_lock = locks.append
    append_mis = mis.append

    for dop in trace:
        inst = dop.instruction
        tid = id_get(id(inst))
        if tid is None:
            srcs = inst.srcs
            n = len(srcs)
            if n > 2:
                raise CompiledTraceUnsupported(
                    f"instruction has {n} register sources "
                    f"(compiled limit: 2)")
            dest = inst.dest
            key = inst.opcode.code
            if dest is None:
                key = key * 33
            else:
                key = key * 33 + (dest.index + 1 if dest.regclass is int_class
                                  else dest.index + 17)
            if n:
                reg = srcs[0]
                key = key * 33 + (reg.index + 1 if reg.regclass is int_class
                                  else reg.index + 17)
                if n == 2:
                    reg = srcs[1]
                    key = key * 33 + (reg.index + 1
                                      if reg.regclass is int_class
                                      else reg.index + 17)
                else:
                    key = key * 33
            else:
                key = key * 1089
            key = (key * 9 + inst.size) * 4 + inst.pointer_hint.code
            tid = get(key)
            if tid is None:
                tid = key_to_tid[key] = len(insts)
                insts.append(inst)
            id_to_tid[id(inst)] = tid
            keep(inst)
        append_tid(tid)
        append_addr(dop.address)
        append_lock(dop.lock_address)
        append_mis(dop.mispredicted)
    return TraceTokens(tids, addrs, locks, mis, insts)


# -- compiled artifacts ----------------------------------------------------------------

@dataclass(eq=False)
class CompiledStream:
    """One trace × configuration-class, packed for the array scheduler.

    The µop column is carried in the native kernel's wire format: one
    packed int64 word per µop (flags | cost << 9 | six 6-bit register-slot
    fields — the layout documented at ``sched_run`` in
    :mod:`repro.native._timecore`).  ``words is None`` marks a *tuple-only*
    stream — some template overflowed the packed field widths at compile
    time — which the Python scheduler consumes via :attr:`uops` and the
    native path refuses, exactly as the old post-hoc packing overflow did.
    """

    #: Kernel-ready packed µop words, or ``None`` for a tuple-only stream.
    words: Optional[array]
    #: Per-µop execution latency prefill (fixed latencies; load positions are
    #: overwritten from the hierarchy batch during simulation).  Callers
    #: copy before mutating — this is the stream's own arena.
    lat_template: array
    #: Packed memory-access sequence in program order.
    mem_pos: array
    mem_addr: array
    mem_spec: array
    # -- exact whole-stream statistics -------------------------------------------
    total_uops: int
    injected_uops: int
    macro_instructions: int
    memory_accesses: int
    injection: InjectionStats
    pointer: PointerIdStats
    pages: PageAccountant
    class_key: tuple
    #: Which core replays this stream (0 in single-core simulation; a
    #: multi-core mix relabels each member's stream with its core index).
    core: int = 0

    @property
    def uops(self) -> List[tuple]:
        """Per-µop ``(flags, cost, dest, s0, s1, md, ms0, ms1)`` tuples.

        Materialized on demand from :attr:`words` (memoized) — only the
        Python fallback scheduler and the golden tests walk tuples; the
        production path hands :attr:`words` to the kernel untouched.
        """
        tuples = self.__dict__.get("_uop_tuples")
        if tuples is None:
            tuples = self.__dict__["_uop_tuples"] = self.to_tuples()
        return tuples

    def to_tuples(self) -> List[tuple]:
        """Unpack :attr:`words` into fresh per-µop tuples (no memo)."""
        return unpack_words(self.words)

    def with_core(self, core: int) -> "CompiledStream":
        """This stream relabelled for ``core`` (itself when already there).

        Keeps the flat columns (and any tuple/packing memo) shared with the
        original — relabelling is what a multi-core mix does per member,
        and must not forfeit the bundle-cached arenas.
        """
        if core == self.core:
            return self
        clone = dataclasses.replace(self, core=core)
        tuples = self.__dict__.get("_uop_tuples")
        if tuples is not None:
            clone.__dict__["_uop_tuples"] = tuples
        # Only the *unpackable* marker transfers: a successful legacy pack
        # memo embeds the original core id and must not be inherited.
        if self.__dict__.get("_tc_packed") is False:
            clone.__dict__["_tc_packed"] = False
        return clone

    def __len__(self) -> int:
        words = self.words
        return len(words) if words is not None else len(self.uops)


@dataclass(eq=False)
class WarmStream:
    """The warm-up portion as a bare hierarchy access sequence.

    Contains, interleaved in program order, every address-carrying µop of the
    expanded warm-up trace plus (for metadata-maintaining classes) the shadow
    lines of each data access — exactly what
    :meth:`Simulator._warm_hierarchy` replays, without the µop objects.
    Both columns are int64 arrays, so the native warm replay consumes them
    without conversion.
    """

    addrs: array
    specs: array

    def __len__(self) -> int:
        return len(self.addrs)


@dataclass(eq=False)
class WorkingSetArrays:
    """Precomputed working-set warm-up addresses (one per class)."""

    shadow: List[int]
    locks: List[int]
    data: List[int]


@dataclass(eq=False)
class BundleStreams:
    """Everything one (bundle × configuration-class) replay needs."""

    measured: CompiledStream
    warm: Optional[WarmStream]
    working_set: WorkingSetArrays


class _Template:
    """Numeric expansion of one instruction identity under one class.

    Carries both forms of the µop column: packed kernel words (``words`` /
    ``mis_words``, ``None`` when any entry overflows the packed field
    widths) and the per-µop tuples the Python fallback consumes.  Stream
    assembly extends flat arrays from the words, so the packing cost is
    paid once per identity, not once per dynamic instance.
    """

    __slots__ = ("uops", "mis_uops", "words", "mis_words", "lats", "n",
                 "addr_ops", "size",
                 "stat_delta", "pointer_delta", "total_cost", "injected_cost")


# -- the compiler ----------------------------------------------------------------------

#: Cross-bundle template cache: one entry per (configuration class, machine,
#: instruction identity).  Different bundles intern different Instruction
#: objects for the same static shapes, so the per-compiler id() memo alone
#: re-expands every identity once per bundle; this cache shares the built
#: templates across bundles and sweeps.  Templates are immutable after
#: construction — every consumer copies out of them.  The cap is a
#: backstop for unbounded sweeps; a full cache simply restarts cold.
_TEMPLATE_CACHE: Dict[tuple, _Template] = {}
_TEMPLATE_CACHE_LIMIT = 1 << 16


def _identity_key(inst: Instruction) -> tuple:
    """The template-relevant identity of an instruction, as a flat tuple.

    Covers exactly the fields :func:`tokenize` folds into its interning key
    (opcode, register operands, access size, pointer hint) — everything that
    can influence µop injection or timing annotation.
    """
    dest = inst.dest
    return (inst.opcode.code,
            -1 if dest is None else reg_slot(dest),
            tuple(reg_slot(reg) for reg in inst.srcs),
            int(inst.size),
            inst.pointer_hint.code)


class StreamCompiler:
    """Compiles tokenized traces for one configuration class and machine."""

    def __init__(self, config: WatchdogConfig,
                 machine: Optional[MachineConfig] = None):
        self.config = config
        self.machine = machine or MachineConfig()
        #: The template expansions run through a real expander so the
        #: statistics deltas (injection counts, pointer classification,
        #: copy-elimination ablation) are captured by construction.
        self.expander = TraceExpander(config)
        self.injector = self.expander.injector
        layout = self.expander.shadow.layout
        self._frame_floor = layout.lock_region.base
        self._frame_start = self._frame_floor + layout.lock_region.size // 2
        self._mw = config.metadata_words
        self._shadow_step = 64 // self._mw
        #: Templates memoized per interned-instruction identity: the warm
        #: and measured token streams of one bundle share most identities
        #: (the generator reuses Instruction objects across the boundary),
        #: so compiling the warm stream after the measured one rebuilds
        #: almost nothing.  Keyed by id(); ``_template_pins`` keeps every
        #: memoized instruction alive so an id is never recycled.
        self._templates: Dict[int, _Template] = {}
        self._template_pins: List[Instruction] = []
        self._cache_key = (stream_class_key(config), self.machine)

    # -- template lowering ---------------------------------------------------------
    def _full_expand(self, inst: Instruction):
        uops = self.injector._expand(inst)
        extra = self.expander._copy_elimination_ablation(inst)
        if extra:
            uops = uops + [timed.uop for timed in extra]
        return uops

    def _template(self, inst: Instruction) -> _Template:
        t = self._templates.get(id(inst))
        if t is None:
            key = (self._cache_key, _identity_key(inst))
            t = _TEMPLATE_CACHE.get(key)
            if t is None:
                if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_LIMIT:
                    _TEMPLATE_CACHE.clear()
                t = _TEMPLATE_CACHE[key] = self._build_template(inst)
            self._templates[id(inst)] = t
            self._template_pins.append(inst)
        return t

    def _build_template(self, inst: Instruction) -> _Template:
        compiled = compile_template(self.injector, inst, expand=self._full_expand)
        machine = self.machine
        t = _Template()
        entries = []
        lats = []
        addr_ops = []
        injected_cost = 0
        has_branch = False
        for off, uop in enumerate(compiled.uops):
            kind = uop.kind
            flags = kind.code
            if kind in LQ_KINDS:
                flags |= FLAG_LQ
            elif kind in SQ_KINDS:
                flags |= FLAG_SQ
            elif kind is UopKind.BRANCH:
                flags |= FLAG_BRANCH
                has_branch = True
            if uop.is_injected:
                injected_cost += uop.uop_cost
            dest = -1
            if uop.dest is not None and kind not in WATCHDOG_KINDS:
                dest = reg_slot(uop.dest)
            srcs = uop.srcs
            meta_srcs = uop.meta_srcs
            if len(srcs) > 2 or len(meta_srcs) > 2:
                raise CompiledTraceUnsupported(
                    f"µop {uop} has more than two (meta) sources")
            s0 = reg_slot(srcs[0]) if srcs else -1
            s1 = reg_slot(srcs[1]) if len(srcs) == 2 else -1
            md = reg_slot(uop.meta_dest) if uop.meta_dest is not None else -1
            ms0 = reg_slot(meta_srcs[0]) if meta_srcs else -1
            ms1 = reg_slot(meta_srcs[1]) if len(meta_srcs) == 2 else -1
            entries.append((flags, uop.uop_cost, dest, s0, s1, md, ms0, ms1))
            lats.append(machine.latency_for(kind))
            rule = ANNOTATION_RULES.get(kind)
            if rule is not None:
                addr_rule, port, is_write = rule
                spec = PORT_CODES[port]
                if is_write:
                    spec |= SPEC_WRITE
                if kind in HIERARCHY_LATENCY_KINDS:
                    spec |= SPEC_USE_LATENCY
                addr_ops.append((off, addr_rule, spec))
        t.uops = tuple(entries)
        t.mis_uops = None
        if has_branch:
            t.mis_uops = tuple(
                (entry[0] | FLAG_MISPREDICT,) + entry[1:]
                if entry[0] & FLAG_BRANCH else entry
                for entry in entries)
        t.words = pack_entry_words(t.uops)
        t.mis_words = None
        if t.words is not None and t.mis_uops is not None:
            t.mis_words = pack_entry_words(t.mis_uops)
            if t.mis_words is None:  # keep both forms in lockstep
                t.words = None
        t.lats = array("q", lats)
        t.n = len(entries)
        t.addr_ops = tuple(addr_ops)
        t.size = int(inst.size)
        t.stat_delta = compiled.stat_delta
        t.pointer_delta = compiled.pointer_delta
        t.total_cost = compiled.total_cost
        t.injected_cost = injected_cost
        return t

    # -- measured stream ----------------------------------------------------------
    def compile_measured(self, tokens: TraceTokens) -> CompiledStream:
        """Pack the measured stream plus its exact statistics.

        Emits the kernel's wire format directly: each template's µop words
        are packed once at build time, and the replay loop assembles the
        stream's columns with ``array("q").extend`` — C-speed memcpys — so
        the resulting :class:`CompiledStream` needs no post-hoc
        ``pack_stream`` pass.  If any template overflows the packed field
        widths, the whole stream is assembled from tuples instead and
        marked tuple-only (the Python scheduler has no width limits).
        """
        insts = tokens.insts
        build = self._template
        templates = [build(inst) for inst in insts]
        flat = all(t.words is not None for t in templates)
        if flat:
            stream_uops: object = array("q")
            main = [t.words for t in templates]
            mis = [t.words if t.mis_words is None else t.mis_words
                   for t in templates]
        else:
            stream_uops = []
            main = [t.uops for t in templates]
            mis = [t.uops if t.mis_uops is None else t.mis_uops
                   for t in templates]
        lats_by_tid = [t.lats for t in templates]
        ops_by_tid = [t.addr_ops for t in templates]
        size_by_tid = [t.size for t in templates]
        n_by_tid = [t.n for t in templates]
        lats = array("q")
        mem_pos = array("q")
        mem_addr = array("q")
        mem_spec = array("q")
        extend_uops = stream_uops.extend
        extend_lats = lats.extend
        add_pos = mem_pos.append
        add_addr = mem_addr.append
        add_spec = mem_spec.append
        pages = PageAccountant()
        data_words = pages.data_words
        shadow_words = pages.shadow_words
        mw = self._mw
        mw8 = mw * 8
        frame_lock = self._frame_start
        frame_floor = self._frame_floor
        base = 0

        for tid, address, lock, mispredicted in zip(
                tokens.tids, tokens.addrs, tokens.locks, tokens.mis):
            extend_uops(mis[tid] if mispredicted else main[tid])
            extend_lats(lats_by_tid[tid])
            addr_ops = ops_by_tid[tid]
            if addr_ops:
                for off, rule, spec in addr_ops:
                    if rule == ADDR_DATA:
                        if address is not None:
                            add_pos(base + off)
                            add_addr(address)
                            add_spec(spec)
                            word = address & ~7
                            end = address + size_by_tid[tid]
                            while word < end:
                                data_words.add(word)
                                word += 8
                    elif rule == ADDR_SHADOW:
                        if address is not None:
                            shadow = SHADOW_BIT | ((address & ~7) * mw) % _M47
                            add_pos(base + off)
                            add_addr(shadow)
                            add_spec(spec)
                            word = shadow
                            end = shadow + mw8
                            while word < end:
                                shadow_words.add(word)
                                word += 8
                    elif rule == ADDR_LOCK:
                        if lock is not None:
                            add_pos(base + off)
                            add_addr(lock)
                            add_spec(spec)
                    elif rule == ADDR_FRAME_PUSH:
                        frame_lock += 8
                        add_pos(base + off)
                        add_addr(frame_lock)
                        add_spec(spec)
                    else:  # ADDR_FRAME_POP
                        add_pos(base + off)
                        add_addr(frame_lock)
                        add_spec(spec)
                        frame_lock -= 8
                        if frame_lock < frame_floor:
                            frame_lock = frame_floor
            base += n_by_tid[tid]

        # -- exact totals from per-template deltas -------------------------------
        counts = Counter(tokens.tids)
        stat_totals = [0] * 8
        memory_ops = pointer_ops = total_cost = injected_cost = 0
        for tid, count in counts.items():
            template = templates[tid]
            total_cost += count * template.total_cost
            injected_cost += count * template.injected_cost
            delta = template.stat_delta
            for i in range(8):
                stat_totals[i] += count * delta[i]
            memory_ops += count * template.pointer_delta[0]
            pointer_ops += count * template.pointer_delta[1]

        stream = CompiledStream(
            words=stream_uops if flat else None,
            lat_template=lats,
            mem_pos=mem_pos,
            mem_addr=mem_addr,
            mem_spec=mem_spec,
            total_uops=total_cost,
            injected_uops=injected_cost,
            macro_instructions=len(tokens.tids),
            memory_accesses=len(mem_pos),
            injection=InjectionStats(*stat_totals),
            pointer=PointerIdStats(memory_ops=memory_ops, pointer_ops=pointer_ops),
            pages=pages,
            class_key=stream_class_key(self.config),
        )
        if not flat:
            # The assembled tuples ARE the fallback's input; pin them as the
            # materialized form and pre-mark the stream unpackable so the
            # native path never re-probes it.
            stream.__dict__["_uop_tuples"] = stream_uops
            stream.__dict__["_tc_packed"] = False
        return stream

    # -- warm-up stream ------------------------------------------------------------
    def compile_warm(self, tokens: TraceTokens) -> WarmStream:
        """Lower the warm-up trace to its bare hierarchy access sequence.

        Mirrors :meth:`Simulator._warm_hierarchy`: each address-carrying µop
        becomes one access; for metadata-maintaining classes every data
        access is followed by its ``metadata_words`` shadow lines (skipped
        at replay under the ideal-shadow ablation, which filters all shadow
        accesses).  Emits int64 arrays directly, so the native warm replay
        (:func:`repro.native._timecore.run_batch`) skips its conversion.
        """
        build = self._template
        ops_by_tid = [build(inst).addr_ops for inst in tokens.insts]
        addrs = array("q")
        specs = array("q")
        add_addr = addrs.append
        add_spec = specs.append
        mw = self._mw
        step = self._shadow_step
        warm_shadow = self.config.enabled
        frame_lock = self._frame_start
        frame_floor = self._frame_floor

        for tid, address, lock in zip(tokens.tids, tokens.addrs, tokens.locks):
            for off, rule, spec in ops_by_tid[tid]:
                if rule == ADDR_DATA:
                    if address is not None:
                        add_addr(address)
                        add_spec(spec)
                        if warm_shadow:
                            line = address & ~63
                            for i in range(mw):
                                data = line + i * step
                                add_addr(SHADOW_BIT | ((data & ~7) * mw) % _M47)
                                add_spec(SPEC_SHADOW_READ)
                elif rule == ADDR_SHADOW:
                    if address is not None:
                        add_addr(SHADOW_BIT | ((address & ~7) * mw) % _M47)
                        add_spec(spec)
                elif rule == ADDR_LOCK:
                    if lock is not None:
                        add_addr(lock)
                        add_spec(spec)
                elif rule == ADDR_FRAME_PUSH:
                    frame_lock += 8
                    add_addr(frame_lock)
                    add_spec(spec)
                else:  # ADDR_FRAME_POP
                    add_addr(frame_lock)
                    add_spec(spec)
                    frame_lock -= 8
                    if frame_lock < frame_floor:
                        frame_lock = frame_floor
        return WarmStream(addrs=addrs, specs=specs)

    # -- working set ---------------------------------------------------------------
    def working_set_arrays(self, workload) -> WorkingSetArrays:
        """Precompute the working-set warm-up address lists for this class."""
        return working_set_arrays(workload, self.config)


def working_set_arrays(workload, config: WatchdogConfig) -> WorkingSetArrays:
    """The three working-set address lists (shadow lines, locks, data lines).

    Shadow and lock lists are built only for metadata-maintaining
    configurations; the shadow list carries ``metadata_words`` shadow lines
    per 64-byte data line, exactly as the timed shadow µops would touch them.
    """
    mw = config.metadata_words
    step = 64 // mw
    shadow: List[int] = []
    locks: List[int] = []
    lines = list(workload.working_set_lines())
    if config.enabled:
        add = shadow.append
        for line in lines:
            for i in range(mw):
                data = line + i * step
                add(SHADOW_BIT | ((data & ~7) * mw) % _M47)
        locks = list(workload.lock_locations())
    return WorkingSetArrays(shadow=shadow, locks=locks, data=lines)


# -- working-set installation ----------------------------------------------------------
#
# The working-set pre-touch stands in for the paper's long (10M-instruction)
# warm-up windows, whose only observable effect at the measured window is the
# steady-state *residency* of the working set: data resident in the upper
# levels, metadata behind it, everything tracked by the shared L3.  Rather
# than replaying hundreds of thousands of demand accesses through the full
# miss/prefetch machinery (which dominated sweep wall-clock time), the warm
# state is installed directly: every warmed block enters the inclusive L3,
# and each bounded structure (L1D, L2, the lock location cache, the TLBs)
# receives the most-recent fill its capacity can hold, in access order, so
# LRU order matches a sequential touch.  Both the compiled and the reference
# pipeline warm through this one implementation.

def _install_tail(cache, pieces, limit: Optional[int]) -> None:
    """Install the last ``limit`` addresses of ``pieces`` (concatenated, in
    order) into ``cache``; ``None`` installs everything."""
    if limit is not None:
        tail = []
        remaining = limit
        for piece in reversed(pieces):
            if remaining <= 0:
                break
            if len(piece) > remaining:
                piece = piece[len(piece) - remaining:]
            tail.append(piece)
            remaining -= len(piece)
        pieces = tuple(reversed(tail))
    sets = cache._sets
    num_sets = cache._num_sets
    block_bytes = cache._block_bytes
    assoc = cache._assoc
    sets_get = sets.get
    for piece in pieces:
        for address in piece:
            block = address // block_bytes
            index = block % num_sets
            cache_set = sets_get(index)
            if cache_set is None:
                cache_set = sets[index] = OrderedDict()
            if block in cache_set:
                cache_set.move_to_end(block)
            else:
                if len(cache_set) >= assoc:
                    cache_set.popitem(last=False)
                cache_set[block] = False


def _fill_tlb(tlb, pieces) -> None:
    """Leave ``tlb`` holding the last distinct pages of ``pieces`` in LRU order."""
    capacity = tlb.config.entries
    page_bytes = tlb.config.page_bytes
    seen = set()
    newest_first: List[int] = []
    add = newest_first.append
    for piece in reversed(pieces):
        for i in range(len(piece) - 1, -1, -1):
            page = piece[i] // page_bytes
            if page not in seen:
                seen.add(page)
                add(page)
                if len(newest_first) >= capacity:
                    break
        else:
            continue
        break
    entries = tlb._entries
    for page in reversed(newest_first):
        entries[page] = True


def warm_working_set(hierarchy, ws: WorkingSetArrays,
                     config: WatchdogConfig) -> None:
    """Install the working set into a fresh hierarchy (see module comment).

    Access order mirrors the §9.1-style pre-touch: shadow lines first (when
    metadata is maintained and not idealized), then lock locations, then
    data lines — so data ends up most-recently-used in every level.
    """
    if hierarchy._tc_dirty():
        hierarchy._tc_sync()  # installs below mutate the Python structures
    shadow = ws.shadow if (config.enabled and not config.ideal_shadow) else ()
    locks = ws.locks if config.enabled else ()
    data = ws.data
    lock_en = hierarchy.config.lock_cache_enabled
    if lock_en and locks:
        l1_pieces = (shadow, data)
        lock_pieces = (locks,)
    else:
        l1_pieces = (shadow, locks, data)
        lock_pieces = ()
    all_pieces = (shadow, locks, data)

    l1 = hierarchy.l1d
    l2 = hierarchy.l2
    lib = None
    if hierarchy.native_override is not False:
        from repro.native import _timecore
        lib = _timecore.load()
    if lib is not None:
        # TLBs first (cheap Python fills picked up by the state export),
        # then the cache installs run natively on the persistent arenas —
        # so the state never needs flattening after the bulk install.
        _fill_tlb(hierarchy.dtlb, l1_pieces)
        if lock_pieces:
            _fill_tlb(hierarchy.lock_tlb, lock_pieces)
        state = _timecore.attach_state(lib, hierarchy)
        _timecore.cache_fill(state, "l1", l1, l1_pieces,
                             l1._num_sets * l1._assoc)
        _timecore.cache_fill(state, "l2", l2, all_pieces,
                             l2._num_sets * l2._assoc)
        _timecore.cache_fill(state, "l3", hierarchy.l3, all_pieces, None)
        if lock_pieces:
            lock_cache = hierarchy.lock_cache
            _timecore.cache_fill(state, "lk", lock_cache, lock_pieces,
                                 lock_cache._num_sets * lock_cache._assoc)
    else:
        _install_tail(l1, l1_pieces, l1._num_sets * l1._assoc)
        _install_tail(l2, all_pieces, l2._num_sets * l2._assoc)
        _install_tail(hierarchy.l3, all_pieces, None)
        _fill_tlb(hierarchy.dtlb, l1_pieces)
        if lock_pieces:
            lock_cache = hierarchy.lock_cache
            _install_tail(lock_cache, lock_pieces,
                          lock_cache._num_sets * lock_cache._assoc)
            _fill_tlb(hierarchy.lock_tlb, lock_pieces)
    hierarchy.reset_stats()


def warm_trace(hierarchy, warm: WarmStream, config: WatchdogConfig) -> None:
    """Replay the warm-up trace accesses (see :meth:`Simulator._warm_hierarchy`).

    Unlike the working-set pre-touch, the warm-up *trace* is part of the
    simulated methodology and replays through the full demand machinery
    (misses, prefetchers, TLBs) — only its statistics are discarded.
    """
    hierarchy.warm_batch(warm.addrs, warm.specs)
    hierarchy.reset_stats()
