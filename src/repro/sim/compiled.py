"""Compiled µop streams: template-based trace expansion into packed arrays.

The object pipeline (:class:`~repro.sim.trace.TraceExpander` feeding
:meth:`~repro.pipeline.core.OutOfOrderCore.simulate`) allocates a
``MicroOp``/``TimedUop`` pair for every µop of every (benchmark ×
configuration) cell and re-runs decode + injection per dynamic instance.
This module replaces that hot path with a three-step compilation:

1. **Tokenization** (configuration-independent, once per trace): every
   dynamic op is reduced to the *identity* of its static instruction —
   opcode, register operands, access size, pointer hint — plus its dynamic
   annotations (effective address, lock location, misprediction flag).
   Identities are interned, so a trace becomes four parallel arrays.

2. **Template expansion** (once per identity per configuration class): the
   real injector expands each unique identity once
   (:func:`repro.core.uop_injection.compile_template`); the expansion is
   lowered into numeric per-µop tuples (kind/queue/branch flags, µop cost,
   register *slots* instead of ``ArchReg`` objects) plus address-derivation
   rules from :data:`repro.sim.trace.ANNOTATION_RULES`.

3. **Stream packing** (once per configuration class): replaying the token
   arrays through the template table yields one :class:`CompiledStream` —
   shared per-µop tuples, a latency prefill, and the packed memory-access
   sequence (address/spec/position) the hierarchy replays in a single batch
   — along with exact injection/pointer/page statistics reconstructed from
   per-template deltas.

Two Watchdog configurations that inject identically (same ``enabled``,
pointer-identification mode, bounds mode and copy-elimination setting) share
one compiled stream: the *class key* deliberately excludes knobs that only
affect timing (lock cache, idealized shadow).  The array scheduler that
consumes these streams lives in
:meth:`repro.pipeline.core.OutOfOrderCore.simulate_compiled`; the golden
equivalence tests pin it bit-for-bit to the object pipeline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.config import WatchdogConfig
from repro.core.pointer_id import PointerIdStats
from repro.core.uop_injection import InjectionStats, compile_template
from repro.errors import ProgramError
from repro.isa.instructions import Instruction
from repro.isa.microops import UopKind, WATCHDOG_KINDS
from repro.isa.registers import RegClass, reg_slot
from repro.memory.address_space import SHADOW_BIT
from repro.memory.hierarchy import (
    PORT_CODES,
    PORT_DATA,
    PORT_LOCK,
    PORT_SHADOW,
    SPEC_USE_LATENCY,
    SPEC_WRITE,
)
from repro.memory.pages import PageAccountant
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import (
    FLAG_BRANCH,
    FLAG_LQ,
    FLAG_MISPREDICT,
    FLAG_SQ,
)
from repro.sim.trace import (
    ADDR_DATA,
    ADDR_FRAME_PUSH,
    ADDR_FRAME_POP,
    ADDR_LOCK,
    ADDR_NONE,
    ADDR_SHADOW,
    ANNOTATION_RULES,
    DynamicOp,
    HIERARCHY_LATENCY_KINDS,
    LQ_KINDS,
    SQ_KINDS,
    TraceExpander,
)

_M47 = 1 << 47

#: Uniform warm-up access specs (read accesses on each port).
SPEC_DATA_READ = PORT_DATA
SPEC_LOCK_READ = PORT_LOCK
SPEC_SHADOW_READ = PORT_SHADOW


class CompiledTraceUnsupported(ProgramError):
    """The trace contains a shape the compiled pipeline does not pack.

    Raised for instructions with more than two register (or metadata)
    sources; the simulator falls back to the reference object pipeline.
    """


def stream_class_key(config: WatchdogConfig) -> tuple:
    """The configuration-equivalence class of a compiled stream.

    Exactly the knobs that change which µops are injected and how they are
    annotated; lock-cache presence, idealized shadow and halt-on-violation
    only affect *timing* and therefore share streams.
    """
    return (config.enabled, config.pointer_identification,
            config.bounds_mode, config.copy_elimination)


# -- tokenization ---------------------------------------------------------------------

class TraceTokens:
    """A dynamic trace reduced to interned instruction identities."""

    __slots__ = ("tids", "addrs", "locks", "mis", "insts")

    def __init__(self, tids, addrs, locks, mis, insts):
        self.tids = tids
        self.addrs = addrs
        self.locks = locks
        self.mis = mis
        #: One representative :class:`Instruction` per identity.
        self.insts = insts

    def __len__(self) -> int:
        return len(self.tids)


def tokenize(trace: Iterable[DynamicOp]) -> TraceTokens:
    """Intern a dynamic trace into parallel (tid, address, lock, mis) arrays.

    The identity key covers every instruction field that can influence µop
    injection or timing annotation under the default (stateless) pointer
    identifiers: opcode, register operands, access size and pointer hint.
    Immediates, labels and comments are deliberately excluded — they never
    reach the timing model.
    """
    key_to_tid = {}
    insts: List[Instruction] = []
    tids: List[int] = []
    addrs: List[Optional[int]] = []
    locks: List[Optional[int]] = []
    mis: List[bool] = []
    get = key_to_tid.get
    int_class = RegClass.INT
    append_tid = tids.append
    append_addr = addrs.append
    append_lock = locks.append
    append_mis = mis.append

    for dop in trace:
        inst = dop.instruction
        srcs = inst.srcs
        n = len(srcs)
        if n > 2:
            raise CompiledTraceUnsupported(
                f"instruction has {n} register sources (compiled limit: 2)")
        dest = inst.dest
        key = inst.opcode.code
        if dest is None:
            key = key * 33
        else:
            key = key * 33 + (dest.index + 1 if dest.regclass is int_class
                              else dest.index + 17)
        if n:
            reg = srcs[0]
            key = key * 33 + (reg.index + 1 if reg.regclass is int_class
                              else reg.index + 17)
            if n == 2:
                reg = srcs[1]
                key = key * 33 + (reg.index + 1 if reg.regclass is int_class
                                  else reg.index + 17)
            else:
                key = key * 33
        else:
            key = key * 1089
        key = (key * 9 + inst.size) * 4 + inst.pointer_hint.code
        tid = get(key)
        if tid is None:
            tid = key_to_tid[key] = len(insts)
            insts.append(inst)
        append_tid(tid)
        append_addr(dop.address)
        append_lock(dop.lock_address)
        append_mis(dop.mispredicted)
    return TraceTokens(tids, addrs, locks, mis, insts)


# -- compiled artifacts ----------------------------------------------------------------

@dataclass(eq=False)
class CompiledStream:
    """One trace × configuration-class, packed for the array scheduler."""

    #: Per-µop constant tuples ``(flags, cost, dest, s0, s1, md, ms0, ms1)``;
    #: register operands are scoreboard slots (-1 = none).  Tuples are shared
    #: between instances of the same template — the list holds references.
    uops: List[tuple]
    #: Per-µop execution latency prefill (fixed latencies; load positions are
    #: overwritten from the hierarchy batch during simulation).
    lat_template: List[int]
    #: Packed memory-access sequence in program order.
    mem_pos: List[int]
    mem_addr: List[int]
    mem_spec: List[int]
    # -- exact whole-stream statistics -------------------------------------------
    total_uops: int
    injected_uops: int
    macro_instructions: int
    memory_accesses: int
    injection: InjectionStats
    pointer: PointerIdStats
    pages: PageAccountant
    class_key: tuple
    #: Which core replays this stream (0 in single-core simulation; a
    #: multi-core mix relabels each member's stream with its core index).
    core: int = 0

    def __len__(self) -> int:
        return len(self.uops)


@dataclass(eq=False)
class WarmStream:
    """The warm-up portion as a bare hierarchy access sequence.

    Contains, interleaved in program order, every address-carrying µop of the
    expanded warm-up trace plus (for metadata-maintaining classes) the shadow
    lines of each data access — exactly what
    :meth:`Simulator._warm_hierarchy` replays, without the µop objects.
    """

    addrs: List[int]
    specs: List[int]

    def __len__(self) -> int:
        return len(self.addrs)


@dataclass(eq=False)
class WorkingSetArrays:
    """Precomputed working-set warm-up addresses (one per class)."""

    shadow: List[int]
    locks: List[int]
    data: List[int]


@dataclass(eq=False)
class BundleStreams:
    """Everything one (bundle × configuration-class) replay needs."""

    measured: CompiledStream
    warm: Optional[WarmStream]
    working_set: WorkingSetArrays


class _Template:
    """Numeric expansion of one instruction identity under one class."""

    __slots__ = ("uops", "mis_uops", "lats", "n", "addr_ops", "size",
                 "stat_delta", "pointer_delta", "total_cost", "injected_cost")


# -- the compiler ----------------------------------------------------------------------

class StreamCompiler:
    """Compiles tokenized traces for one configuration class and machine."""

    def __init__(self, config: WatchdogConfig,
                 machine: Optional[MachineConfig] = None):
        self.config = config
        self.machine = machine or MachineConfig()
        #: The template expansions run through a real expander so the
        #: statistics deltas (injection counts, pointer classification,
        #: copy-elimination ablation) are captured by construction.
        self.expander = TraceExpander(config)
        self.injector = self.expander.injector
        layout = self.expander.shadow.layout
        self._frame_floor = layout.lock_region.base
        self._frame_start = self._frame_floor + layout.lock_region.size // 2
        self._mw = config.metadata_words
        self._shadow_step = 64 // self._mw

    # -- template lowering ---------------------------------------------------------
    def _full_expand(self, inst: Instruction):
        uops = self.injector._expand(inst)
        extra = self.expander._copy_elimination_ablation(inst)
        if extra:
            uops = uops + [timed.uop for timed in extra]
        return uops

    def _build_template(self, inst: Instruction) -> _Template:
        compiled = compile_template(self.injector, inst, expand=self._full_expand)
        machine = self.machine
        t = _Template()
        entries = []
        lats = []
        addr_ops = []
        injected_cost = 0
        has_branch = False
        for off, uop in enumerate(compiled.uops):
            kind = uop.kind
            flags = kind.code
            if kind in LQ_KINDS:
                flags |= FLAG_LQ
            elif kind in SQ_KINDS:
                flags |= FLAG_SQ
            elif kind is UopKind.BRANCH:
                flags |= FLAG_BRANCH
                has_branch = True
            if uop.is_injected:
                injected_cost += uop.uop_cost
            dest = -1
            if uop.dest is not None and kind not in WATCHDOG_KINDS:
                dest = reg_slot(uop.dest)
            srcs = uop.srcs
            meta_srcs = uop.meta_srcs
            if len(srcs) > 2 or len(meta_srcs) > 2:
                raise CompiledTraceUnsupported(
                    f"µop {uop} has more than two (meta) sources")
            s0 = reg_slot(srcs[0]) if srcs else -1
            s1 = reg_slot(srcs[1]) if len(srcs) == 2 else -1
            md = reg_slot(uop.meta_dest) if uop.meta_dest is not None else -1
            ms0 = reg_slot(meta_srcs[0]) if meta_srcs else -1
            ms1 = reg_slot(meta_srcs[1]) if len(meta_srcs) == 2 else -1
            entries.append((flags, uop.uop_cost, dest, s0, s1, md, ms0, ms1))
            lats.append(machine.latency_for(kind))
            rule = ANNOTATION_RULES.get(kind)
            if rule is not None:
                addr_rule, port, is_write = rule
                spec = PORT_CODES[port]
                if is_write:
                    spec |= SPEC_WRITE
                if kind in HIERARCHY_LATENCY_KINDS:
                    spec |= SPEC_USE_LATENCY
                addr_ops.append((off, addr_rule, spec))
        t.uops = tuple(entries)
        t.mis_uops = None
        if has_branch:
            t.mis_uops = tuple(
                (entry[0] | FLAG_MISPREDICT,) + entry[1:]
                if entry[0] & FLAG_BRANCH else entry
                for entry in entries)
        t.lats = tuple(lats)
        t.n = len(entries)
        t.addr_ops = tuple(addr_ops)
        t.size = int(inst.size)
        t.stat_delta = compiled.stat_delta
        t.pointer_delta = compiled.pointer_delta
        t.total_cost = compiled.total_cost
        t.injected_cost = injected_cost
        return t

    # -- measured stream ----------------------------------------------------------
    def compile_measured(self, tokens: TraceTokens) -> CompiledStream:
        """Pack the measured stream plus its exact statistics."""
        templates: List[Optional[_Template]] = [None] * len(tokens.insts)
        counts = [0] * len(tokens.insts)
        insts = tokens.insts
        build = self._build_template
        stream: List[tuple] = []
        lats: List[int] = []
        mem_pos: List[int] = []
        mem_addr: List[int] = []
        mem_spec: List[int] = []
        extend_uops = stream.extend
        extend_lats = lats.extend
        add_pos = mem_pos.append
        add_addr = mem_addr.append
        add_spec = mem_spec.append
        pages = PageAccountant()
        data_words = pages.data_words
        shadow_words = pages.shadow_words
        mw = self._mw
        mw8 = mw * 8
        frame_lock = self._frame_start
        frame_floor = self._frame_floor
        base = 0

        for tid, address, lock, mispredicted in zip(
                tokens.tids, tokens.addrs, tokens.locks, tokens.mis):
            template = templates[tid]
            if template is None:
                template = templates[tid] = build(insts[tid])
            counts[tid] += 1
            if mispredicted and template.mis_uops is not None:
                extend_uops(template.mis_uops)
            else:
                extend_uops(template.uops)
            extend_lats(template.lats)
            addr_ops = template.addr_ops
            if addr_ops:
                for off, rule, spec in addr_ops:
                    if rule == ADDR_DATA:
                        if address is not None:
                            add_pos(base + off)
                            add_addr(address)
                            add_spec(spec)
                            word = address & ~7
                            end = address + template.size
                            while word < end:
                                data_words.add(word)
                                word += 8
                    elif rule == ADDR_SHADOW:
                        if address is not None:
                            shadow = SHADOW_BIT | ((address & ~7) * mw) % _M47
                            add_pos(base + off)
                            add_addr(shadow)
                            add_spec(spec)
                            word = shadow
                            end = shadow + mw8
                            while word < end:
                                shadow_words.add(word)
                                word += 8
                    elif rule == ADDR_LOCK:
                        if lock is not None:
                            add_pos(base + off)
                            add_addr(lock)
                            add_spec(spec)
                    elif rule == ADDR_FRAME_PUSH:
                        frame_lock += 8
                        add_pos(base + off)
                        add_addr(frame_lock)
                        add_spec(spec)
                    else:  # ADDR_FRAME_POP
                        add_pos(base + off)
                        add_addr(frame_lock)
                        add_spec(spec)
                        frame_lock -= 8
                        if frame_lock < frame_floor:
                            frame_lock = frame_floor
            base += template.n

        # -- exact totals from per-template deltas -------------------------------
        stat_totals = [0] * 8
        memory_ops = pointer_ops = total_cost = injected_cost = 0
        for tid, count in enumerate(counts):
            if not count:
                continue
            template = templates[tid]
            total_cost += count * template.total_cost
            injected_cost += count * template.injected_cost
            delta = template.stat_delta
            for i in range(8):
                stat_totals[i] += count * delta[i]
            memory_ops += count * template.pointer_delta[0]
            pointer_ops += count * template.pointer_delta[1]

        return CompiledStream(
            uops=stream,
            lat_template=lats,
            mem_pos=mem_pos,
            mem_addr=mem_addr,
            mem_spec=mem_spec,
            total_uops=total_cost,
            injected_uops=injected_cost,
            macro_instructions=len(tokens.tids),
            memory_accesses=len(mem_pos),
            injection=InjectionStats(*stat_totals),
            pointer=PointerIdStats(memory_ops=memory_ops, pointer_ops=pointer_ops),
            pages=pages,
            class_key=stream_class_key(self.config),
        )

    # -- warm-up stream ------------------------------------------------------------
    def compile_warm(self, tokens: TraceTokens) -> WarmStream:
        """Lower the warm-up trace to its bare hierarchy access sequence.

        Mirrors :meth:`Simulator._warm_hierarchy`: each address-carrying µop
        becomes one access; for metadata-maintaining classes every data
        access is followed by its ``metadata_words`` shadow lines (skipped
        at replay under the ideal-shadow ablation, which filters all shadow
        accesses).
        """
        templates: List[Optional[_Template]] = [None] * len(tokens.insts)
        insts = tokens.insts
        build = self._build_template
        addrs: List[int] = []
        specs: List[int] = []
        add_addr = addrs.append
        add_spec = specs.append
        mw = self._mw
        step = self._shadow_step
        warm_shadow = self.config.enabled
        frame_lock = self._frame_start
        frame_floor = self._frame_floor

        for tid, address, lock in zip(tokens.tids, tokens.addrs, tokens.locks):
            template = templates[tid]
            if template is None:
                template = templates[tid] = build(insts[tid])
            for off, rule, spec in template.addr_ops:
                if rule == ADDR_DATA:
                    if address is not None:
                        add_addr(address)
                        add_spec(spec)
                        if warm_shadow:
                            line = address & ~63
                            for i in range(mw):
                                data = line + i * step
                                add_addr(SHADOW_BIT | ((data & ~7) * mw) % _M47)
                                add_spec(SPEC_SHADOW_READ)
                elif rule == ADDR_SHADOW:
                    if address is not None:
                        add_addr(SHADOW_BIT | ((address & ~7) * mw) % _M47)
                        add_spec(spec)
                elif rule == ADDR_LOCK:
                    if lock is not None:
                        add_addr(lock)
                        add_spec(spec)
                elif rule == ADDR_FRAME_PUSH:
                    frame_lock += 8
                    add_addr(frame_lock)
                    add_spec(spec)
                else:  # ADDR_FRAME_POP
                    add_addr(frame_lock)
                    add_spec(spec)
                    frame_lock -= 8
                    if frame_lock < frame_floor:
                        frame_lock = frame_floor
        return WarmStream(addrs=addrs, specs=specs)

    # -- working set ---------------------------------------------------------------
    def working_set_arrays(self, workload) -> WorkingSetArrays:
        """Precompute the working-set warm-up address lists for this class."""
        return working_set_arrays(workload, self.config)


def working_set_arrays(workload, config: WatchdogConfig) -> WorkingSetArrays:
    """The three working-set address lists (shadow lines, locks, data lines).

    Shadow and lock lists are built only for metadata-maintaining
    configurations; the shadow list carries ``metadata_words`` shadow lines
    per 64-byte data line, exactly as the timed shadow µops would touch them.
    """
    mw = config.metadata_words
    step = 64 // mw
    shadow: List[int] = []
    locks: List[int] = []
    lines = list(workload.working_set_lines())
    if config.enabled:
        add = shadow.append
        for line in lines:
            for i in range(mw):
                data = line + i * step
                add(SHADOW_BIT | ((data & ~7) * mw) % _M47)
        locks = list(workload.lock_locations())
    return WorkingSetArrays(shadow=shadow, locks=locks, data=lines)


# -- working-set installation ----------------------------------------------------------
#
# The working-set pre-touch stands in for the paper's long (10M-instruction)
# warm-up windows, whose only observable effect at the measured window is the
# steady-state *residency* of the working set: data resident in the upper
# levels, metadata behind it, everything tracked by the shared L3.  Rather
# than replaying hundreds of thousands of demand accesses through the full
# miss/prefetch machinery (which dominated sweep wall-clock time), the warm
# state is installed directly: every warmed block enters the inclusive L3,
# and each bounded structure (L1D, L2, the lock location cache, the TLBs)
# receives the most-recent fill its capacity can hold, in access order, so
# LRU order matches a sequential touch.  Both the compiled and the reference
# pipeline warm through this one implementation.

def _install_tail(cache, pieces, limit: Optional[int]) -> None:
    """Install the last ``limit`` addresses of ``pieces`` (concatenated, in
    order) into ``cache``; ``None`` installs everything."""
    if limit is not None:
        tail = []
        remaining = limit
        for piece in reversed(pieces):
            if remaining <= 0:
                break
            if len(piece) > remaining:
                piece = piece[len(piece) - remaining:]
            tail.append(piece)
            remaining -= len(piece)
        pieces = tuple(reversed(tail))
    sets = cache._sets
    num_sets = cache._num_sets
    block_bytes = cache._block_bytes
    assoc = cache._assoc
    sets_get = sets.get
    for piece in pieces:
        for address in piece:
            block = address // block_bytes
            index = block % num_sets
            cache_set = sets_get(index)
            if cache_set is None:
                cache_set = sets[index] = OrderedDict()
            if block in cache_set:
                cache_set.move_to_end(block)
            else:
                if len(cache_set) >= assoc:
                    cache_set.popitem(last=False)
                cache_set[block] = False


def _fill_tlb(tlb, pieces) -> None:
    """Leave ``tlb`` holding the last distinct pages of ``pieces`` in LRU order."""
    capacity = tlb.config.entries
    page_bytes = tlb.config.page_bytes
    seen = set()
    newest_first: List[int] = []
    add = newest_first.append
    for piece in reversed(pieces):
        for i in range(len(piece) - 1, -1, -1):
            page = piece[i] // page_bytes
            if page not in seen:
                seen.add(page)
                add(page)
                if len(newest_first) >= capacity:
                    break
        else:
            continue
        break
    entries = tlb._entries
    for page in reversed(newest_first):
        entries[page] = True


def warm_working_set(hierarchy, ws: WorkingSetArrays,
                     config: WatchdogConfig) -> None:
    """Install the working set into a fresh hierarchy (see module comment).

    Access order mirrors the §9.1-style pre-touch: shadow lines first (when
    metadata is maintained and not idealized), then lock locations, then
    data lines — so data ends up most-recently-used in every level.
    """
    if hierarchy._tc_dirty():
        hierarchy._tc_sync()  # installs below mutate the Python structures
    shadow = ws.shadow if (config.enabled and not config.ideal_shadow) else ()
    locks = ws.locks if config.enabled else ()
    data = ws.data
    lock_en = hierarchy.config.lock_cache_enabled
    if lock_en and locks:
        l1_pieces = (shadow, data)
        lock_pieces = (locks,)
    else:
        l1_pieces = (shadow, locks, data)
        lock_pieces = ()
    all_pieces = (shadow, locks, data)

    l1 = hierarchy.l1d
    l2 = hierarchy.l2
    lib = None
    if hierarchy.native_override is not False:
        from repro.native import _timecore
        lib = _timecore.load()
    if lib is not None:
        # TLBs first (cheap Python fills picked up by the state export),
        # then the cache installs run natively on the persistent arenas —
        # so the state never needs flattening after the bulk install.
        _fill_tlb(hierarchy.dtlb, l1_pieces)
        if lock_pieces:
            _fill_tlb(hierarchy.lock_tlb, lock_pieces)
        state = _timecore.attach_state(lib, hierarchy)
        _timecore.cache_fill(state, "l1", l1, l1_pieces,
                             l1._num_sets * l1._assoc)
        _timecore.cache_fill(state, "l2", l2, all_pieces,
                             l2._num_sets * l2._assoc)
        _timecore.cache_fill(state, "l3", hierarchy.l3, all_pieces, None)
        if lock_pieces:
            lock_cache = hierarchy.lock_cache
            _timecore.cache_fill(state, "lk", lock_cache, lock_pieces,
                                 lock_cache._num_sets * lock_cache._assoc)
    else:
        _install_tail(l1, l1_pieces, l1._num_sets * l1._assoc)
        _install_tail(l2, all_pieces, l2._num_sets * l2._assoc)
        _install_tail(hierarchy.l3, all_pieces, None)
        _fill_tlb(hierarchy.dtlb, l1_pieces)
        if lock_pieces:
            lock_cache = hierarchy.lock_cache
            _install_tail(lock_cache, lock_pieces,
                          lock_cache._num_sets * lock_cache._assoc)
            _fill_tlb(hierarchy.lock_tlb, lock_pieces)
    hierarchy.reset_stats()


def warm_trace(hierarchy, warm: WarmStream, config: WatchdogConfig) -> None:
    """Replay the warm-up trace accesses (see :meth:`Simulator._warm_hierarchy`).

    Unlike the working-set pre-touch, the warm-up *trace* is part of the
    simulated methodology and replays through the full demand machinery
    (misses, prefetchers, TLBs) — only its statistics are discarded.
    """
    hierarchy.warm_batch(warm.addrs, warm.specs)
    hierarchy.reset_stats()
