"""Dynamic traces and trace expansion.

A *dynamic trace* is the sequence of macro-instruction instances a workload
executes, each annotated with the concrete effective address it touched (for
memory operations), the lock location of the object it points into (so check
µops know which lock word they read), and a branch-misprediction flag.  Both
the synthetic SPEC-like workloads and the functional machine produce dynamic
traces in this form.

The :class:`TraceExpander` turns a dynamic trace into the *timed µop* stream
consumed by the out-of-order timing model: baseline µops plus the Watchdog
µops injected by :class:`repro.core.uop_injection.UopInjector`, each tagged
with the address and cache port it accesses (data cache, shadow space, or the
lock location cache/port).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.core.config import WatchdogConfig
from repro.core.pointer_id import PointerIdentifier
from repro.core.uop_injection import UopInjector
from repro.isa.instructions import Instruction, Opcode, SINGLE_SOURCE_PROPAGATORS
from repro.isa.microops import MicroOp, UopKind
from repro.memory.address_space import AddressSpaceLayout
from repro.memory.pages import PageAccountant
from repro.memory.shadow import ShadowSpace
from repro.memory.hierarchy import PortKind


@dataclass
class DynamicOp:
    """One dynamic macro-instruction instance in a workload trace."""

    instruction: Instruction
    #: Effective address for memory operations.
    address: Optional[int] = None
    #: Lock location of the allocation the address falls in (what the check
    #: µop will read).  ``None`` means the access is through a register with
    #: no metadata (e.g. unannotated integer address).
    lock_address: Optional[int] = None
    #: Whether a branch instance was mispredicted (charged a refill penalty).
    mispredicted: bool = False


@dataclass
class TimedUop:
    """A µop annotated with the memory behaviour the timing model needs."""

    uop: MicroOp
    address: Optional[int] = None
    port: PortKind = PortKind.DATA
    is_write: bool = False
    mispredicted_branch: bool = False


# -- timing-annotation rules (the numeric form of :meth:`TraceExpander._annotate`) --
#
# For a fixed configuration the annotation of a µop is a pure function of its
# *kind*: which address it presents to the hierarchy (the dynamic op's data
# address, its shadow translation, its lock location, or the synthetic frame
# lock stack), which L1 port it uses, and whether it writes.  The compiled
# trace pipeline consumes these tables instead of re-running the if-chain per
# dynamic µop instance.

#: Address-derivation rules.
ADDR_NONE = 0      #: no memory access
ADDR_DATA = 1      #: the dynamic op's effective address
ADDR_SHADOW = 2    #: shadow translation of the effective address
ADDR_LOCK = 3      #: the dynamic op's lock location
ADDR_FRAME_PUSH = 4  #: push onto the synthetic frame-lock stack, then use
ADDR_FRAME_POP = 5   #: use the synthetic frame-lock stack top, then pop

#: kind -> (addr_rule, port, is_write).  Kinds not listed access no memory.
ANNOTATION_RULES = {
    UopKind.LOAD: (ADDR_DATA, PortKind.DATA, False),
    UopKind.STORE: (ADDR_DATA, PortKind.DATA, True),
    UopKind.SHADOW_LOAD: (ADDR_SHADOW, PortKind.SHADOW, False),
    UopKind.SHADOW_STORE: (ADDR_SHADOW, PortKind.SHADOW, True),
    UopKind.CHECK: (ADDR_LOCK, PortKind.LOCK, False),
    UopKind.SETIDENT: (ADDR_LOCK, PortKind.LOCK, True),
    UopKind.GETIDENT: (ADDR_LOCK, PortKind.LOCK, False),
    UopKind.LOCK_PUSH: (ADDR_FRAME_PUSH, PortKind.LOCK, True),
    UopKind.LOCK_POP: (ADDR_FRAME_POP, PortKind.LOCK, True),
}

#: Kinds whose execution latency comes from the memory hierarchy (loads).
HIERARCHY_LATENCY_KINDS = frozenset({
    UopKind.LOAD, UopKind.SHADOW_LOAD, UopKind.CHECK, UopKind.GETIDENT,
})

#: Kinds that access the hierarchy off the critical path (stores): the access
#: updates cache state and statistics but the µop retires at its fixed
#: latency.
STORE_ACCESS_KINDS = frozenset({
    UopKind.STORE, UopKind.SHADOW_STORE, UopKind.SETIDENT,
    UopKind.LOCK_PUSH, UopKind.LOCK_POP,
})

#: Kinds occupying the load queue / store queue.
LQ_KINDS = frozenset({UopKind.LOAD, UopKind.SHADOW_LOAD})
SQ_KINDS = frozenset({UopKind.STORE, UopKind.SHADOW_STORE})


class TraceExpander:
    """Expands a dynamic macro trace into the timed µop stream."""

    def __init__(self, config: WatchdogConfig,
                 pointer_identifier: Optional[PointerIdentifier] = None,
                 layout: Optional[AddressSpaceLayout] = None,
                 pages: Optional[PageAccountant] = None):
        self.config = config
        self.injector = UopInjector(config, pointer_identifier)
        self.shadow = ShadowSpace(layout or AddressSpaceLayout(),
                                  metadata_words=config.metadata_words)
        self.pages = pages
        #: Synthetic lock-stack pointer for LOCK_PUSH/LOCK_POP addresses.
        self._frame_lock = self.shadow.layout.lock_region.base + \
            self.shadow.layout.lock_region.size // 2

    # -- per-µop annotation -------------------------------------------------------
    def _annotate(self, uop: MicroOp, dop: DynamicOp) -> TimedUop:
        kind = uop.kind
        if kind in (UopKind.LOAD, UopKind.STORE):
            if self.pages is not None and dop.address is not None:
                self.pages.touch_data(dop.address, int(uop.size))
            return TimedUop(uop=uop, address=dop.address, port=PortKind.DATA,
                            is_write=kind is UopKind.STORE)
        if kind in (UopKind.SHADOW_LOAD, UopKind.SHADOW_STORE):
            shadow_addr = None
            if dop.address is not None:
                shadow_addr = self.shadow.shadow_address(dop.address)
                if self.pages is not None:
                    self.pages.touch_shadow(shadow_addr,
                                            size=self.config.metadata_words * 8)
            return TimedUop(uop=uop, address=shadow_addr, port=PortKind.SHADOW,
                            is_write=kind is UopKind.SHADOW_STORE)
        if kind in (UopKind.CHECK, UopKind.BOUNDS_CHECK):
            # The bounds comparison itself needs no memory access; only the
            # identifier check reads the lock location (§8).
            if kind is UopKind.BOUNDS_CHECK:
                return TimedUop(uop=uop, address=None, port=PortKind.DATA)
            return TimedUop(uop=uop, address=dop.lock_address, port=PortKind.LOCK)
        if kind in (UopKind.LOCK_PUSH, UopKind.LOCK_POP):
            if kind is UopKind.LOCK_PUSH:
                self._frame_lock += 8
            address = self._frame_lock
            if kind is UopKind.LOCK_POP:
                self._frame_lock = max(self._frame_lock - 8,
                                       self.shadow.layout.lock_region.base)
            return TimedUop(uop=uop, address=address, port=PortKind.LOCK, is_write=True)
        if kind in (UopKind.SETIDENT, UopKind.GETIDENT):
            return TimedUop(uop=uop, address=dop.lock_address, port=PortKind.LOCK,
                            is_write=kind is UopKind.SETIDENT)
        if kind is UopKind.BRANCH:
            return TimedUop(uop=uop, mispredicted_branch=dop.mispredicted)
        return TimedUop(uop=uop)

    def _copy_elimination_ablation(self, inst: Instruction) -> List[TimedUop]:
        """Extra metadata-copy µops when rename-time elimination is disabled."""
        if self.config.copy_elimination or not self.config.enabled:
            return []
        if inst.opcode not in SINGLE_SOURCE_PROPAGATORS:
            return []
        if inst.dest is None or not inst.dest.is_int:
            return []
        copy = MicroOp(kind=UopKind.META_SELECT, meta_dest=inst.dest,
                       meta_srcs=inst.srcs, injected=True, macro=inst,
                       macro_seq=self.injector.last_macro_seq)
        self.injector.stats.other_uops += 1
        return [TimedUop(uop=copy)]

    # -- expansion ------------------------------------------------------------------
    def expand(self, trace: Iterable[DynamicOp]) -> List[TimedUop]:
        """Expand a full dynamic trace into timed µops."""
        return list(self.iter_expand(trace))

    def iter_expand(self, trace: Iterable[DynamicOp]) -> Iterator[TimedUop]:
        """Lazily expand a dynamic trace (memory-friendly for long traces)."""
        for dop in trace:
            for uop in self.injector.expand(dop.instruction):
                yield self._annotate(uop, dop)
            for extra in self._copy_elimination_ablation(dop.instruction):
                yield extra

    @property
    def stats(self):
        """Injection statistics accumulated while expanding (Figure 8)."""
        return self.injector.stats

    @property
    def pointer_id_stats(self):
        """Pointer-identification statistics (Figure 5)."""
        return self.injector.pointer_identifier.stats
