"""Simulation harness: traces, statistics, sampling, and the top-level simulator.

* :mod:`repro.sim.trace` — dynamic-trace representation (macro-level
  :class:`DynamicOp`, timed µops) and the expander that turns a dynamic trace
  into the µop stream the timing model replays,
* :mod:`repro.sim.stats` — statistic helpers (geometric mean, overhead math),
* :mod:`repro.sim.sampling` — the periodic-sampling schedule of §9.1,
* :mod:`repro.sim.results` — result records shared by experiments and benches,
* :mod:`repro.sim.simulator` — the top-level object gluing workload,
  Watchdog configuration, functional execution and timing together.
"""

from repro.sim.trace import DynamicOp, TimedUop, TraceExpander
from repro.sim.stats import geometric_mean, percent_overhead, OverheadReport
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.sim.results import BenchmarkResult, ExperimentResult


def __getattr__(name):
    # ``Simulator``/``SimulationOutcome`` are imported lazily: the simulator
    # module depends on the pipeline package, which itself imports
    # :mod:`repro.sim.trace`; importing it eagerly here would create an import
    # cycle when the pipeline package is loaded first.
    if name in ("Simulator", "SimulationOutcome"):
        from repro.sim import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")

__all__ = [
    "DynamicOp",
    "TimedUop",
    "TraceExpander",
    "geometric_mean",
    "percent_overhead",
    "OverheadReport",
    "SamplingConfig",
    "SamplingSchedule",
    "BenchmarkResult",
    "ExperimentResult",
    "Simulator",
    "SimulationOutcome",
]
