"""Simulation harness: traces, statistics, sampling, and the top-level simulator.

* :mod:`repro.sim.trace` — dynamic-trace representation (macro-level
  :class:`DynamicOp`, timed µops) and the expander that turns a dynamic trace
  into the µop stream the timing model replays,
* :mod:`repro.sim.stats` — statistic helpers (geometric mean, overhead math),
* :mod:`repro.sim.sampling` — the periodic-sampling schedule of §9.1,
* :mod:`repro.sim.results` — result records shared by experiments and benches
  (including the flat, cacheable :class:`CellResult`),
* :mod:`repro.sim.spec` — declarative experiment grids
  (:class:`ExperimentSettings`, :class:`RunRequest`, :class:`ExperimentSpec`),
* :mod:`repro.sim.cache` — the persistent content-addressed result cache,
* :mod:`repro.sim.engine` — the sweep engine executing grids serially or on
  a process pool with shared trace generation,
* :mod:`repro.sim.simulator` — the top-level object gluing workload,
  Watchdog configuration, functional execution and timing together.
"""

from repro.sim.trace import DynamicOp, TimedUop, TraceExpander
from repro.sim.stats import geometric_mean, percent_overhead, OverheadReport
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.sim.results import BenchmarkResult, CellResult, ExperimentResult
from repro.sim.spec import (
    BASELINE_LABEL,
    ExperimentSettings,
    ExperimentSpec,
    RunRequest,
)

#: Attributes resolved lazily (see ``__getattr__``) — the modules behind them
#: depend on the pipeline/workload packages, which themselves import
#: :mod:`repro.sim.trace`; importing them eagerly here would create an import
#: cycle when the pipeline package is loaded first.
_LAZY = {
    "Simulator": "repro.sim.simulator",
    "SimulationOutcome": "repro.sim.simulator",
    "SweepEngine": "repro.sim.engine",
    "ResultCache": "repro.sim.cache",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")

__all__ = [
    "DynamicOp",
    "TimedUop",
    "TraceExpander",
    "geometric_mean",
    "percent_overhead",
    "OverheadReport",
    "SamplingConfig",
    "SamplingSchedule",
    "BenchmarkResult",
    "CellResult",
    "ExperimentResult",
    "BASELINE_LABEL",
    "ExperimentSettings",
    "ExperimentSpec",
    "RunRequest",
    "Simulator",
    "SimulationOutcome",
    "SweepEngine",
    "ResultCache",
]
