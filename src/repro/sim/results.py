"""Result records shared by the experiment drivers and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class BenchmarkResult:
    """One (benchmark, configuration) timing outcome."""

    benchmark: str
    configuration: str
    cycles: int
    total_uops: int
    injected_uops: int
    memory_accesses: int
    lock_cache_misses: int = 0
    l1d_misses: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.total_uops / self.cycles if self.cycles else 0.0

    def overhead_vs(self, baseline: "BenchmarkResult") -> float:
        """Slowdown relative to ``baseline`` as a fraction."""
        return self.cycles / baseline.cycles - 1.0


@dataclass
class ExperimentResult:
    """A full experiment: per-benchmark values for one or more series."""

    name: str
    #: series name -> benchmark name -> value (meaning depends on experiment).
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: free-form summary numbers (e.g. averages) keyed by label.
    summary: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_value(self, series: str, benchmark: str, value: float) -> None:
        self.series.setdefault(series, {})[benchmark] = value

    def add_summary(self, label: str, value: float) -> None:
        self.summary[label] = value

    def benchmarks(self) -> List[str]:
        names: List[str] = []
        for values in self.series.values():
            for benchmark in values:
                if benchmark not in names:
                    names.append(benchmark)
        return names

    def format_table(self, value_format: str = "{:>10.1f}") -> str:
        """Render the experiment as a text table (one row per benchmark)."""
        series_names = list(self.series)
        header = f"{'benchmark':<12}" + "".join(f"{name:>18}" for name in series_names)
        lines = [header]
        for benchmark in self.benchmarks():
            row = f"{benchmark:<12}"
            for name in series_names:
                value = self.series[name].get(benchmark)
                cell = value_format.format(value) if value is not None else " " * 10
                row += f"{cell:>18}"
            lines.append(row)
        if self.summary:
            lines.append("-" * len(header))
            for label, value in self.summary.items():
                lines.append(f"{label:<30} {value:.3f}")
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)
