"""Result records shared by the experiment drivers and the benchmark harness.

Five records cover the pipeline end to end:

* :class:`CellResult` — the flat, JSON-serializable summary of one simulated
  (benchmark, configuration) cell.  It carries every statistic the figure
  drivers read (cycles, µop breakdown, pointer classification, shadow
  footprint), so a cached cell is indistinguishable from a fresh simulation,
* :class:`BenchmarkResult` — one timing outcome in benchmark-harness form,
* :class:`ExperimentResult` — a whole figure/table: per-benchmark series
  plus headline summary numbers,
* :class:`MetricCheck` / :class:`ExperimentReport` / :class:`SuiteReport` —
  the registry runner's paper-vs-measured verdicts: each summary metric
  compared against the paper's expected value within a tolerance, per
  experiment and for a whole ``repro run`` invocation (with engine/cell
  provenance), which is what the CLI serializes as its JSON artifact.

Two further records carry the resilience layer's verdicts:

* :class:`DegradationEvent` — a structured note that the run silently fell
  back from its fastest path (a native kernel failed to build or self-test,
  a crashed worker was retried with kernels disabled, a corrupt cache entry
  was quarantined).  The run still produced correct numbers — these events
  exist so "correct but 6× slower" can never pass unnoticed,
* :class:`CellFailure` — one (benchmark, configuration) cell that exhausted
  its retry budget.  The suite completes every other cell and exits
  non-zero; the failure record says which cell, after how many attempts,
  and why.

All of them round-trip through plain dicts (``to_dict``/``from_dict``) so the
persistent result cache and any external tooling can store them as JSON.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple


def _from_known_fields(cls, data: Dict[str, Any]):
    """Construct a dataclass from a dict, ignoring unknown (future) keys."""
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in data.items() if key in known})


@dataclass(frozen=True)
class DegradationEvent:
    """One silent-fallback moment, made loud.

    ``kind`` names the recovery path that fired (``kernel-unavailable``,
    ``native-disabled-retry``, ``worker-crash``, ``cell-timeout``,
    ``worker-error``, ``cache-corrupt``); ``subject`` is what degraded (a
    kernel name, a ``benchmark/label`` cell, a cache entry path);
    ``attempt`` is the 0-based attempt the event occurred on, when it is
    tied to one; ``detail`` is the human-readable reason.
    """

    kind: str
    subject: str
    attempt: Optional[int] = None
    detail: str = ""

    def describe(self) -> str:
        where = f"{self.subject}"
        if self.attempt is not None:
            where += f" (attempt {self.attempt})"
        text = f"{self.kind}: {where}"
        if self.detail:
            text += f" — {self.detail}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DegradationEvent":
        return _from_known_fields(cls, data)


@dataclass(frozen=True)
class CellFailure:
    """A cell that exhausted its retry budget and was quarantined.

    The sweep kept going — every other cell completed — but this
    (benchmark, configuration) coordinate has no real result.  ``attempts``
    counts executions tried (1 + retries), ``reason`` is the terminal
    failure class (``worker-crash``, ``cell-timeout``, ``worker-error``),
    ``detail`` the last error text.
    """

    benchmark: str
    label: str
    attempts: int
    reason: str
    detail: str = ""

    def describe(self) -> str:
        text = (f"{self.benchmark}/{self.label}: {self.reason} after "
                f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}")
        if self.detail:
            text += f" — {self.detail}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellFailure":
        return _from_known_fields(cls, data)


@dataclass(frozen=True)
class CoreResult:
    """Per-core block of a multi-core mix cell.

    One record per core of a :class:`MultiCoreSimulator` run: the core's own
    timing counters plus its attributed share of the shared-level traffic
    (L2/L3/lock-cache hits and misses charged to the core that issued the
    access — the cache objects themselves only hold cross-core totals).
    """

    core: int
    benchmark: str
    cycles: int = 0
    total_uops: int = 0
    injected_uops: int = 0
    macro_instructions: int = 0
    memory_accesses: int = 0
    l1d_misses: int = 0
    lock_cache_misses: int = 0
    # -- attributed shared-level traffic ------------------------------------------
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    lock_evictions: int = 0
    lock_writebacks: int = 0

    @property
    def ipc(self) -> float:
        return self.total_uops / self.cycles if self.cycles else 0.0

    def lock_cache_mpki(self) -> float:
        """This core's attributed lock-cache misses per 1000 µops."""
        return 1000.0 * self.lock_cache_misses / max(self.total_uops, 1)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoreResult":
        return _from_known_fields(cls, data)


@dataclass(frozen=True)
class CellResult:
    """Flat summary of one simulated (benchmark, configuration) cell.

    Collapses :class:`~repro.sim.simulator.SimulationOutcome`'s live objects
    (timing result, injection stats, pointer-classification stats, page
    accountant) into plain counters.  Everything the figure drivers derive is
    available as a property, and the record is immutable, hashable and
    JSON-serializable — the currency of the sweep engine and its cache.
    """

    benchmark: str
    configuration: str
    # -- timing ------------------------------------------------------------------
    cycles: int = 0
    total_uops: int = 0
    injected_uops: int = 0
    macro_instructions: int = 0
    memory_accesses: int = 0
    lock_cache_misses: int = 0
    l1d_misses: int = 0
    # -- µop injection breakdown (Figure 8) ---------------------------------------
    baseline_uops: int = 0
    check_uops: int = 0
    bounds_check_uops: int = 0
    pointer_load_uops: int = 0
    pointer_store_uops: int = 0
    select_uops: int = 0
    frame_uops: int = 0
    other_uops: int = 0
    # -- pointer classification (Figure 5) ----------------------------------------
    memory_ops: int = 0
    pointer_ops: int = 0
    # -- shadow footprint (Figure 10) ---------------------------------------------
    data_words: int = 0
    shadow_words: int = 0
    data_pages: int = 0
    shadow_pages: int = 0
    # -- resilience ----------------------------------------------------------------
    #: True for the all-zero placeholder of a quarantined cell (see
    #: :meth:`failed_cell`).  Placeholders keep extractors total — every
    #: benchmark still has a row — while poisoning derived metrics (NaN
    #: overheads) so a failed cell can never silently pass a paper check.
    failed: bool = False
    # -- multi-core ----------------------------------------------------------------
    #: Per-core blocks of a mix cell (empty for single-core cells).  The
    #: top-level counters then aggregate across cores with ``cycles`` being
    #: the *slowest* core's cycles — the wall time of the multiprogrammed
    #: run.
    cores: Tuple[CoreResult, ...] = ()

    @classmethod
    def failed_cell(cls, benchmark: str, configuration: str) -> "CellResult":
        """The placeholder standing in for a quarantined cell's result."""
        return cls(benchmark=benchmark, configuration=configuration,
                   failed=True)

    @classmethod
    def from_outcome(cls, outcome, label: Optional[str] = None) -> "CellResult":
        """Summarize a :class:`SimulationOutcome` into a flat cell record."""
        timing = outcome.timing
        injection = outcome.injection
        pointer = outcome.pointer_stats
        pages = outcome.pages
        return cls(
            benchmark=outcome.benchmark,
            configuration=label if label is not None else outcome.configuration,
            cycles=timing.cycles if timing else 0,
            total_uops=timing.total_uops if timing else 0,
            injected_uops=timing.injected_uops if timing else 0,
            macro_instructions=timing.macro_instructions if timing else 0,
            memory_accesses=timing.memory_accesses if timing else 0,
            lock_cache_misses=timing.lock_cache_misses if timing else 0,
            l1d_misses=timing.l1d_misses if timing else 0,
            baseline_uops=injection.baseline_uops if injection else 0,
            check_uops=injection.check_uops if injection else 0,
            bounds_check_uops=injection.bounds_check_uops if injection else 0,
            pointer_load_uops=injection.pointer_load_uops if injection else 0,
            pointer_store_uops=injection.pointer_store_uops if injection else 0,
            select_uops=injection.select_uops if injection else 0,
            frame_uops=injection.frame_uops if injection else 0,
            other_uops=injection.other_uops if injection else 0,
            memory_ops=pointer.memory_ops if pointer else 0,
            pointer_ops=pointer.pointer_ops if pointer else 0,
            data_words=pages.data_word_count if pages else 0,
            shadow_words=pages.shadow_word_count if pages else 0,
            data_pages=pages.data_page_count if pages else 0,
            shadow_pages=pages.shadow_page_count if pages else 0,
            cores=tuple(getattr(outcome, "cores", ()) or ()),
        )

    # -- derived values (what the figure drivers read) ------------------------------
    @property
    def ipc(self) -> float:
        return self.total_uops / self.cycles if self.cycles else 0.0

    def overhead_vs(self, baseline: "CellResult") -> float:
        """Slowdown relative to ``baseline`` as a fraction."""
        return self.cycles / baseline.cycles - 1.0

    @property
    def pointer_fraction(self) -> float:
        """Fraction of memory accesses carrying metadata (Figure 5)."""
        return self.pointer_ops / self.memory_ops if self.memory_ops else 0.0

    def uop_overhead_fraction(self) -> float:
        """Injected µops as a fraction of baseline µops (Figure 8 bar height)."""
        injected = (self.check_uops + self.bounds_check_uops
                    + self.pointer_load_uops + self.pointer_store_uops
                    + self.select_uops + self.frame_uops + self.other_uops)
        return injected / self.baseline_uops if self.baseline_uops else 0.0

    def uop_breakdown(self) -> Dict[str, float]:
        """Figure 8 segments as fractions of the baseline µop count."""
        base = max(self.baseline_uops, 1)
        return {
            "checks": (self.check_uops + self.bounds_check_uops) / base,
            "pointer_loads": self.pointer_load_uops / base,
            "pointer_stores": self.pointer_store_uops / base,
            "other": (self.select_uops + self.frame_uops + self.other_uops) / base,
        }

    def word_overhead(self) -> float:
        """Shadow words as a fraction of data words (Figure 10, left bars)."""
        return self.shadow_words / self.data_words if self.data_words else 0.0

    def page_overhead(self) -> float:
        """Shadow pages as a fraction of data pages (Figure 10, right bars)."""
        return self.shadow_pages / self.data_pages if self.data_pages else 0.0

    def relabel(self, benchmark: str, configuration: str) -> "CellResult":
        """The same statistics under different grid coordinates."""
        return replace(self, benchmark=benchmark, configuration=configuration)

    # -- JSON round-trip -------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["cores"] = [core.to_dict() for core in self.cores]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        if "cores" in data:
            # Normalize to a tuple of CoreResult so the record stays hashable
            # whether it came from JSON (list of dicts) or a live copy.
            data = dict(data)
            data["cores"] = tuple(
                core if isinstance(core, CoreResult)
                else CoreResult.from_dict(core)
                for core in data["cores"] or ())
        return _from_known_fields(cls, data)


@dataclass
class BenchmarkResult:
    """One (benchmark, configuration) timing outcome."""

    benchmark: str
    configuration: str
    cycles: int
    total_uops: int
    injected_uops: int
    memory_accesses: int
    lock_cache_misses: int = 0
    l1d_misses: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.total_uops / self.cycles if self.cycles else 0.0

    def overhead_vs(self, baseline: "BenchmarkResult") -> float:
        """Slowdown relative to ``baseline`` as a fraction."""
        return self.cycles / baseline.cycles - 1.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchmarkResult":
        return _from_known_fields(cls, data)


@dataclass
class ExperimentResult:
    """A full experiment: per-benchmark values for one or more series."""

    name: str
    #: series name -> benchmark name -> value (meaning depends on experiment).
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: free-form summary numbers (e.g. averages) keyed by label.
    summary: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_value(self, series: str, benchmark: str, value: float) -> None:
        self.series.setdefault(series, {})[benchmark] = value

    def add_summary(self, label: str, value: float) -> None:
        self.summary[label] = value

    def benchmarks(self) -> List[str]:
        names: List[str] = []
        for values in self.series.values():
            for benchmark in values:
                if benchmark not in names:
                    names.append(benchmark)
        return names

    def format_table(self, value_format: str = "{:>10.1f}") -> str:
        """Render the experiment as a text table (one row per benchmark)."""
        series_names = list(self.series)
        header = f"{'benchmark':<12}" + "".join(f"{name:>18}" for name in series_names)
        lines = [header]
        for benchmark in self.benchmarks():
            row = f"{benchmark:<12}"
            for name in series_names:
                value = self.series[name].get(benchmark)
                cell = value_format.format(value) if value is not None else " " * 10
                row += f"{cell:>18}"
            lines.append(row)
        if self.summary:
            lines.append("-" * len(header))
            for label, value in self.summary.items():
                lines.append(f"{label:<30} {value:.3f}")
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)

    # -- JSON round-trip -------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "series": {series: dict(values) for series, values in self.series.items()},
            "summary": dict(self.summary),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            name=data["name"],
            series={series: dict(values)
                    for series, values in data.get("series", {}).items()},
            summary=dict(data.get("summary", {})),
            notes=list(data.get("notes", [])),
        )


@dataclass(frozen=True)
class MetricCheck:
    """One summary metric compared against the paper's expected value.

    ``measured=None`` marks a metric the experiment failed to produce at all
    (a summary key the extractor no longer emits) — always a failed check,
    since silently dropping a metric is exactly the drift the checks exist
    to catch.
    """

    metric: str
    expected: float
    tolerance: float
    measured: Optional[float] = None

    @property
    def deviation(self) -> Optional[float]:
        """Signed distance from the paper's value (``None`` if unmeasured)."""
        if self.measured is None:
            return None
        return self.measured - self.expected

    @property
    def ok(self) -> bool:
        return self.measured is not None and \
            abs(self.measured - self.expected) <= self.tolerance

    def describe(self) -> str:
        if self.measured is None:
            return (f"{self.metric}: MISSING (expected "
                    f"{self.expected:g} ±{self.tolerance:g})")
        return (f"{self.metric}: measured {self.measured:.2f} vs expected "
                f"{self.expected:g} ±{self.tolerance:g} "
                f"(deviation {self.deviation:+.2f}): "
                f"{'OK' if self.ok else 'DEVIATION'}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "expected": self.expected,
            "tolerance": self.tolerance,
            "measured": self.measured,
            "deviation": self.deviation,
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricCheck":
        return cls(metric=data["metric"], expected=data["expected"],
                   tolerance=data["tolerance"], measured=data.get("measured"))


@dataclass
class ExperimentReport:
    """One experiment's registry-runner outcome: result, checks, provenance."""

    name: str
    result: ExperimentResult
    checks: List[MetricCheck] = field(default_factory=list)
    #: Metric-extraction time only; the (shared) merged sweep's wall time is
    #: reported suite-wide as ``SuiteReport.engine["sweep_seconds"]``.
    elapsed_seconds: float = 0.0
    #: Where this experiment's cells came from: ``grid_cells`` is the size of
    #: its declared grid (0 for standalone experiments), ``unique_cells`` the
    #: number of distinct simulations backing it after label dedup.
    provenance: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "provenance": dict(self.provenance),
            "checks": [check.to_dict() for check in self.checks],
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentReport":
        return cls(
            name=data["name"],
            result=ExperimentResult.from_dict(data["result"]),
            checks=[MetricCheck.from_dict(check)
                    for check in data.get("checks", [])],
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            provenance=dict(data.get("provenance", {})),
        )


@dataclass
class SuiteReport:
    """A whole ``repro run`` invocation: per-experiment reports + engine stats.

    ``engine`` records the merged run's cell provenance — how many grid cells
    the requested experiments declared, how many unique simulations they
    collapsed to, how many actually simulated versus came from the persistent
    cache, and in how many engine batches — so the JSON artifact documents
    not just *what* was measured but *how* it was computed.
    """

    reports: List[ExperimentReport] = field(default_factory=list)
    settings: Dict[str, Any] = field(default_factory=dict)
    engine: Dict[str, Any] = field(default_factory=dict)
    #: Every silent fallback the run took (kernel unavailable, degraded
    #: retry, quarantined cache entry, ...) — advisory, does not flip ``ok``.
    degradations: List[DegradationEvent] = field(default_factory=list)
    #: Cells that exhausted their retry budget — each one fails the suite.
    cell_failures: List[CellFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.cell_failures and \
            all(report.ok for report in self.reports)

    def failures(self) -> List[ExperimentReport]:
        return [report for report in self.reports if not report.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "settings": dict(self.settings),
            "engine": dict(self.engine),
            "degradations": [event.to_dict() for event in self.degradations],
            "cell_failures": [failure.to_dict()
                              for failure in self.cell_failures],
            "experiments": [report.to_dict() for report in self.reports],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SuiteReport":
        return cls(
            reports=[ExperimentReport.from_dict(report)
                     for report in data.get("experiments", [])],
            settings=dict(data.get("settings", {})),
            engine=dict(data.get("engine", {})),
            degradations=[DegradationEvent.from_dict(event)
                          for event in data.get("degradations", [])],
            cell_failures=[CellFailure.from_dict(failure)
                           for failure in data.get("cell_failures", [])],
        )
