"""Completed/failed-cell journal backing ``repro run --resume``.

A long paper-tier suite can be interrupted — runner eviction, Ctrl-C, power
loss — with most of its cells already simulated.  The persistent result
cache already makes those cells cheap to reload, but a cache entry is keyed
on content fingerprints and says nothing about *this run's* progress, and a
run executed with ``--no-cache`` (or against a cleared cache) has nothing to
reload at all.  The journal closes that gap: an append-only JSONL file,
flushed after every cell, recording which fingerprints completed and which
failed.  On ``--resume`` the engine consults it before simulating and
replays completed cells straight from the journal record — only the failed
(or never-reached) cells are re-simulated.

Format: one JSON object per line.  The first line is a header pinning the
journal schema and the source-tree fingerprint; every later line is either

``{"status": "done", "key": ..., "benchmark": ..., "label": ..., "cell": {...}}``
    a completed cell with its full :class:`~repro.sim.results.CellResult`,
``{"status": "failed", "key": ..., "benchmark": ..., "label": ..., "reason": ...}``
    a quarantined cell (recorded so a resumed run re-simulates it).

Last status wins, so a resumed run that heals a previously-failed cell
simply appends a ``done`` record.  A truncated final line (the interrupt
arriving mid-write) is ignored.  A header whose code fingerprint no longer
matches the source tree marks the journal *stale*: simulation semantics may
have changed, so the journal is discarded and rewritten rather than served.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, TextIO

from repro.sim.cache import code_fingerprint
from repro.sim.results import CellResult

JOURNAL_SCHEMA_VERSION = 1


class RunJournal:
    """Append-only per-run record of completed and failed cells.

    ``resume=False`` (a fresh run) truncates any existing journal;
    ``resume=True`` loads the previous run's records first — serving its
    completed cells via :meth:`completed_cell` — and then appends.  Counters
    ``served`` / ``recorded`` mirror the cache's hit/store counters for the
    engine's provenance stats.
    """

    def __init__(self, path, resume: bool = False) -> None:
        self.path = Path(path)
        self.resume = resume
        self.served = 0
        self.recorded = 0
        self.stale = False
        self._done: Dict[str, CellResult] = {}
        self._failed: Dict[str, str] = {}
        self._code = code_fingerprint()
        if resume:
            self._load()
        mode = "a" if resume and not self.stale else "w"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = self.path.open(mode, encoding="utf-8")
        if mode == "w":
            self._done.clear()
            self._failed.clear()
            self._write({"journal": JOURNAL_SCHEMA_VERSION, "code": self._code})

    def _load(self) -> None:
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return
        except OSError:
            self.stale = True
            return
        header: Optional[Dict[str, Any]] = None
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A truncated tail line (interrupted mid-write) is expected;
                # a garbled line anywhere else means the file is not ours.
                if index == len(lines) - 1:
                    continue
                self.stale = True
                return
            if header is None:
                header = record
                if record.get("journal") != JOURNAL_SCHEMA_VERSION or \
                        record.get("code") != self._code:
                    self.stale = True
                    return
                continue
            key = record.get("key")
            if not key:
                continue
            if record.get("status") == "done" and "cell" in record:
                try:
                    self._done[key] = CellResult.from_dict(record["cell"])
                except (TypeError, ValueError):
                    continue
                self._failed.pop(key, None)
            elif record.get("status") == "failed":
                self._failed[key] = str(record.get("reason", ""))
                self._done.pop(key, None)
        if header is None and lines:
            self.stale = True

    def _write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush per record: the journal's whole point is surviving an
        # interrupt that arrives between cells.
        self._handle.flush()

    # -- engine API ------------------------------------------------------------------
    def completed_cell(self, key: str) -> Optional[CellResult]:
        """The previous run's result for ``key``, if it completed."""
        cell = self._done.get(key)
        if cell is not None:
            self.served += 1
        return cell

    def record_done(self, key: str, cell: CellResult) -> None:
        self._done[key] = cell
        self._failed.pop(key, None)
        self.recorded += 1
        self._write({"status": "done", "key": key, "benchmark": cell.benchmark,
                     "label": cell.configuration, "cell": cell.to_dict()})

    def record_failed(self, key: str, benchmark: str, label: str,
                      reason: str) -> None:
        self._failed[key] = reason
        self._done.pop(key, None)
        self._write({"status": "failed", "key": key, "benchmark": benchmark,
                     "label": label, "reason": reason})

    def failed_cells(self) -> Dict[str, str]:
        """Fingerprint -> reason for cells whose last record is a failure."""
        return dict(self._failed)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
