"""Deterministic fault injection for the sweep execution layer.

Every recovery path in the engine — worker-crash retry,
:class:`~concurrent.futures.process.BrokenProcessPool` rebuild, per-cell
deadlines, native-kernel degradation, cache-entry quarantine — exists because
the corresponding failure happens in the wild, where it is rare and
unreproducible.  A :class:`FaultPlan` makes those failures *scheduled*: it
names exact (subject, attempt) points at which a fault fires, so a test or a
CI leg can deterministically exercise one recovery path at a time and assert
that every healthy cell still completes bit-identically.

Four fault kinds cover the failure modes the engine recovers from:

``crash``
    The worker executing the subject benchmark dies.  In a process-pool
    worker this is a hard ``os._exit`` (the parent observes
    ``BrokenProcessPool``, exactly like an OOM kill or a segfaulting native
    kernel); in-process execution raises :class:`InjectedWorkerCrash`.
``slow``
    The worker sleeps for the spec's duration before simulating — long
    enough to trip the engine's per-cell deadline.
``corrupt``
    The result cache writes a truncated, unparseable entry for the subject
    cell, exercising the corrupt-entry quarantine on a later read.
``selftest``
    The named native kernel's load-time self-test is treated as refused,
    exercising the graceful-degradation path (pure-Python fallback plus a
    structured :class:`~repro.sim.results.DegradationEvent`).

Plans parse from a compact spec string (the ``REPRO_FAULTS`` environment
variable, which pool workers inherit) and are plain frozen dataclasses, so
the engine can also ship them inside pickled jobs::

    REPRO_FAULTS="crash:gzip:0,slow:mcf:*:2.5,corrupt:gzip/baseline,selftest:timecore"

Each comma/semicolon-separated token is ``kind:subject[:attempt][:seconds]``;
``attempt`` is a 0-based attempt index or ``*`` for every attempt (default:
``0``, i.e. fire once on the first try and let the retry succeed).
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError, ReproError

#: Environment variable carrying the active fault plan (workers inherit it).
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status an injected worker crash dies with (distinguishable from a
#: real segfault's negative signal status in worker logs).
INJECTED_CRASH_EXIT = 86

#: Default sleep for ``slow`` faults without an explicit duration: long
#: enough to exceed any sane deadline, short enough not to hang a test run
#: whose deadline enforcement is broken.
DEFAULT_SLOW_SECONDS = 30.0

KINDS = ("crash", "slow", "corrupt", "selftest")


class InjectedWorkerCrash(ReproError):
    """A ``crash`` fault fired in an in-process (non-pool-worker) execution."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *kind* fires at (*subject*, *attempt*).

    ``subject`` is a benchmark name for ``crash``/``slow``, a
    ``benchmark`` or ``benchmark/label`` cell coordinate for ``corrupt``,
    and a kernel name (``timecore``, ``ffcore``) for ``selftest``.
    ``attempt`` is ``None`` for "every attempt" (the ``*`` spelling).
    """

    kind: str
    subject: str
    attempt: Optional[int] = 0
    seconds: float = DEFAULT_SLOW_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{', '.join(KINDS)})")
        if not self.subject:
            raise ConfigurationError(f"fault {self.kind!r} needs a subject")
        if self.seconds <= 0:
            raise ConfigurationError(
                f"slow-fault duration must be positive, got {self.seconds!r}")

    def matches_attempt(self, attempt: int) -> bool:
        return self.attempt is None or self.attempt == attempt

    def token(self) -> str:
        """The spec-string token this fault round-trips through."""
        attempt = "*" if self.attempt is None else str(self.attempt)
        if self.kind == "slow":
            return f"slow:{self.subject}:{attempt}:{self.seconds:g}"
        if self.kind in ("corrupt", "selftest"):
            return f"{self.kind}:{self.subject}"
        return f"{self.kind}:{self.subject}:{attempt}"


def _parse_token(token: str) -> FaultSpec:
    parts = token.split(":")
    if len(parts) < 2:
        raise ConfigurationError(
            f"malformed fault token {token!r} (expected "
            f"kind:subject[:attempt[:seconds]])")
    kind, subject = parts[0].strip(), parts[1].strip()
    attempt: Optional[int] = 0
    seconds = DEFAULT_SLOW_SECONDS
    if len(parts) > 2 and parts[2].strip():
        raw = parts[2].strip()
        if raw == "*":
            attempt = None
        else:
            try:
                attempt = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"fault token {token!r}: attempt must be an integer "
                    f"or '*', got {raw!r}") from None
            if attempt < 0:
                raise ConfigurationError(
                    f"fault token {token!r}: attempt must be >= 0")
    if len(parts) > 3 and parts[3].strip():
        if kind != "slow":
            raise ConfigurationError(
                f"fault token {token!r}: only 'slow' takes a duration")
        try:
            seconds = float(parts[3].strip())
        except ValueError:
            raise ConfigurationError(
                f"fault token {token!r}: duration must be a number, "
                f"got {parts[3]!r}") from None
    return FaultSpec(kind=kind, subject=subject, attempt=attempt,
                     seconds=seconds)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of scheduled faults (picklable, hashable, immutable)."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        """Build a plan from a ``REPRO_FAULTS``-style spec string."""
        if not text or not text.strip():
            return cls()
        tokens = [token for token in re.split(r"[,;\s]+", text.strip())
                  if token]
        return cls(specs=tuple(_parse_token(token) for token in tokens))

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan named by ``REPRO_FAULTS`` (empty plan when unset)."""
        return cls.parse(os.environ.get(FAULTS_ENV))

    @property
    def empty(self) -> bool:
        return not self.specs

    def spec_string(self) -> str:
        """Round-trippable rendering (suitable for ``REPRO_FAULTS``)."""
        return ",".join(spec.token() for spec in self.specs)

    # -- match queries (one per fault kind) ------------------------------------------
    def crashes(self, benchmark: str, attempt: int) -> bool:
        return any(spec.kind == "crash" and spec.subject == benchmark
                   and spec.matches_attempt(attempt) for spec in self.specs)

    def slow_seconds(self, benchmark: str, attempt: int) -> Optional[float]:
        for spec in self.specs:
            if spec.kind == "slow" and spec.subject == benchmark \
                    and spec.matches_attempt(attempt):
                return spec.seconds
        return None

    def corrupts_store(self, benchmark: str, label: str) -> bool:
        return any(spec.kind == "corrupt"
                   and spec.subject in (benchmark, f"{benchmark}/{label}")
                   for spec in self.specs)

    def kernel_selftest_fails(self, kernel: str) -> bool:
        return any(spec.kind == "selftest" and spec.subject == kernel
                   for spec in self.specs)


def apply_execution_faults(plan: FaultPlan, benchmark: str,
                           attempt: int) -> None:
    """Fire the plan's ``slow``/``crash`` faults for one job execution.

    Called at the top of the worker-side job body.  A ``slow`` fault sleeps
    (so a deadline-enforcing parent observes a hung worker); a ``crash``
    fault then kills the process — ``os._exit`` when running inside a pool
    worker (the parent sees ``BrokenProcessPool``, exactly like a real
    worker death), :class:`InjectedWorkerCrash` when running in-process.
    """
    delay = plan.slow_seconds(benchmark, attempt)
    if delay is not None:
        time.sleep(delay)
    if plan.crashes(benchmark, attempt):
        if multiprocessing.parent_process() is not None:
            os._exit(INJECTED_CRASH_EXIT)
        raise InjectedWorkerCrash(
            f"injected worker crash: {benchmark} attempt {attempt}")
