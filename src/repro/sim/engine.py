"""The sweep engine: parallel, trace-sharing, cache-aware cell execution.

Execution model
---------------

The engine receives the cells of one or more
:class:`~repro.sim.spec.ExperimentSpec` grids and resolves each cell in the
cheapest way available:

1. **memo** — a cell already resolved by this engine instance is returned
   as-is (figure drivers share configurations, e.g. the ISA-assisted run
   feeds Figures 7, 8, 9, 10 and 11),
2. **cache** — with a :class:`~repro.sim.cache.ResultCache` attached,
   content-hash hits skip simulation entirely,
3. **simulate** — remaining cells are grouped *per benchmark*: one job
   generates the benchmark's dynamic trace once (as a
   :class:`~repro.workloads.bundle.TraceBundle`) and replays it under every
   requested configuration.  Jobs run serially or on a
   :class:`~concurrent.futures.ProcessPoolExecutor`.

Because the trace is a pure function of (profile, seed) and each cell is
independent, the merge is deterministic: results are keyed by (benchmark,
label) and collected in job-submission order, so a ``workers=8`` sweep is
bit-identical to a ``workers=1`` sweep.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.pipeline.config import MachineConfig
from repro.sim.cache import ResultCache
from repro.sim.results import CellResult
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import Simulator, aggregate_outcomes, resolve_pipeline
from repro.sim.spec import (
    ExperimentSpec,
    MergedGrid,
    RunRequest,
    request_content_key,
)
from repro.workloads.bundle import TraceBundle

CellKey = Tuple[str, str]


@dataclass(frozen=True)
class BenchmarkJob:
    """All still-unresolved cells of one benchmark, executed as one unit.

    Grouping by benchmark is what lets the worker generate the dynamic trace
    once and replay it across every configuration; it also keeps the
    parallel-task granularity coarse enough that pickling overhead stays
    negligible next to simulation time.
    """

    benchmark: str
    seed: int
    instructions: int
    warmup_instructions: Optional[int]
    sampling: Optional[SamplingConfig]
    #: The pipeline the engine keyed this job's cells under.  Resolved once
    #: per batch in the parent and carried into the worker so the cache key
    #: and the executing simulator can never disagree (pooled workers keep
    #: the environment they were forked with, so re-reading
    #: ``REPRO_PIPELINE`` worker-side could diverge from the parent's view).
    pipeline: str
    #: (label, config) pairs, in request order.
    cells: Tuple[Tuple[str, object], ...]


#: Per-process memo of generated trace bundles, keyed by the job's workload
#: identity.  In a worker process this persists across jobs, so even when
#: several jobs of the same benchmark land on one worker (e.g. after a cache
#: partially resolved a grid) the trace is generated at most once per process.
#: Bounded by each bundle's *live footprint* (:meth:`TraceBundle.footprint_ops`)
#: rather than entry count: that counts the raw trace streams plus the
#: compiled token/stream caches and working-set arrays a replayed bundle pins
#: — which for a long sampled bundle dwarf the traces themselves.  At the
#: default scale (20 benchmarks × 10k ops plus their compiled streams)
#: everything stays memoized across an `--all` run, while a couple of
#: million-instruction sampled bundles evict LRU-first instead of pinning
#: gigabytes in a long-lived worker.
_BUNDLES: "OrderedDict[Tuple[str, int, int, Optional[int], Optional[SamplingConfig]], TraceBundle]" = \
    OrderedDict()
_BUNDLES_OP_BUDGET = 8_000_000


def _bundle_for(job: BenchmarkJob) -> TraceBundle:
    key = (job.benchmark, job.seed, job.instructions, job.warmup_instructions,
           job.sampling)
    bundle = _BUNDLES.get(key)
    if bundle is None:
        bundle = TraceBundle.generate(job.benchmark, seed=job.seed,
                                      instructions=job.instructions,
                                      warmup_instructions=job.warmup_instructions,
                                      sampling=job.sampling)
        _BUNDLES[key] = bundle
    else:
        _BUNDLES.move_to_end(key)
    # Footprints grow after insertion (compiled streams build lazily during
    # replay), so the budget is re-evaluated against live footprints on every
    # lookup, not just when a new bundle is generated.
    total = sum(b.footprint_ops() for b in _BUNDLES.values())
    while total > _BUNDLES_OP_BUDGET and len(_BUNDLES) > 1:
        _, evicted = _BUNDLES.popitem(last=False)
        total -= evicted.footprint_ops()
    return bundle


def execute_job(job: BenchmarkJob,
                machine: Optional[MachineConfig] = None,
                sample_pool: Optional[ProcessPoolExecutor] = None) -> List[CellResult]:
    """Run every cell of one benchmark job (module-level: picklable).

    ``sample_pool`` (only ever passed for in-parent execution) enables
    per-sample parallelism for sampled bundles: the §9.1 samples of one cell
    are mutually independent, so when a batch degenerates to a single
    benchmark job — the typical paper-scale shape, one long-horizon cell —
    the otherwise idle worker pool is used *inside* the cell instead of
    across cells.
    """
    bundle = _bundle_for(job)
    if bundle.samples:
        if sample_pool is not None and len(bundle.samples) > 1:
            return _execute_sampled_job(job, bundle, machine, sample_pool)
        return _execute_sampled_serial(job, bundle, machine)
    simulator = Simulator(machine, pipeline=job.pipeline)
    results: List[CellResult] = []
    for label, config in job.cells:
        outcome = simulator.run_bundle(bundle, config)
        results.append(CellResult.from_outcome(outcome, label=label))
    return results


def _execute_sampled_serial(job: BenchmarkJob, bundle: TraceBundle,
                            machine: Optional[MachineConfig]) -> List[CellResult]:
    """Run a sampled job sample-major, releasing each sample's caches.

    Iterating samples in the outer loop (instead of configs) keeps the
    per-sample token/stream sharing across the job's configurations intact
    while letting the bundle drop each sample's compiled streams and
    working-set arrays as soon as every configuration has consumed it — so a
    long multi-figure sampled run holds at most one sample's compiled
    artifacts at a time instead of accumulating all of them.  Samples are
    mutually independent and aggregation happens per configuration in sample
    index order, so the results are bit-identical to the config-major order
    (and to a pooled per-sample fan-out).
    """
    simulator = Simulator(machine, pipeline=job.pipeline)
    per_config: List[List["SimulationOutcome"]] = [[] for _ in job.cells]
    for index in range(len(bundle.samples)):
        for slot, (_, config) in enumerate(job.cells):
            per_config[slot].append(simulator.sample_outcome(bundle, index,
                                                             config))
        bundle.release_sample_caches(index)
    return [CellResult.from_outcome(aggregate_outcomes(per_config[slot]),
                                    label=label)
            for slot, (label, _) in enumerate(job.cells)]


def _sample_slice_job(payload) -> List[List["SimulationOutcome"]]:
    """Run one sample slice of a sampled bundle under every cell config.

    The payload's bundle carries a single :class:`SampleSegment`, so only
    that sample's streams are pickled to the worker; compiled-stream caching
    inside the slice bundle still shares tokenization and per-equivalence-
    class compilation across the cell configs.
    """
    slice_bundle, configs, machine, pipeline = payload
    simulator = Simulator(machine, pipeline=pipeline)
    return [simulator.sample_outcomes(slice_bundle, config)
            for config in configs]


def _execute_sampled_job(job: BenchmarkJob, bundle: TraceBundle,
                         machine: Optional[MachineConfig],
                         sample_pool: ProcessPoolExecutor) -> List[CellResult]:
    """Fan a sampled bundle's samples across the pool, config-batched.

    Each worker task replays one sample under *all* of the job's
    configurations (tokenizing the sample once); the parent then aggregates
    per configuration in sample-index order, which is exactly the serial
    :meth:`Simulator.sample_outcomes` order — results are bit-identical to
    a ``workers=1`` run.
    """
    configs = tuple(config for _, config in job.cells)
    payloads = [(dataclasses.replace(bundle, samples=(sample,)), configs,
                 machine, job.pipeline)
                for sample in bundle.samples]
    per_config: List[List["SimulationOutcome"]] = [[] for _ in configs]
    for slice_result in sample_pool.map(_sample_slice_job, payloads):
        for index, outcomes in enumerate(slice_result):
            per_config[index].extend(outcomes)
    return [CellResult.from_outcome(aggregate_outcomes(per_config[index]),
                                    label=label)
            for index, (label, _) in enumerate(job.cells)]


class SweepEngine:
    """Executes experiment grids; the single entry point for all sweeps."""

    def __init__(self, machine: Optional[MachineConfig] = None,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self.machine = machine
        self.workers = max(int(workers or 1), 1)
        self.cache = cache
        #: Keyed by cell *content* — everything in the request except the
        #: cosmetic label.  Different labels for the same configuration
        #: (fig7's "isa-assisted" vs fig9's "with-lock-cache" vs fig11's
        #: "watchdog") share one simulation, while the same label under
        #: different configurations or scales never aliases.
        self._memo: Dict[Tuple, CellResult] = {}
        #: Cells actually simulated by this engine (excludes memo/cache hits);
        #: the cache tests and the CLI's summary line read this.
        self.simulated_cells = 0
        #: Batches that reached the simulation stage (i.e. had at least one
        #: cell neither the memo nor the cache could serve).  A merged
        #: multi-experiment run must report exactly one such batch — the
        #: registry tests assert on this.
        self.simulation_batches = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- resolution ----------------------------------------------------------------
    def run_spec(self, spec: ExperimentSpec) -> Dict[CellKey, CellResult]:
        """Execute one declarative grid; returns every cell keyed by (benchmark, label)."""
        return self.run_requests(spec.requests())

    def run_specs(self, specs: "Sequence[ExperimentSpec] | MergedGrid") \
            -> Dict[str, Dict[CellKey, CellResult]]:
        """Execute several grids as one merged, deduplicated batch.

        The specs' cells are fused into a :class:`~repro.sim.spec.MergedGrid`
        super-spec (a pre-built one is accepted as-is), resolved in a single
        :meth:`run_requests` batch (each distinct (benchmark, configuration)
        cell simulated exactly once, the worker pool saturated across figure
        boundaries), then split back into per-spec grids keyed by spec name —
        each cell-for-cell identical to what a standalone :meth:`run_spec`
        would have produced.
        """
        merged = specs if isinstance(specs, MergedGrid) \
            else MergedGrid.merge(specs)
        resolved = self.run_requests(merged.requests())
        return merged.split(resolved)

    def run_requests(self, requests: Iterable[RunRequest]) -> Dict[CellKey, CellResult]:
        """Resolve a batch of cells via memo, cache, then (parallel) simulation.

        The returned dict is keyed by grid coordinates (benchmark, label);
        should a batch contain two requests with the same coordinates but
        different inputs, the first one wins — matching the first-run-wins
        semantics of the memo.
        """
        # One resolution serves the whole batch: the memo/cache keys and the
        # jobs shipped to (possibly long-forked) workers must agree on the
        # pipeline even if the environment changes between batches.
        pipeline = resolve_pipeline()
        requests = list(requests)
        pending: List[RunRequest] = []
        seen: set = set()
        for request in requests:
            identity = self._identity(request, pipeline)
            if identity in self._memo or identity in seen:
                continue
            cached = self._load_cached(request, pipeline)
            if cached is not None:
                self._memo[identity] = cached
                continue
            seen.add(identity)
            pending.append(request)

        if pending:
            self.simulation_batches += 1
            for job, results in zip(*self._execute(self._group(pending,
                                                               pipeline))):
                # Results arrive in the job's cell order, so pairing them
                # positionally stays correct even if two cells share a label.
                for (label, config), cell in zip(job.cells, results):
                    request = RunRequest(
                        benchmark=job.benchmark, label=label, config=config,
                        instructions=job.instructions, seed=job.seed,
                        warmup_instructions=job.warmup_instructions,
                        sampling=job.sampling)
                    self._memo[self._identity(request, pipeline)] = cell
                    self.simulated_cells += 1
                    self._store_cached(request, cell, pipeline)
        resolved: Dict[CellKey, CellResult] = {}
        for request in requests:
            cell = self._memo[self._identity(request, pipeline)]
            if cell.configuration != request.label:
                cell = cell.relabel(request.benchmark, request.label)
            resolved.setdefault(request.key, cell)
        return resolved

    @staticmethod
    def _identity(request: RunRequest, pipeline: str) -> Tuple:
        """The cell's content identity: the request minus its cosmetic label.

        Derived from the same :func:`request_content_key` the multi-spec
        merge dedups by, plus the resolved pipeline — so the merge and the
        memo can never disagree about which cells are the same simulation.
        """
        return request_content_key(request) + (pipeline,)

    def cell(self, request: RunRequest) -> CellResult:
        """Resolve a single cell (memoized)."""
        return self.run_requests([request])[request.key]

    # -- caching -------------------------------------------------------------------
    def _load_cached(self, request: RunRequest,
                     pipeline: str) -> Optional[CellResult]:
        if self.cache is None:
            return None
        cell = self.cache.load(self.cache.key(request, self.machine,
                                              pipeline=pipeline))
        if cell is None:
            return None
        # Cache keys ignore the cosmetic label, so rebrand on the way out.
        return cell.relabel(request.benchmark, request.label)

    def _store_cached(self, request: RunRequest, cell: CellResult,
                      pipeline: str) -> None:
        if self.cache is None:
            return
        self.cache.store(self.cache.key(request, self.machine,
                                        pipeline=pipeline), cell)

    # -- execution -----------------------------------------------------------------
    @staticmethod
    def _group(pending: List[RunRequest], pipeline: str) -> List[BenchmarkJob]:
        """Group cells by workload identity, preserving first-seen order."""
        grouped: Dict[Tuple, List[RunRequest]] = {}
        for request in pending:
            workload_key = (request.benchmark, request.seed,
                            request.instructions, request.warmup_instructions,
                            request.sampling)
            grouped.setdefault(workload_key, []).append(request)
        return [BenchmarkJob(benchmark=key[0], seed=key[1], instructions=key[2],
                             warmup_instructions=key[3], sampling=key[4],
                             pipeline=pipeline,
                             cells=tuple((r.label, r.config) for r in members))
                for key, members in grouped.items()]

    def _execute(self, jobs: List[BenchmarkJob]) \
            -> Tuple[List[BenchmarkJob], List[List[CellResult]]]:
        if self.workers <= 1:
            return jobs, [execute_job(job, self.machine) for job in jobs]
        if len(jobs) == 1:
            # A single job cannot use the pool across benchmarks, but its
            # §9.1 samples (if any) are independent: execute in-parent and
            # let execute_job fan the samples out across the pool.
            return jobs, [execute_job(jobs[0], self.machine,
                                      sample_pool=self._pool())]
        # ``map`` yields in submission order regardless of completion order,
        # which keeps the merge deterministic.
        results = list(self._pool().map(execute_job, jobs,
                                        [self.machine] * len(jobs)))
        return jobs, results

    def _pool(self) -> ProcessPoolExecutor:
        """The engine's worker pool, created lazily and reused across batches.

        Reuse is what makes the worker-side ``_BUNDLES`` memo effective
        beyond one batch: when several figures resolve through one engine,
        later batches land on workers that already hold the traces.  The
        pool lives until :meth:`close` (or interpreter exit — stdlib atexit
        hooks join the workers).
        """
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the engine stays usable)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
