"""The sweep engine: parallel, trace-sharing, cache-aware, fault-tolerant
cell execution.

Execution model
---------------

The engine receives the cells of one or more
:class:`~repro.sim.spec.ExperimentSpec` grids and resolves each cell in the
cheapest way available:

1. **memo** — a cell already resolved by this engine instance is returned
   as-is (figure drivers share configurations, e.g. the ISA-assisted run
   feeds Figures 7, 8, 9, 10 and 11),
2. **journal** — with a :class:`~repro.sim.journal.RunJournal` attached in
   resume mode, cells the interrupted previous run completed are replayed
   from its journal records,
3. **cache** — with a :class:`~repro.sim.cache.ResultCache` attached,
   content-hash hits skip simulation entirely,
4. **simulate** — remaining cells are grouped *per benchmark*: one job
   generates the benchmark's dynamic trace once (as a
   :class:`~repro.workloads.bundle.TraceBundle`) and replays it under every
   requested configuration.  Jobs run serially or on a
   :class:`~concurrent.futures.ProcessPoolExecutor`.

Because the trace is a pure function of (profile, seed) and each cell is
independent, the merge is deterministic: results are keyed by (benchmark,
label) and collected in job-submission order, so a ``workers=8`` sweep is
bit-identical to a ``workers=1`` sweep.

Failure model
-------------

One worker dying must never sink a paper-scale suite.  Simulation rounds
run under a :class:`~repro.sim.spec.ResiliencePolicy`:

* a job whose worker **crashed** (``BrokenProcessPool``, or an injected
  :class:`~repro.sim.faults.InjectedWorkerCrash` in-process) is retried with
  exponential backoff, transparently rebuilding the broken pool; under
  ``degrade_native`` the retry disables the native kernels
  (``REPRO_TIMECORE=0`` / ``REPRO_FFCORE=0``) first, since freshly-compiled
  C is the likeliest crash source and the Python fallback is golden-equal;
  siblings whose pending futures were poisoned by the same breakage retry
  for free (``pool-collateral``) — only one job per breakage is charged,
* a pooled job exceeding the policy's per-cell **deadline** counts as
  failed-this-attempt and the pool is rebuilt (a hung worker cannot be
  cancelled, only abandoned); serial/in-parent execution cannot preempt a
  running cell, so deadlines bind only with ``workers > 1``,
* a job that exhausts ``1 + retries`` attempts is **quarantined**: each of
  its cells becomes a :class:`~repro.sim.results.CellFailure` plus an
  all-zero ``failed`` placeholder result, and every *other* cell still
  completes — the suite finishes degraded instead of dying.

Every recovery step is recorded as a
:class:`~repro.sim.results.DegradationEvent` on :attr:`SweepEngine.degradations`
so "completed, but not at full health" is visible in reports, and all of it
is deterministically testable through :mod:`repro.sim.faults`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.pipeline.config import MachineConfig
from repro.sim.cache import ResultCache, request_fingerprint
from repro.sim.faults import (
    FaultPlan,
    InjectedWorkerCrash,
    apply_execution_faults,
)
from repro.sim.journal import RunJournal
from repro.sim.results import CellFailure, CellResult, DegradationEvent
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import OutcomeAccumulator, Simulator, \
    aggregate_outcomes, resolve_pipeline
from repro.sim.spec import (
    ExperimentSpec,
    MergedGrid,
    ResiliencePolicy,
    RunRequest,
    request_content_key,
)
from repro.workloads.bundle import TraceBundle
from repro.workloads.streaming import SampleStream, use_streaming

CellKey = Tuple[str, str]


@dataclass(frozen=True)
class BenchmarkJob:
    """All still-unresolved cells of one benchmark, executed as one unit.

    Grouping by benchmark is what lets the worker generate the dynamic trace
    once and replay it across every configuration; it also keeps the
    parallel-task granularity coarse enough that pickling overhead stays
    negligible next to simulation time.
    """

    benchmark: str
    seed: int
    instructions: int
    warmup_instructions: Optional[int]
    sampling: Optional[SamplingConfig]
    #: The pipeline the engine keyed this job's cells under.  Resolved once
    #: per batch in the parent and carried into the worker so the cache key
    #: and the executing simulator can never disagree (pooled workers keep
    #: the environment they were forked with, so re-reading
    #: ``REPRO_PIPELINE`` worker-side could diverge from the parent's view).
    pipeline: str
    #: (label, config) pairs, in request order.
    cells: Tuple[Tuple[str, object], ...]
    #: 0-based execution attempt (the fault plan keys on it, and retries
    #: carry it so workers and events know which try this is).
    attempt: int = 0
    #: False on a degraded retry: the worker disables the native kernels for
    #: this job and runs the bit-identical pure-Python paths instead.
    native: bool = True
    #: The active fault-injection plan, shipped inside the job so pooled
    #: workers apply exactly the parent's plan regardless of their
    #: environment snapshot.
    faults: Optional[FaultPlan] = None


#: Per-process memo of generated trace bundles, keyed by the job's workload
#: identity.  In a worker process this persists across jobs, so even when
#: several jobs of the same benchmark land on one worker (e.g. after a cache
#: partially resolved a grid) the trace is generated at most once per process.
#: Bounded by each bundle's *live footprint* (:meth:`TraceBundle.footprint_ops`)
#: rather than entry count: that counts the raw trace streams plus the
#: compiled token/stream caches and working-set arrays a replayed bundle pins
#: — which for a long sampled bundle dwarf the traces themselves.  At the
#: default scale (20 benchmarks × 10k ops plus their compiled streams)
#: everything stays memoized across an `--all` run, while a couple of
#: million-instruction sampled bundles evict LRU-first instead of pinning
#: gigabytes in a long-lived worker.
_BUNDLES: "OrderedDict[Tuple[str, int, int, Optional[int], Optional[SamplingConfig]], TraceBundle]" = \
    OrderedDict()
_BUNDLES_OP_BUDGET = 8_000_000


def _bundle_for(job: BenchmarkJob) -> TraceBundle:
    key = (job.benchmark, job.seed, job.instructions, job.warmup_instructions,
           job.sampling)
    bundle = _BUNDLES.get(key)
    if bundle is None:
        bundle = TraceBundle.generate(job.benchmark, seed=job.seed,
                                      instructions=job.instructions,
                                      warmup_instructions=job.warmup_instructions,
                                      sampling=job.sampling)
        _BUNDLES[key] = bundle
    else:
        _BUNDLES.move_to_end(key)
    # Footprints grow after insertion (compiled streams build lazily during
    # replay), so the budget is re-evaluated against live footprints on every
    # lookup, not just when a new bundle is generated.
    total = sum(b.footprint_ops() for b in _BUNDLES.values())
    while total > _BUNDLES_OP_BUDGET and len(_BUNDLES) > 1:
        _, evicted = _BUNDLES.popitem(last=False)
        total -= evicted.footprint_ops()
    return bundle


@contextmanager
def _native_kernels_disabled():
    """Run a block with both native kernels switched off and unloaded.

    A degraded retry must actually reach the pure-Python paths: setting the
    kill-switch environment variables is not enough on its own because
    :mod:`repro.native.build` memoizes one load decision per process, so the
    memo is dropped on entry (forcing a fresh, disabled decision) and again
    on exit (so the next native job re-decides under the restored
    environment).
    """
    from repro.native import build

    saved = {name: os.environ.get(name)
             for name in ("REPRO_TIMECORE", "REPRO_FFCORE")}
    for name in saved:
        os.environ[name] = "0"
    for kernel in ("timecore", "ffcore"):
        build.forget(kernel)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        for kernel in ("timecore", "ffcore"):
            build.forget(kernel)


def execute_job(job: BenchmarkJob,
                machine: Optional[MachineConfig] = None,
                sample_pool: Optional[ProcessPoolExecutor] = None) -> List[CellResult]:
    """Run every cell of one benchmark job (module-level: picklable).

    ``sample_pool`` (only ever passed for in-parent execution) enables
    per-sample parallelism for sampled bundles: the §9.1 samples of one cell
    are mutually independent, so when a batch degenerates to a single
    benchmark job — the typical paper-scale shape, one long-horizon cell —
    the otherwise idle worker pool is used *inside* the cell instead of
    across cells.

    Fault-injection hooks fire first (a ``crash`` fault kills this process
    when it is a pool worker), and a non-``native`` job runs with the native
    kernels disabled — the degraded-retry path.
    """
    if job.faults is not None and not job.faults.empty:
        apply_execution_faults(job.faults, job.benchmark, job.attempt)
    if not job.native:
        with _native_kernels_disabled():
            return _execute_job_cells(job, machine, sample_pool)
    return _execute_job_cells(job, machine, sample_pool)


def _execute_job_cells(job: BenchmarkJob,
                       machine: Optional[MachineConfig],
                       sample_pool: Optional[ProcessPoolExecutor]) -> List[CellResult]:
    from repro.workloads.profiles import parse_mix_benchmark

    parsed = parse_mix_benchmark(job.benchmark)
    if parsed is not None:
        return _execute_mix_job(job, parsed, machine)
    if job.sampling is not None and job.warmup_instructions is None \
            and use_streaming(job.instructions, job.sampling):
        # Streaming regime: never materialize (or memoize) the full bundle —
        # samples are generated, simulated under every cell config, folded
        # and dropped one at a time, so the job's peak memory is one sample.
        if sample_pool is not None:
            return _execute_streaming_pooled(job, machine, sample_pool)
        return _execute_streaming_serial(job, machine)
    bundle = _bundle_for(job)
    if bundle.samples:
        if sample_pool is not None and len(bundle.samples) > 1:
            return _execute_sampled_job(job, bundle, machine, sample_pool)
        return _execute_sampled_serial(job, bundle, machine)
    simulator = Simulator(machine, pipeline=job.pipeline)
    results: List[CellResult] = []
    for label, config in job.cells:
        outcome = simulator.run_bundle(bundle, config)
        results.append(CellResult.from_outcome(outcome, label=label))
    return results


def _execute_mix_job(job: BenchmarkJob, parsed,
                     machine: Optional[MachineConfig]) -> List[CellResult]:
    """Run one multi-core mix job: member bundles on one shared backend.

    Each member's trace is an ordinary benchmark bundle generated under its
    deterministically derived seed, so it flows through (and shares) the
    per-process ``_BUNDLES`` memo exactly like a solo cell of the same
    (profile, derived seed) — which is what makes a one-core mix resolve to
    the very same trace a solo run would time.
    """
    from repro.sim.multicore import MultiCoreSimulator
    from repro.workloads.profiles import mix_member_seed

    mix, members = parsed
    bundles = [
        _bundle_for(dataclasses.replace(
            job, benchmark=profile_name,
            seed=mix_member_seed(mix.name, member_index, job.seed)))
        for member_index, profile_name in members]
    simulator = MultiCoreSimulator(machine, pipeline=job.pipeline)
    results: List[CellResult] = []
    for label, config in job.cells:
        outcome = simulator.run_mix(job.benchmark, bundles, config)
        results.append(CellResult.from_outcome(outcome, label=label))
    return results


def _execute_sampled_serial(job: BenchmarkJob, bundle: TraceBundle,
                            machine: Optional[MachineConfig]) -> List[CellResult]:
    """Run a sampled job sample-major, releasing each sample's caches.

    Iterating samples in the outer loop (instead of configs) keeps the
    per-sample token/stream sharing across the job's configurations intact
    while letting the bundle drop each sample's compiled streams and
    working-set arrays as soon as every configuration has consumed it — so a
    long multi-figure sampled run holds at most one sample's compiled
    artifacts at a time instead of accumulating all of them.  Samples are
    mutually independent and aggregation happens per configuration in sample
    index order, so the results are bit-identical to the config-major order
    (and to a pooled per-sample fan-out).
    """
    simulator = Simulator(machine, pipeline=job.pipeline)
    per_config: List[List["SimulationOutcome"]] = [[] for _ in job.cells]
    for index in range(len(bundle.samples)):
        for slot, (_, config) in enumerate(job.cells):
            per_config[slot].append(simulator.sample_outcome(bundle, index,
                                                             config))
        bundle.release_sample_caches(index)
    return [CellResult.from_outcome(aggregate_outcomes(per_config[slot]),
                                    label=label)
            for slot, (label, _) in enumerate(job.cells)]


def _sample_slice_job(payload) -> List[List["SimulationOutcome"]]:
    """Run one sample slice of a sampled bundle under every cell config.

    The payload's bundle carries a single :class:`SampleSegment`, so only
    that sample's streams are pickled to the worker; compiled-stream caching
    inside the slice bundle still shares tokenization and per-equivalence-
    class compilation across the cell configs.
    """
    slice_bundle, configs, machine, pipeline = payload
    simulator = Simulator(machine, pipeline=pipeline)
    return [simulator.sample_outcomes(slice_bundle, config)
            for config in configs]


def _execute_sampled_job(job: BenchmarkJob, bundle: TraceBundle,
                         machine: Optional[MachineConfig],
                         sample_pool: ProcessPoolExecutor) -> List[CellResult]:
    """Fan a sampled bundle's samples across the pool, config-batched.

    Each worker task replays one sample under *all* of the job's
    configurations (tokenizing the sample once); the parent then aggregates
    per configuration in sample-index order, which is exactly the serial
    :meth:`Simulator.sample_outcomes` order — results are bit-identical to
    a ``workers=1`` run.
    """
    configs = tuple(config for _, config in job.cells)
    payloads = [(dataclasses.replace(bundle, samples=(sample,)), configs,
                 machine, job.pipeline)
                for sample in bundle.samples]
    per_config: List[List["SimulationOutcome"]] = [[] for _ in configs]
    for slice_result in sample_pool.map(_sample_slice_job, payloads):
        for index, outcomes in enumerate(slice_result):
            per_config[index].extend(outcomes)
    return [CellResult.from_outcome(aggregate_outcomes(per_config[index]),
                                    label=label)
            for index, (label, _) in enumerate(job.cells)]


def _execute_streaming_serial(job: BenchmarkJob,
                              machine: Optional[MachineConfig]) -> List[CellResult]:
    """Run a streaming sampled job in-process, one sample in memory.

    Sample-major like :func:`_execute_sampled_serial` — each streamed
    segment is wrapped as a transient one-sample bundle, replayed under
    every cell configuration (sharing tokenization and per-equivalence-class
    compilation through the transient bundle's caches), folded into each
    configuration's accumulator, and dropped.  Aggregation order is sample
    order, so results are bit-identical to the retained-bundle paths.
    """
    simulator = Simulator(machine, pipeline=job.pipeline)
    stream = SampleStream(job.benchmark, job.seed, job.instructions,
                          job.sampling)
    accumulators = [OutcomeAccumulator() for _ in job.cells]
    for segment in stream.segments():
        bundle = stream.segment_bundle(segment)
        for slot, (_, config) in enumerate(job.cells):
            accumulators[slot].add(simulator.sample_outcome(bundle, 0, config))
    return [CellResult.from_outcome(accumulators[slot].finalize(), label=label)
            for slot, (label, _) in enumerate(job.cells)]


def _execute_streaming_pooled(job: BenchmarkJob,
                              machine: Optional[MachineConfig],
                              sample_pool: ProcessPoolExecutor) -> List[CellResult]:
    """Fan a streaming job's samples across the pool, boundedly in flight.

    Generation stays serial in the parent (the workload state is one
    continuous evolution), but simulation fans out: each streamed segment is
    submitted as a one-sample slice task, and at most ``pool width + 2``
    slices exist at once — the parent blocks on the *oldest* future before
    generating further, so completed samples are folded and freed in sample
    order (bit-identical aggregation, exactly the serial order) and peak
    memory is bounded by the in-flight window instead of the horizon.
    """
    configs = tuple(config for _, config in job.cells)
    stream = SampleStream(job.benchmark, job.seed, job.instructions,
                          job.sampling)
    accumulators = [OutcomeAccumulator() for _ in configs]
    max_inflight = (getattr(sample_pool, "_max_workers", None) or 2) + 2

    def absorb(future) -> None:
        for index, outcomes in enumerate(future.result()):
            for outcome in outcomes:
                accumulators[index].add(outcome)

    inflight: "deque" = deque()
    for segment in stream.segments():
        payload = (stream.segment_bundle(segment), configs, machine,
                   job.pipeline)
        inflight.append(sample_pool.submit(_sample_slice_job, payload))
        if len(inflight) >= max_inflight:
            absorb(inflight.popleft())
    while inflight:
        absorb(inflight.popleft())
    return [CellResult.from_outcome(accumulators[index].finalize(),
                                    label=label)
            for index, (label, _) in enumerate(job.cells)]


@dataclass
class JobOutcome:
    """How one benchmark job's retry loop ended.

    ``results`` is the job's cell results when any attempt succeeded, else
    ``None`` with ``reason``/``detail`` describing the terminal failure.
    ``attempts`` counts executions actually tried.
    """

    job: BenchmarkJob
    results: Optional[List[CellResult]]
    attempts: int
    reason: str = ""
    detail: str = ""


@dataclass
class _JobState:
    """Mutable retry-loop bookkeeping for one job."""

    job: BenchmarkJob
    attempt: int = 0
    native: bool = True
    results: Optional[List[CellResult]] = None
    failed: bool = False
    reason: str = ""
    detail: str = ""

    @property
    def pending(self) -> bool:
        return self.results is None and not self.failed

    def outcome(self) -> JobOutcome:
        # Only called once the job is terminal, so the 0-based last-attempt
        # index translates directly into the number of executions tried.
        return JobOutcome(job=self.job, results=self.results,
                          attempts=self.attempt + 1,
                          reason=self.reason, detail=self.detail)


#: Failure-status -> DegradationEvent/CellFailure ``kind``/``reason``.
_FAILURE_KINDS = {
    "crash": "worker-crash",
    "timeout": "cell-timeout",
    "error": "worker-error",
}


class SweepEngine:
    """Executes experiment grids; the single entry point for all sweeps."""

    def __init__(self, machine: Optional[MachineConfig] = None,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 policy: Optional[ResiliencePolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 journal: Optional[RunJournal] = None):
        self.machine = machine
        self.workers = max(int(workers or 1), 1)
        self.cache = cache
        self.policy = policy if policy is not None \
            else ResiliencePolicy.from_env()
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.journal = journal
        #: Keyed by cell *content* — everything in the request except the
        #: cosmetic label.  Different labels for the same configuration
        #: (fig7's "isa-assisted" vs fig9's "with-lock-cache" vs fig11's
        #: "watchdog") share one simulation, while the same label under
        #: different configurations or scales never aliases.
        self._memo: Dict[Tuple, CellResult] = {}
        #: Cells actually simulated by this engine (excludes memo/cache hits);
        #: the cache tests and the CLI's summary line read this.
        self.simulated_cells = 0
        #: Batches that reached the simulation stage (i.e. had at least one
        #: cell neither the memo nor the cache could serve).  A merged
        #: multi-experiment run must report exactly one such batch — the
        #: registry tests assert on this.
        self.simulation_batches = 0
        #: Every recovery/fallback step taken (retries, degraded retries,
        #: pool rebuilds surface as their triggering failures, quarantined
        #: cache entries) — drained into the suite report.
        self.degradations: List[DegradationEvent] = []
        #: Cells that exhausted the retry budget this engine's lifetime.
        self.cell_failures: List[CellFailure] = []
        #: Cells served from the resume journal instead of simulation.
        self.journal_cells = 0
        #: Worker pools torn down and rebuilt after a crash or deadline.
        self.pool_rebuilds = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- resolution ----------------------------------------------------------------
    def run_spec(self, spec: ExperimentSpec) -> Dict[CellKey, CellResult]:
        """Execute one declarative grid; returns every cell keyed by (benchmark, label)."""
        return self.run_requests(spec.requests())

    def run_specs(self, specs: "Sequence[ExperimentSpec] | MergedGrid") \
            -> Dict[str, Dict[CellKey, CellResult]]:
        """Execute several grids as one merged, deduplicated batch.

        The specs' cells are fused into a :class:`~repro.sim.spec.MergedGrid`
        super-spec (a pre-built one is accepted as-is), resolved in a single
        :meth:`run_requests` batch (each distinct (benchmark, configuration)
        cell simulated exactly once, the worker pool saturated across figure
        boundaries), then split back into per-spec grids keyed by spec name —
        each cell-for-cell identical to what a standalone :meth:`run_spec`
        would have produced.
        """
        merged = specs if isinstance(specs, MergedGrid) \
            else MergedGrid.merge(specs)
        resolved = self.run_requests(merged.requests())
        return merged.split(resolved)

    def run_requests(self, requests: Iterable[RunRequest]) -> Dict[CellKey, CellResult]:
        """Resolve a batch of cells via memo, journal, cache, then simulation.

        The returned dict is keyed by grid coordinates (benchmark, label);
        should a batch contain two requests with the same coordinates but
        different inputs, the first one wins — matching the first-run-wins
        semantics of the memo.

        A job that fails every attempt does **not** raise: its cells resolve
        to ``failed`` placeholder results, the failures are recorded on
        :attr:`cell_failures`, and every other cell completes normally.
        """
        # One resolution serves the whole batch: the memo/cache keys and the
        # jobs shipped to (possibly long-forked) workers must agree on the
        # pipeline even if the environment changes between batches.
        pipeline = resolve_pipeline()
        requests = list(requests)
        pending: List[RunRequest] = []
        seen: set = set()
        for request in requests:
            identity = self._identity(request, pipeline)
            if identity in self._memo or identity in seen:
                continue
            fingerprint = self._fingerprint(request, pipeline)
            served = self._load_journaled(request, fingerprint)
            if served is None:
                served = self._load_cached(request, fingerprint)
            if served is not None:
                self._memo[identity] = served
                continue
            seen.add(identity)
            pending.append(request)

        if pending:
            self.simulation_batches += 1
            for outcome in self._execute(self._group(pending, pipeline)):
                self._absorb_outcome(outcome, pipeline)
        if self.cache is not None:
            self.degradations.extend(self.cache.drain_corruption_events())
        resolved: Dict[CellKey, CellResult] = {}
        for request in requests:
            cell = self._memo[self._identity(request, pipeline)]
            if cell.configuration != request.label:
                cell = cell.relabel(request.benchmark, request.label)
            resolved.setdefault(request.key, cell)
        return resolved

    def _absorb_outcome(self, outcome: JobOutcome, pipeline: str) -> None:
        """Fold one job's terminal outcome into memo, cache and journal."""
        job = outcome.job
        if outcome.results is not None:
            for (label, config), cell in zip(job.cells, outcome.results):
                # Results arrive in the job's cell order, so pairing them
                # positionally stays correct even if two cells share a label.
                request = self._request_for(job, label, config)
                self._memo[self._identity(request, pipeline)] = cell
                self.simulated_cells += 1
                fingerprint = self._fingerprint(request, pipeline)
                if self.cache is not None and fingerprint is not None:
                    self.cache.store(fingerprint, cell)
                if self.journal is not None and fingerprint is not None:
                    self.journal.record_done(fingerprint, cell)
            return
        for label, config in job.cells:
            request = self._request_for(job, label, config)
            self._memo[self._identity(request, pipeline)] = \
                CellResult.failed_cell(job.benchmark, label)
            self.cell_failures.append(CellFailure(
                benchmark=job.benchmark, label=label,
                attempts=outcome.attempts, reason=outcome.reason,
                detail=outcome.detail))
            fingerprint = self._fingerprint(request, pipeline)
            if self.journal is not None and fingerprint is not None:
                self.journal.record_failed(fingerprint, job.benchmark, label,
                                           outcome.reason)

    @staticmethod
    def _request_for(job: BenchmarkJob, label: str, config) -> RunRequest:
        return RunRequest(
            benchmark=job.benchmark, label=label, config=config,
            instructions=job.instructions, seed=job.seed,
            warmup_instructions=job.warmup_instructions,
            sampling=job.sampling)

    @staticmethod
    def _identity(request: RunRequest, pipeline: str) -> Tuple:
        """The cell's content identity: the request minus its cosmetic label.

        Derived from the same :func:`request_content_key` the multi-spec
        merge dedups by, plus the resolved pipeline — so the merge and the
        memo can never disagree about which cells are the same simulation.
        """
        return request_content_key(request) + (pipeline,)

    def cell(self, request: RunRequest) -> CellResult:
        """Resolve a single cell (memoized)."""
        return self.run_requests([request])[request.key]

    # -- caching / journal ---------------------------------------------------------
    def _fingerprint(self, request: RunRequest,
                     pipeline: str) -> Optional[str]:
        """The cell's content hash — computed once, shared by cache+journal."""
        if self.cache is None and self.journal is None:
            return None
        return request_fingerprint(request, self.machine, pipeline=pipeline)

    def _load_journaled(self, request: RunRequest,
                        fingerprint: Optional[str]) -> Optional[CellResult]:
        if self.journal is None or fingerprint is None:
            return None
        cell = self.journal.completed_cell(fingerprint)
        if cell is None:
            return None
        self.journal_cells += 1
        return cell.relabel(request.benchmark, request.label)

    def _load_cached(self, request: RunRequest,
                     fingerprint: Optional[str]) -> Optional[CellResult]:
        if self.cache is None or fingerprint is None:
            return None
        cell = self.cache.load(fingerprint)
        if cell is None:
            return None
        # Cache keys ignore the cosmetic label, so rebrand on the way out.
        return cell.relabel(request.benchmark, request.label)

    # -- execution -----------------------------------------------------------------
    def _group(self, pending: List[RunRequest],
               pipeline: str) -> List[BenchmarkJob]:
        """Group cells by workload identity, preserving first-seen order."""
        grouped: Dict[Tuple, List[RunRequest]] = {}
        for request in pending:
            workload_key = (request.benchmark, request.seed,
                            request.instructions, request.warmup_instructions,
                            request.sampling)
            grouped.setdefault(workload_key, []).append(request)
        faults = None if self.faults.empty else self.faults
        return [BenchmarkJob(benchmark=key[0], seed=key[1], instructions=key[2],
                             warmup_instructions=key[3], sampling=key[4],
                             pipeline=pipeline,
                             cells=tuple((r.label, r.config) for r in members),
                             faults=faults)
                for key, members in grouped.items()]

    def _execute(self, jobs: List[BenchmarkJob]) -> List[JobOutcome]:
        """Run jobs to terminal outcomes under the resilience policy.

        Rounds execute every still-pending job once (pooled when the batch
        and worker count allow it, in-parent otherwise), then failures are
        triaged: within budget → retry next round (with backoff, and with
        native kernels disabled after a crash when the policy says so);
        budget exhausted → quarantine.  Job order is preserved throughout,
        so the caller's merge stays deterministic.
        """
        states = [_JobState(job=job) for job in jobs]
        while True:
            round_states = [st for st in states if st.pending]
            if not round_states:
                break
            backoff = max((self.policy.backoff_before(st.attempt)
                           for st in round_states), default=0.0)
            if backoff > 0:
                time.sleep(backoff)
            prepared = [dataclasses.replace(st.job, attempt=st.attempt,
                                            native=st.native)
                        for st in round_states]
            if self.workers > 1 and len(prepared) > 1:
                statuses = self._run_pooled_round(prepared)
            else:
                statuses = self._run_inline_round(prepared)
            for st, (status, payload) in zip(round_states, statuses):
                self._triage(st, status, payload)
        return [st.outcome() for st in states]

    def _run_pooled_round(self, prepared: List[BenchmarkJob]) \
            -> List[Tuple[str, object]]:
        """One pooled execution round; per-job ``(status, payload)`` pairs.

        Futures are awaited in submission order with the policy deadline as
        each wait's timeout, so every job gets *at least* its per-cell
        budget of wall clock (later jobs effectively more, having run in
        parallel while earlier ones were awaited).  A deadline miss or a
        broken pool poisons only this round: the pool is rebuilt afterwards,
        abandoning hung or dead workers.

        When the pool breaks, *every* pending future raises
        ``BrokenProcessPool``, but only one worker actually died.  Blaming
        them all would let a single bad cell burn its siblings' retry
        budgets (fatal at ``retries=0``).  So exactly one job per breakage
        is charged (``crash``); the rest are marked ``collateral`` and
        retry on the fresh pool for free.  Attribution by first-raiser is
        approximate — if the wrong job is charged, the real culprit's free
        retry crashes again and it gets charged then, so the total round
        count stays bounded by the summed budgets.
        """
        pool = self._pool()
        futures = [pool.submit(execute_job, job, self.machine)
                   for job in prepared]
        statuses: List[Tuple[str, object]] = []
        rebuild = False
        crash_blamed = False
        for job, future in zip(prepared, futures):
            try:
                statuses.append(("ok",
                                 future.result(
                                     timeout=self.policy.deadline_seconds)))
            except FutureTimeoutError:
                rebuild = True
                future.cancel()
                statuses.append((
                    "timeout",
                    f"exceeded the per-cell deadline of "
                    f"{self.policy.deadline_seconds:g}s"))
            except BrokenProcessPool as exc:
                rebuild = True
                if crash_blamed:
                    statuses.append(("collateral",
                                     "pool broke under a sibling job while "
                                     "this cell was pending"))
                else:
                    crash_blamed = True
                    statuses.append(("crash",
                                     str(exc) or "worker process died"))
            except Exception as exc:
                statuses.append(("error", f"{type(exc).__name__}: {exc}"))
        if rebuild:
            self._rebuild_pool()
        return statuses

    def _run_inline_round(self, prepared: List[BenchmarkJob]) \
            -> List[Tuple[str, object]]:
        """One in-parent execution round (serial, or single-job sample fan-out).

        With ``workers > 1`` and a single job the pool still serves as the
        §9.1 per-sample fan-out inside :func:`execute_job`; a sample worker
        dying there surfaces as ``BrokenProcessPool`` here and is handled
        exactly like a pooled crash.  Deadlines cannot preempt in-parent
        execution, so ``slow`` cells only time out on pooled rounds.
        """
        statuses: List[Tuple[str, object]] = []
        sample_pool = self._pool() \
            if self.workers > 1 and len(prepared) == 1 else None
        for job in prepared:
            try:
                statuses.append(("ok", execute_job(job, self.machine,
                                                   sample_pool=sample_pool)))
            except InjectedWorkerCrash as exc:
                statuses.append(("crash", str(exc)))
            except BrokenProcessPool as exc:
                self._rebuild_pool()
                sample_pool = self._pool() if sample_pool is not None else None
                statuses.append(("crash",
                                 str(exc) or "sample worker process died"))
            except Exception as exc:
                statuses.append(("error", f"{type(exc).__name__}: {exc}"))
        return statuses

    def _triage(self, st: _JobState, status: str, payload: object) -> None:
        """Absorb one attempt's result: success, retry, or quarantine."""
        if status == "ok":
            st.results = payload  # type: ignore[assignment]
            return
        if status == "collateral":
            # The pool broke under a different job while this one was
            # pending; its result was lost through no fault of its own.
            # Retry on the fresh pool without touching its budget and
            # without degrading native kernels.
            self.degradations.append(DegradationEvent(
                kind="pool-collateral", subject=st.job.benchmark,
                attempt=st.attempt, detail=str(payload)))
            return
        kind = _FAILURE_KINDS[status]
        detail = str(payload)
        self.degradations.append(DegradationEvent(
            kind=kind, subject=st.job.benchmark, attempt=st.attempt,
            detail=detail))
        if st.attempt < self.policy.retries:
            st.attempt += 1
            if status == "crash" and self.policy.degrade_native and st.native:
                # A crash with the native kernels live is most plausibly a
                # native-code fault; the Python paths are golden-equal, so
                # trade speed for survival on the remaining attempts.
                st.native = False
                self.degradations.append(DegradationEvent(
                    kind="native-disabled-retry", subject=st.job.benchmark,
                    attempt=st.attempt,
                    detail="retrying with REPRO_TIMECORE=0/REPRO_FFCORE=0 "
                           "after a worker crash"))
            return
        st.failed = True
        st.reason = kind
        st.detail = detail

    def _rebuild_pool(self) -> None:
        """Tear down a broken/hung pool so the next round gets a fresh one.

        ``shutdown(wait=False, cancel_futures=True)`` abandons the executor
        without joining (a hung worker would block a plain shutdown
        forever); still-running worker processes are then terminated
        best-effort so they don't linger as orphans.
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        self.pool_rebuilds += 1
        processes = list(getattr(executor, "_processes", {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:
                continue

    def _pool(self) -> ProcessPoolExecutor:
        """The engine's worker pool, created lazily and reused across batches.

        Reuse is what makes the worker-side ``_BUNDLES`` memo effective
        beyond one batch: when several figures resolve through one engine,
        later batches land on workers that already hold the traces.  The
        pool lives until :meth:`close` (or interpreter exit — stdlib atexit
        hooks join the workers).
        """
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool and journal (idempotent; engine stays usable)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self.journal is not None:
            self.journal.close()
