"""Statistic helpers shared by experiments and benchmarks.

The paper reports per-benchmark percentage slowdowns and geometric means
("Geo. mean" in Figures 7, 9 and 11) and arithmetic averages for the µop and
classification breakdowns (Figures 5 and 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import SimulationError


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; empty input returns 0."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise SimulationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geometric_mean_overhead(overheads: Sequence[float]) -> float:
    """Geometric mean of percentage overheads expressed as fractions.

    Overheads are slowdown ratios minus one, which may legitimately be zero
    or slightly negative for individual benchmarks; the mean is taken over
    the ratios (1 + overhead) as the paper does, then converted back.
    """
    ratios = [1.0 + o for o in overheads]
    if not ratios:
        return 0.0
    return geometric_mean(ratios) - 1.0


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average; empty input returns 0."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def percent_overhead(baseline_cycles: float, configured_cycles: float) -> float:
    """Slowdown of a configuration over its baseline, as a fraction."""
    if baseline_cycles <= 0:
        raise SimulationError("baseline cycles must be positive")
    return configured_cycles / baseline_cycles - 1.0


@dataclass
class OverheadReport:
    """Per-benchmark overhead values for one configuration (one Figure series)."""

    name: str
    overheads: Dict[str, float] = field(default_factory=dict)

    def add(self, benchmark: str, overhead: float) -> None:
        self.overheads[benchmark] = overhead

    def get(self, benchmark: str) -> float:
        return self.overheads[benchmark]

    @property
    def benchmarks(self) -> List[str]:
        return list(self.overheads)

    def geo_mean(self) -> float:
        return geometric_mean_overhead(list(self.overheads.values()))

    def mean(self) -> float:
        return arithmetic_mean(list(self.overheads.values()))

    def as_percent(self) -> Dict[str, float]:
        return {name: 100.0 * value for name, value in self.overheads.items()}

    def format_table(self, label: str = "overhead") -> str:
        """Render the series as paper-style rows (benchmark, percentage)."""
        lines = [f"{'benchmark':<12} {label:>12}"]
        for name, value in self.overheads.items():
            lines.append(f"{name:<12} {100.0 * value:>11.1f}%")
        lines.append(f"{'Geo. mean':<12} {100.0 * self.geo_mean():>11.1f}%")
        return "\n".join(lines)
