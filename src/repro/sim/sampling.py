"""Periodic sampling schedule (§9.1).

The paper simulates 2% of each benchmark using periodic samples of 10 million
instructions, each preceded by 480 million instructions of fast-forward and
10 million of cache/branch-predictor warm-up.  The reproduction's synthetic
traces are much shorter, but the same mechanism is provided (scaled down by
default) so experiments can declare which portion of a trace is measured and
which is warm-up only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SamplingConfig:
    """Lengths (in dynamic instructions) of each phase of a sampling period."""

    fast_forward: int = 480_000
    warmup: int = 10_000
    sample: int = 10_000

    def __post_init__(self) -> None:
        if self.sample <= 0 or self.warmup < 0 or self.fast_forward < 0:
            raise ConfigurationError("sampling lengths must be non-negative, sample > 0")

    @property
    def period(self) -> int:
        return self.fast_forward + self.warmup + self.sample

    @property
    def sampled_fraction(self) -> float:
        """Fraction of the program actually measured (2% in the paper)."""
        return self.sample / self.period

    @classmethod
    def paper(cls) -> "SamplingConfig":
        """The §9.1 schedule: 480M fast-forward, 10M warm-up, 10M sample."""
        return cls(fast_forward=480_000_000, warmup=10_000_000, sample=10_000_000)

    @classmethod
    def unsampled(cls, length: int) -> "SamplingConfig":
        """Measure everything (used for short functional traces)."""
        return cls(fast_forward=0, warmup=0, sample=max(length, 1))


class SamplingSchedule:
    """Classifies every instruction index into skip / warm-up / measure."""

    SKIP = "skip"
    WARMUP = "warmup"
    MEASURE = "measure"

    def __init__(self, config: SamplingConfig):
        self.config = config

    def phase_of(self, index: int) -> str:
        """Phase of the instruction at dynamic index ``index``."""
        position = index % self.config.period
        if position < self.config.fast_forward:
            return self.SKIP
        if position < self.config.fast_forward + self.config.warmup:
            return self.WARMUP
        return self.MEASURE

    def measured_indices(self, total: int) -> Iterator[int]:
        """Indices of measured instructions within ``total`` instructions."""
        for index in range(total):
            if self.phase_of(index) == self.MEASURE:
                yield index

    def windows(self, total: int) -> List[Tuple[int, int, str]]:
        """Contiguous (start, end, phase) windows covering ``[0, total)``."""
        result: List[Tuple[int, int, str]] = []
        start = 0
        current = self.phase_of(0) if total else self.MEASURE
        for index in range(1, total):
            phase = self.phase_of(index)
            if phase != current:
                result.append((start, index, current))
                start, current = index, phase
        if total:
            result.append((start, total, current))
        return result

    def measured_count(self, total: int) -> int:
        return sum(1 for _ in self.measured_indices(total))
