"""Periodic sampling schedule (§9.1).

The paper simulates 2% of each benchmark using periodic samples of 10 million
instructions, each preceded by 480 million instructions of fast-forward and
10 million of cache/branch-predictor warm-up.  The reproduction's synthetic
traces are much shorter, but the same mechanism is provided (scaled down by
default) so experiments can declare which portion of a trace is measured and
which is warm-up only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SamplingConfig:
    """Lengths (in dynamic instructions) of each phase of a sampling period."""

    fast_forward: int = 480_000
    warmup: int = 10_000
    sample: int = 10_000

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "SamplingConfig":
        """Check every phase length, raising a field-specific error."""
        for name in ("fast_forward", "warmup", "sample"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"sampling {name} must be an integer instruction count, "
                    f"got {value!r}")
        if self.fast_forward < 0:
            raise ConfigurationError(
                f"sampling fast_forward must be >= 0, got {self.fast_forward}")
        if self.warmup < 0:
            raise ConfigurationError(
                f"sampling warmup must be >= 0, got {self.warmup}")
        if self.sample <= 0:
            raise ConfigurationError(
                f"sampling sample must be > 0, got {self.sample}")
        return self

    @property
    def period(self) -> int:
        return self.fast_forward + self.warmup + self.sample

    @property
    def sampled_fraction(self) -> float:
        """Fraction of the program actually measured (2% in the paper)."""
        return self.sample / self.period

    @classmethod
    def paper(cls) -> "SamplingConfig":
        """The §9.1 schedule: 480M fast-forward, 10M warm-up, 10M sample."""
        return cls(fast_forward=480_000_000, warmup=10_000_000, sample=10_000_000)

    @classmethod
    def paper_scaled(cls, period: int = 10_000_000) -> "SamplingConfig":
        """The §9.1 proportions (96% skip, 2% warm-up, 2% measure) at an
        arbitrary period.

        The unscaled :meth:`paper` schedule has a 500M-instruction period —
        longer than the reproduction's 100M-instruction paper horizon, so it
        would measure nothing there.  This keeps the paper's 2% sampled
        fraction and its fast-forward : warm-up : sample structure while
        fitting the period to the horizon (a 100M horizon yields 10 periods
        at the default 10M period).
        """
        if period < 50:
            raise ConfigurationError(
                f"paper-scaled sampling period must be >= 50 instructions "
                f"to hold the 2% sample window, got {period}")
        sample = period // 50
        return cls(fast_forward=period - 2 * sample, warmup=sample,
                   sample=sample)

    @classmethod
    def quick(cls) -> "SamplingConfig":
        """The §9.1 schedule scaled to the reproduction's synthetic horizons.

        Keeps the paper's fast-forward : warm-up : sample *structure* but at a
        100k-instruction period (10% measured), so million-instruction
        synthetic traces yield ~10 samples while staying ≥5× cheaper to time
        than an unsampled run.
        """
        return cls(fast_forward=80_000, warmup=10_000, sample=10_000)

    @classmethod
    def unsampled(cls, length: int) -> "SamplingConfig":
        """Measure everything (used for short functional traces)."""
        return cls(fast_forward=0, warmup=0, sample=max(length, 1))

    @property
    def degenerate(self) -> bool:
        """Whether this schedule measures every instruction (no skip/warm)."""
        return self.fast_forward == 0 and self.warmup == 0


#: Named §9.1 schedules selectable from the CLI and the standalone figure
#: drivers (``--sampling``); each value is a zero-argument factory and
#: ``none`` disables sampling.
SAMPLING_SCHEDULES = {
    "none": lambda: None,
    "quick": SamplingConfig.quick,
    "paper": SamplingConfig.paper,
    "paper-scaled": SamplingConfig.paper_scaled,
}


class SamplingSchedule:
    """Classifies every instruction index into skip / warm-up / measure."""

    SKIP = "skip"
    WARMUP = "warmup"
    MEASURE = "measure"

    def __init__(self, config: SamplingConfig):
        self.config = config

    def phase_of(self, index: int) -> str:
        """Phase of the instruction at dynamic index ``index``."""
        position = index % self.config.period
        if position < self.config.fast_forward:
            return self.SKIP
        if position < self.config.fast_forward + self.config.warmup:
            return self.WARMUP
        return self.MEASURE

    def measured_indices(self, total: int) -> Iterator[int]:
        """Indices of measured instructions within ``total`` instructions."""
        for index in range(total):
            if self.phase_of(index) == self.MEASURE:
                yield index

    def windows(self, total: int) -> List[Tuple[int, int, str]]:
        """Contiguous (start, end, phase) windows covering ``[0, total)``.

        Computed per period rather than per instruction, so segmenting a
        multi-million-instruction trace costs O(periods); zero-length phases
        are omitted and adjacent same-phase windows are merged, matching a
        per-index classification via :meth:`phase_of` exactly.
        """
        config = self.config
        result: List[Tuple[int, int, str]] = []
        period_start = 0
        while period_start < total:
            warm_start = period_start + config.fast_forward
            measure_start = warm_start + config.warmup
            for start, end, phase in (
                    (period_start, warm_start, self.SKIP),
                    (warm_start, measure_start, self.WARMUP),
                    (measure_start, period_start + config.period, self.MEASURE)):
                end = min(end, total)
                if start >= end:
                    continue
                if result and result[-1][2] == phase and result[-1][1] == start:
                    result[-1] = (result[-1][0], end, phase)
                else:
                    result.append((start, end, phase))
            period_start += config.period
        return result

    def measured_count(self, total: int) -> int:
        """Number of measured instructions in ``[0, total)`` (closed form)."""
        config = self.config
        full_periods, remainder = divmod(total, config.period)
        measure_start = config.fast_forward + config.warmup
        return (full_periods * config.sample
                + max(0, remainder - measure_start))
