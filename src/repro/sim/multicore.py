"""Multi-core mix simulation.

Replays N independent compiled µop streams — one per core — against one
shared memory-system backend (L2 + inclusive L3 + lock location cache + L2
prefetcher, see :class:`~repro.memory.hierarchy.SharedMemoryBackend`) while
each core keeps its private L1, L1 prefetcher and TLBs.  This is the
multiprogrammed-mix methodology of the paper's §9.1 evaluation family:
every core runs a *different* benchmark, the cores contend for shared cache
capacity and for lock-location-cache entries, and results are attributed
per core.

Execution model
---------------

A mix run has three phases:

1. **warm** — each core's working set and warm-up trace are installed in
   core order.  Warm-up replays through the shared levels, so later cores'
   working sets evict earlier cores' lines exactly as a shared LRU would;
   statistics are reset after each core's warm-up, leaving all counters
   zero and the hierarchy state warm when measurement starts.
2. **interleaved hierarchy replay** — the cores' packed demand-access
   sequences are replayed round-robin in :data:`EPOCH_ACCESSES`-sized
   epochs.  Because both the Python and the native batch paths reset their
   per-batch TLB memos at batch boundaries (and all other state is carried
   in the hierarchy structures themselves), slicing one core's sequence
   into epochs is bit-identical to replaying it as a single batch — which
   is what pins the one-core golden invariant below.
3. **per-core scheduling** — each core's array scheduler consumes its own
   stream with the load latencies its hierarchy produced.  Scheduling is
   per-core because the cores' pipelines are independent; only the memory
   system is shared.

The mix's cycle count is the *slowest* core's cycles (the mix finishes when
its last member does); µop and miss counters sum across cores, and each
core's :class:`~repro.sim.results.CoreResult` block carries its private
counters plus its own share of the shared-level traffic (from
``HierarchyStats.shared`` — the cache objects themselves accumulate global
totals across all cores).

Golden invariant
----------------

A one-core mix is **bit-identical** to the ordinary single-core compiled
path on the same (benchmark, seed, configuration): same warm sequence, same
hierarchy state transitions (epoch slicing is state-neutral), same
scheduler pass.  The golden tests in ``tests/test_multicore.py`` pin this
for both the native and the pure-Python batch paths.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.memory.hierarchy import MemoryHierarchy, SharedMemoryBackend
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import OutOfOrderCore, _derived_hierarchy_config
from repro.sim.results import CoreResult
from repro.sim.simulator import (
    PIPELINE_COMPILED,
    SimulationOutcome,
    Simulator,
    resolve_pipeline,
)
from repro.workloads.bundle import TraceBundle

#: Demand accesses one core replays before the next core gets a turn.
#: Small enough that the cores' shared-level traffic genuinely interleaves
#: (a 4KB lock cache or an L2 set sees contention at epoch granularity, not
#: whole-benchmark granularity), large enough that per-batch call overhead
#: stays negligible.  The value is a methodology constant, not a tunable:
#: changing it changes mix results (interleaving order is simulated state).
EPOCH_ACCESSES = 2048


class MultiCoreSimulator:
    """Runs a benchmark bundle per core against one shared backend.

    Mixes exist only on the compiled pipeline: the interleaved replay works
    on packed access arrays, which the reference object-per-µop model does
    not produce.  (The compiled pipeline is golden-pinned bit-identical to
    the reference model per core, so nothing is lost.)
    """

    def __init__(self, machine: Optional[MachineConfig] = None,
                 pipeline: Optional[str] = None,
                 timecore: Optional[bool] = None):
        self.machine = machine or MachineConfig()
        if resolve_pipeline(pipeline) != PIPELINE_COMPILED:
            raise ConfigurationError(
                "multi-core mixes require the compiled pipeline "
                "(REPRO_PIPELINE=reference has no interleaved replay)")
        #: Same knob as :class:`~repro.sim.simulator.Simulator`: ``None``
        #: defers to ``REPRO_TIMECORE``, ``False`` forces the Python loops.
        self.timecore = timecore

    def run_mix(self, name: str, bundles: Sequence[TraceBundle],
                config: WatchdogConfig) -> SimulationOutcome:
        """Time one mix: ``bundles[i]`` runs on core ``i``.

        Returns an aggregate :class:`SimulationOutcome` labelled ``name``
        whose ``cores`` tuple holds one :class:`CoreResult` per member.
        """
        if not bundles:
            raise ConfigurationError("a mix needs at least one member bundle")
        for bundle in bundles:
            if bundle.samples:
                raise ConfigurationError(
                    "mix members cannot use §9.1 sampling (sampled windows "
                    "have no cross-core interleaving order)")
        streams = [bundle.compiled_streams(config, machine=self.machine)
                   for bundle in bundles]

        backend = SharedMemoryBackend(_derived_hierarchy_config(
            self.machine.hierarchy, config.lock_cache_enabled,
            config.ideal_shadow))
        cores = [OutOfOrderCore(machine=self.machine, watchdog=config,
                                hierarchy=MemoryHierarchy(shared=backend,
                                                          core_id=index),
                                timecore=self.timecore)
                 for index in range(len(bundles))]

        measured = self._warm(cores, streams, config)
        lats = [stream.lat_template[:] for stream in measured]
        self._replay_interleaved(cores, measured, lats)

        outcomes: List[SimulationOutcome] = []
        blocks: List[CoreResult] = []
        configuration = Simulator._config_name(config)
        for index, (core, stream, bundle) in enumerate(
                zip(cores, measured, bundles)):
            timing = core.schedule_compiled(stream, lats[index])
            shared = core.hierarchy.stats.shared
            # The scheduler read the *global* lock-cache miss counter; the
            # per-core quantity is this core's attributed share.  (On one
            # core the two are equal — part of the golden invariant.)
            timing = dataclasses.replace(
                timing, lock_cache_misses=shared["lock_misses"])
            outcomes.append(SimulationOutcome(
                benchmark=bundle.benchmark, configuration=configuration,
                timing=timing, injection=stream.injection,
                pointer_stats=stream.pointer, pages=stream.pages))
            blocks.append(CoreResult(
                core=index, benchmark=bundle.benchmark,
                cycles=timing.cycles, total_uops=timing.total_uops,
                injected_uops=timing.injected_uops,
                macro_instructions=timing.macro_instructions,
                memory_accesses=timing.memory_accesses,
                l1d_misses=timing.l1d_misses,
                lock_cache_misses=shared["lock_misses"],
                l2_hits=shared["l2_hits"], l2_misses=shared["l2_misses"],
                l3_hits=shared["l3_hits"], l3_misses=shared["l3_misses"],
                lock_evictions=shared["lock_evictions"],
                lock_writebacks=shared["lock_writebacks"]))

        aggregate = self._aggregate(outcomes)
        return dataclasses.replace(aggregate, benchmark=name,
                                   cores=tuple(blocks))

    # -- phases ---------------------------------------------------------------
    def _warm(self, cores, streams, config) -> List["CompiledStream"]:
        """Warm every core in core order; returns the relabelled streams.

        Warm-up is sequential, not interleaved: the §9.1 methodology warms
        each member to steady state, and a deterministic order keeps the
        shared-level LRU state reproducible.  Each member's stream is
        relabelled with its core index via
        :meth:`~repro.sim.compiled.CompiledStream.with_core`, which keeps
        the bundle-cached flat columns shared (core 0 keeps the cached
        stream object itself).
        """
        from repro.sim import compiled as compiled_mod

        measured = []
        for index, (core, bundle_streams) in enumerate(zip(cores, streams)):
            compiled_mod.warm_working_set(core.hierarchy,
                                          bundle_streams.working_set, config)
            if bundle_streams.warm is not None:
                compiled_mod.warm_trace(core.hierarchy, bundle_streams.warm,
                                        config)
            measured.append(bundle_streams.measured.with_core(index))
        return measured

    @staticmethod
    def _replay_interleaved(cores, measured, lats) -> None:
        """Round-robin the cores' demand sequences through the hierarchy.

        Access positions are absolute into each core's full latency array,
        so slicing needs no re-indexing; empty tails simply drop out of the
        rotation.  Each slice routes through ``access_batch`` and therefore
        uses the native kernel (shared arenas) or the Python loops exactly
        as a single-core batch would.  The streams' memory columns are
        int64 arrays already (slices of an ``array("q")`` are arrays), so
        no per-core copies are made.
        """
        addrs = [stream.mem_addr for stream in measured]
        specs = [stream.mem_spec for stream in measured]
        positions = [stream.mem_pos for stream in measured]
        offset = 0
        done = False
        while not done:
            done = True
            stop = offset + EPOCH_ACCESSES
            for core, a, s, p, lat in zip(cores, addrs, specs, positions,
                                          lats):
                if offset >= len(a):
                    continue
                core.hierarchy.access_batch(a[offset:stop], s[offset:stop],
                                            p[offset:stop], lat)
                if stop < len(a):
                    done = False
            offset = stop

    @staticmethod
    def _aggregate(outcomes: List[SimulationOutcome]) -> SimulationOutcome:
        """Fold per-core outcomes into the mix-level outcome.

        Counters sum (via :func:`aggregate_outcomes`), but the mix's cycle
        count is the slowest core's — the members ran concurrently, so the
        mix is done when its last member is.  A single-member mix returns
        its sole outcome untouched, which keeps the one-core golden
        invariant exact by construction rather than by float coincidence.
        """
        if len(outcomes) == 1:
            return outcomes[0]
        from repro.sim.simulator import aggregate_outcomes

        aggregate = aggregate_outcomes(outcomes)
        aggregate.timing = dataclasses.replace(
            aggregate.timing,
            cycles=max(outcome.timing.cycles for outcome in outcomes))
        return aggregate
