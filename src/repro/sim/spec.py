"""Declarative experiment specifications.

The paper's evaluation is one big (benchmark × configuration) grid.  Rather
than each figure driver hand-rolling its own run loop, a driver *describes*
its grid:

* :class:`ExperimentSettings` — the sweep-wide knobs (which benchmarks, how
  many dynamic instructions, which seed),
* :class:`RunRequest` — one cell of the grid: run *benchmark* under *config*
  for *instructions* macro-instructions with *seed*,
* :class:`ExperimentSpec` — a named set of labelled configurations over the
  settings' benchmarks, expanded to the full list of cells by
  :meth:`ExperimentSpec.requests`.

The :class:`~repro.sim.engine.SweepEngine` consumes these specs: it decides
how to execute the cells (serially, on a process pool, or straight from the
persistent result cache) — the spec stays purely descriptive.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.sim.sampling import SamplingConfig
from repro.workloads.profiles import benchmark_names

#: Default dynamic macro-instruction count per benchmark run.  Large enough
#: for cache/branch behaviour to settle, small enough to keep the full
#: 20-benchmark sweeps fast; the benchmark harness can raise it.
DEFAULT_INSTRUCTIONS = 8_000
#: Default random seed for the synthetic workloads (reproducibility).
DEFAULT_SEED = 7

#: Label of the unprotected (Watchdog-disabled) configuration every overhead
#: experiment compares against.
BASELINE_LABEL = "baseline"


def validate_sampling(sampling: Optional[SamplingConfig],
                      instructions: Optional[int] = None) -> Optional[SamplingConfig]:
    """Check a spec's sampling selection at construction time.

    Specs are built long before any cell simulates (often in a different
    process than the one that executes them), so a bad sampling value must
    surface here with a field-specific message, not as a mid-sweep failure.

    With ``instructions`` given, the schedule is additionally checked against
    the horizon: at paper scale a schedule that measures nothing cannot be
    normalized to the unsampled layout (that would materialize the whole
    horizon), so it is rejected up front with a pointer at
    :meth:`SamplingConfig.paper_scaled`.
    """
    if sampling is None:
        if instructions is not None:
            from repro.workloads.bundle import \
                MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS

            if instructions > MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS:
                raise ConfigurationError(
                    f"an unsampled run would materialize all {instructions} "
                    f"instructions; paper-scale horizons require a §9.1 "
                    f"sampling schedule (e.g. --sampling paper-scaled / "
                    f"SamplingConfig.paper_scaled())")
        return None
    if not isinstance(sampling, SamplingConfig):
        raise ConfigurationError(
            f"sampling must be a SamplingConfig or None, "
            f"got {type(sampling).__name__}: {sampling!r}")
    sampling.validate()
    if instructions is not None:
        from repro.sim.sampling import SamplingSchedule
        from repro.workloads.bundle import MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS

        if instructions > MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS and \
                (sampling.degenerate or
                 SamplingSchedule(sampling).measured_count(instructions) == 0):
            raise ConfigurationError(
                f"sampling schedule (period {sampling.period}) measures "
                f"{'everything' if sampling.degenerate else 'nothing'} "
                f"over {instructions} instructions; a paper-scale horizon "
                f"cannot fall back to unsampled execution — use "
                f"SamplingConfig.paper_scaled() or shrink the period")
    return sampling


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all figure experiments."""

    benchmarks: Tuple[str, ...] = tuple(benchmark_names())
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = DEFAULT_SEED
    #: §9.1 periodic-sampling schedule; ``None`` measures every instruction.
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        validate_sampling(self.sampling, self.instructions)

    @classmethod
    def quick(cls, benchmarks: Optional[Sequence[str]] = None,
              instructions: int = 3_000) -> "ExperimentSettings":
        """A reduced setting for unit tests (few benchmarks, short traces)."""
        chosen = tuple(benchmarks) if benchmarks else ("gzip", "mcf", "lbm", "gcc")
        return cls(benchmarks=chosen, instructions=instructions)

    @classmethod
    def paper(cls, benchmarks: Optional[Sequence[str]] = None,
              sampling: Optional[SamplingConfig] = None) -> "ExperimentSettings":
        """The paper-scale operating point: 100M-instruction horizons over
        the ``*-paper`` profiles under a horizon-fitted §9.1 schedule."""
        from repro.workloads.profiles import (
            PAPER_HORIZON_INSTRUCTIONS,
            paper_profile_names,
        )

        return cls(benchmarks=tuple(benchmarks or paper_profile_names()),
                   instructions=PAPER_HORIZON_INSTRUCTIONS,
                   sampling=sampling or SamplingConfig.paper_scaled())


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the sweep engine treats a cell whose worker crashed or hung.

    ``retries`` is the number of *re*-executions after the first failed
    attempt (so a cell runs at most ``1 + retries`` times); ``0`` quarantines
    on first failure.  ``deadline_seconds`` is the per-cell wall-clock budget
    enforced on pooled rounds (``None`` = unlimited; serial execution cannot
    preempt a running cell, so deadlines only bind with ``workers > 1``).
    ``backoff_seconds`` is the base of the exponential pause before retry
    *n* (``backoff_seconds * 2**(n-1)``) — it gives a transiently-starved
    machine (OOM pressure, a noisy co-tenant) room to recover before the
    re-execution hits it again.  ``degrade_native`` retries a crashed cell
    with the native kernels disabled (``REPRO_TIMECORE=0``/``REPRO_FFCORE=0``)
    before giving up, on the theory that a segfault in freshly-compiled C is
    the most likely crash cause; the fallback is golden-equal, just slower,
    and is reported as a :class:`~repro.sim.results.DegradationEvent`.
    """

    retries: int = 2
    deadline_seconds: Optional[float] = None
    backoff_seconds: float = 0.0
    degrade_native: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be positive, "
                f"got {self.deadline_seconds}")
        if self.backoff_seconds < 0:
            raise ConfigurationError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}")

    def backoff_before(self, attempt: int) -> float:
        """Seconds to pause before executing 0-based attempt ``attempt``."""
        if attempt <= 0 or self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * (2.0 ** (attempt - 1))

    @classmethod
    def from_env(cls) -> "ResiliencePolicy":
        """Policy overrides from ``REPRO_RETRIES`` / ``REPRO_DEADLINE`` /
        ``REPRO_BACKOFF`` / ``REPRO_DEGRADE_NATIVE`` (CLI flags win over
        these; both beat the defaults)."""
        kwargs = {}
        retries = os.environ.get("REPRO_RETRIES")
        if retries is not None:
            try:
                kwargs["retries"] = int(retries)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_RETRIES must be an integer, "
                    f"got {retries!r}") from None
        deadline = os.environ.get("REPRO_DEADLINE")
        if deadline is not None:
            try:
                kwargs["deadline_seconds"] = float(deadline)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_DEADLINE must be a number of seconds, "
                    f"got {deadline!r}") from None
        backoff = os.environ.get("REPRO_BACKOFF")
        if backoff is not None:
            try:
                kwargs["backoff_seconds"] = float(backoff)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_BACKOFF must be a number of seconds, "
                    f"got {backoff!r}") from None
        degrade = os.environ.get("REPRO_DEGRADE_NATIVE")
        if degrade is not None:
            kwargs["degrade_native"] = degrade.strip().lower() not in \
                ("0", "false", "no", "off")
        return cls(**kwargs)


def settings_from_args(args) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` from parsed CLI arguments.

    Shared by the ``repro run``/``repro bench`` CLI and the standalone
    figure drivers; ``args`` needs ``benchmarks`` (comma-separated or
    ``None``), ``quick``, ``instructions``, ``seed`` and optionally
    ``sampling`` (a :data:`~repro.sim.sampling.SAMPLING_SCHEDULES` name).
    Raises :class:`~repro.errors.ConfigurationError` for invalid
    combinations (e.g. a paper-scale horizon whose schedule measures
    nothing).
    """
    import dataclasses

    from repro.sim.sampling import SAMPLING_SCHEDULES

    benchmarks = tuple(args.benchmarks.split(",")) if args.benchmarks else None
    if args.quick:
        settings = ExperimentSettings.quick(benchmarks=benchmarks)
    elif benchmarks:
        settings = ExperimentSettings(benchmarks=benchmarks)
    else:
        settings = ExperimentSettings()
    updates = {}
    if args.instructions is not None:
        updates["instructions"] = args.instructions
    if args.seed is not None:
        updates["seed"] = args.seed
    sampling = SAMPLING_SCHEDULES[getattr(args, "sampling", "none")]()
    if sampling is not None:
        updates["sampling"] = sampling
    return dataclasses.replace(settings, **updates) if updates else settings


@dataclass(frozen=True)
class RunRequest:
    """One (benchmark, configuration) cell of an experiment grid."""

    benchmark: str
    label: str
    config: WatchdogConfig
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = DEFAULT_SEED
    #: ``None`` selects the default warm-up window (see
    #: :func:`repro.workloads.bundle.default_warmup_instructions`).
    warmup_instructions: Optional[int] = None
    #: §9.1 periodic-sampling schedule; ``None`` measures every instruction.
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        validate_sampling(self.sampling, self.instructions)
        if self.sampling is not None and self.warmup_instructions is not None:
            raise ConfigurationError(
                "warmup_instructions cannot be combined with a sampling "
                "schedule: the schedule's warm-up windows apply")
        if self.sampling is not None:
            # Mix tokens ("mix1", "mix3:2@1", …) ride in the benchmark slot;
            # sampled windows have no cross-core interleaving order, so the
            # combination must fail at spec construction, not mid-sweep.
            from repro.workloads.profiles import parse_mix_benchmark

            if parse_mix_benchmark(self.benchmark) is not None:
                raise ConfigurationError(
                    f"benchmark {self.benchmark!r} is a multi-core mix, "
                    f"which cannot be combined with a §9.1 sampling "
                    f"schedule — mixes measure their full horizon")

    @property
    def key(self) -> Tuple[str, str]:
        """The (benchmark, label) coordinates of this cell in the grid."""
        return (self.benchmark, self.label)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named (benchmark × configuration) grid, ready to be executed.

    ``configs`` is an ordered sequence of (label, configuration) pairs; label
    order is preserved so serial and parallel executions enumerate — and
    therefore report — cells identically.
    """

    name: str
    configs: Tuple[Tuple[str, WatchdogConfig], ...]
    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    #: Whether the grid additionally includes the unprotected baseline
    #: (needed by every experiment that reports slowdowns).
    include_baseline: bool = True

    @classmethod
    def build(cls, name: str, configs: Mapping[str, WatchdogConfig],
              settings: Optional[ExperimentSettings] = None,
              include_baseline: bool = True) -> "ExperimentSpec":
        """Build a spec from a label → configuration mapping."""
        return cls(name=name, configs=tuple(configs.items()),
                   settings=settings or ExperimentSettings(),
                   include_baseline=include_baseline)

    def requests(self) -> List[RunRequest]:
        """Expand the grid into its full, deterministically-ordered cell list."""
        cells: List[RunRequest] = []
        pairs: List[Tuple[str, WatchdogConfig]] = []
        if self.include_baseline:
            pairs.append((BASELINE_LABEL, WatchdogConfig.disabled()))
        pairs.extend(self.configs)
        for benchmark in self.settings.benchmarks:
            for label, config in pairs:
                cells.append(RunRequest(
                    benchmark=benchmark, label=label, config=config,
                    instructions=self.settings.instructions,
                    seed=self.settings.seed,
                    sampling=self.settings.sampling))
        return cells

    def __len__(self) -> int:
        return len(self.settings.benchmarks) * \
            (len(self.configs) + (1 if self.include_baseline else 0))


def request_content_key(request: RunRequest) -> Tuple:
    """A cell's workload+configuration identity, ignoring the cosmetic label.

    Two requests with equal content keys describe the same simulation even if
    different figures name them differently (fig7's "isa-assisted" is fig9's
    "with-lock-cache" is fig11's "watchdog").  This is the dedup key the
    multi-experiment merge uses; the engine's memo key is the same content
    plus the resolved pipeline.
    """
    return (request.benchmark, request.config, request.instructions,
            request.seed, request.warmup_instructions, request.sampling)


@dataclass(frozen=True)
class MergedGrid:
    """Several experiment grids fused into one deduplicated super-spec.

    The figure experiments overlap heavily — fig7/8/10/11 all want the
    ISA-assisted run, every slowdown figure wants the baseline — so a
    ``repro run --all`` that executed each spec separately would enumerate
    many cells several times and drain the worker pool at every figure
    boundary.  The merged grid enumerates each *distinct* cell exactly once
    (first-seen order, first-seen label), so one engine batch computes the
    union and :meth:`split` hands every spec its own fully-labelled grid
    back, cell-for-cell identical to a standalone run.
    """

    specs: Tuple[ExperimentSpec, ...]

    @classmethod
    def merge(cls, specs: Sequence[ExperimentSpec]) -> "MergedGrid":
        return cls(specs=tuple(specs))

    def requests(self) -> Tuple[RunRequest, ...]:
        """The union of all specs' cells, deduplicated by content identity.

        Computed once per instance (``requests``/``split``/``__len__`` all
        share it) and cached outside the dataclass fields, so equality and
        hashing stay defined by the specs alone.

        Raises :class:`~repro.errors.ConfigurationError` when two specs bind
        the same (benchmark, label) to *different* configurations: the
        merged resolution is keyed by grid coordinates, so such a collision
        would silently serve one spec the other's cells.  (The same label
        for the same configuration — fig7's "isa-assisted" appearing in
        several figures — merges fine.)
        """
        cached = self.__dict__.get("_requests")
        if cached is not None:
            return cached
        merged: List[RunRequest] = []
        seen: set = set()
        grid_keys: set = set()
        for spec in self.specs:
            for request in spec.requests():
                key = request_content_key(request)
                if key in seen:
                    continue
                if request.key in grid_keys:
                    # Deduplication already removed same-content duplicates,
                    # so a repeated grid key here means the same label names
                    # two different simulations across the merged specs.
                    raise ConfigurationError(
                        f"cannot merge specs: label {request.label!r} on "
                        f"benchmark {request.benchmark!r} is bound to "
                        f"different configurations by different specs; "
                        f"rename one label or run the experiments separately")
                seen.add(key)
                grid_keys.add(request.key)
                merged.append(request)
        result = tuple(merged)
        object.__setattr__(self, "_requests", result)
        return result

    def __len__(self) -> int:
        return len(self.requests())

    def total_grid_cells(self) -> int:
        """Cell count *before* dedup (what per-experiment runs would cost)."""
        return sum(len(spec) for spec in self.specs)

    def split(self, cells: Mapping) -> "dict":
        """Distribute a merged run's cells back to each spec's grid.

        ``cells`` is the resolution of :meth:`requests` keyed by those
        requests' (benchmark, label) grid coordinates — exactly what
        :meth:`repro.sim.engine.SweepEngine.run_requests` returns.  Each
        spec's grid comes back keyed and labelled as if it had been run
        standalone.
        """
        by_content = {}
        for request in self.requests():
            by_content[request_content_key(request)] = cells[request.key]
        grids: dict = {}
        for spec in self.specs:
            grid = {}
            for request in spec.requests():
                cell = by_content[request_content_key(request)]
                if cell.configuration != request.label:
                    cell = cell.relabel(request.benchmark, request.label)
                grid[request.key] = cell
            grids[spec.name] = grid
        return grids
