"""Declarative experiment specifications.

The paper's evaluation is one big (benchmark × configuration) grid.  Rather
than each figure driver hand-rolling its own run loop, a driver *describes*
its grid:

* :class:`ExperimentSettings` — the sweep-wide knobs (which benchmarks, how
  many dynamic instructions, which seed),
* :class:`RunRequest` — one cell of the grid: run *benchmark* under *config*
  for *instructions* macro-instructions with *seed*,
* :class:`ExperimentSpec` — a named set of labelled configurations over the
  settings' benchmarks, expanded to the full list of cells by
  :meth:`ExperimentSpec.requests`.

The :class:`~repro.sim.engine.SweepEngine` consumes these specs: it decides
how to execute the cells (serially, on a process pool, or straight from the
persistent result cache) — the spec stays purely descriptive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.sim.sampling import SamplingConfig
from repro.workloads.profiles import benchmark_names

#: Default dynamic macro-instruction count per benchmark run.  Large enough
#: for cache/branch behaviour to settle, small enough to keep the full
#: 20-benchmark sweeps fast; the benchmark harness can raise it.
DEFAULT_INSTRUCTIONS = 8_000
#: Default random seed for the synthetic workloads (reproducibility).
DEFAULT_SEED = 7

#: Label of the unprotected (Watchdog-disabled) configuration every overhead
#: experiment compares against.
BASELINE_LABEL = "baseline"


def validate_sampling(sampling: Optional[SamplingConfig]) -> Optional[SamplingConfig]:
    """Check a spec's sampling selection at construction time.

    Specs are built long before any cell simulates (often in a different
    process than the one that executes them), so a bad sampling value must
    surface here with a field-specific message, not as a mid-sweep failure.
    """
    if sampling is None:
        return None
    if not isinstance(sampling, SamplingConfig):
        raise ConfigurationError(
            f"sampling must be a SamplingConfig or None, "
            f"got {type(sampling).__name__}: {sampling!r}")
    return sampling.validate()


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all figure experiments."""

    benchmarks: Tuple[str, ...] = tuple(benchmark_names())
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = DEFAULT_SEED
    #: §9.1 periodic-sampling schedule; ``None`` measures every instruction.
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        validate_sampling(self.sampling)

    @classmethod
    def quick(cls, benchmarks: Optional[Sequence[str]] = None,
              instructions: int = 3_000) -> "ExperimentSettings":
        """A reduced setting for unit tests (few benchmarks, short traces)."""
        chosen = tuple(benchmarks) if benchmarks else ("gzip", "mcf", "lbm", "gcc")
        return cls(benchmarks=chosen, instructions=instructions)


@dataclass(frozen=True)
class RunRequest:
    """One (benchmark, configuration) cell of an experiment grid."""

    benchmark: str
    label: str
    config: WatchdogConfig
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = DEFAULT_SEED
    #: ``None`` selects the default warm-up window (see
    #: :func:`repro.workloads.bundle.default_warmup_instructions`).
    warmup_instructions: Optional[int] = None
    #: §9.1 periodic-sampling schedule; ``None`` measures every instruction.
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        validate_sampling(self.sampling)
        if self.sampling is not None and self.warmup_instructions is not None:
            raise ConfigurationError(
                "warmup_instructions cannot be combined with a sampling "
                "schedule: the schedule's warm-up windows apply")

    @property
    def key(self) -> Tuple[str, str]:
        """The (benchmark, label) coordinates of this cell in the grid."""
        return (self.benchmark, self.label)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named (benchmark × configuration) grid, ready to be executed.

    ``configs`` is an ordered sequence of (label, configuration) pairs; label
    order is preserved so serial and parallel executions enumerate — and
    therefore report — cells identically.
    """

    name: str
    configs: Tuple[Tuple[str, WatchdogConfig], ...]
    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    #: Whether the grid additionally includes the unprotected baseline
    #: (needed by every experiment that reports slowdowns).
    include_baseline: bool = True

    @classmethod
    def build(cls, name: str, configs: Mapping[str, WatchdogConfig],
              settings: Optional[ExperimentSettings] = None,
              include_baseline: bool = True) -> "ExperimentSpec":
        """Build a spec from a label → configuration mapping."""
        return cls(name=name, configs=tuple(configs.items()),
                   settings=settings or ExperimentSettings(),
                   include_baseline=include_baseline)

    def requests(self) -> List[RunRequest]:
        """Expand the grid into its full, deterministically-ordered cell list."""
        cells: List[RunRequest] = []
        pairs: List[Tuple[str, WatchdogConfig]] = []
        if self.include_baseline:
            pairs.append((BASELINE_LABEL, WatchdogConfig.disabled()))
        pairs.extend(self.configs)
        for benchmark in self.settings.benchmarks:
            for label, config in pairs:
                cells.append(RunRequest(
                    benchmark=benchmark, label=label, config=config,
                    instructions=self.settings.instructions,
                    seed=self.settings.seed,
                    sampling=self.settings.sampling))
        return cells

    def __len__(self) -> int:
        return len(self.settings.benchmarks) * \
            (len(self.configs) + (1 if self.include_baseline else 0))
