"""Persistent, content-addressed result cache.

A simulated cell is a pure function of its inputs: the benchmark profile,
the workload seed and instruction counts, the §9.1 sampling schedule, the
Watchdog configuration, the machine configuration and the pipeline
implementation that executes it.  The cache therefore keys each
:class:`~repro.sim.results.CellResult` by a SHA-256 digest of a canonical
JSON rendering of exactly those inputs (plus a schema version that is bumped
whenever the simulation semantics change), and stores the cell as one small
JSON file.  Repeated figure runs, the benchmark harness and the CLI all skip
already-computed cells; any change to a configuration knob changes the
digest and transparently invalidates the entry.

The pipeline selection is part of the key even though the compiled and
reference pipelines are *supposed* to be bit-identical: serving a
``REPRO_PIPELINE=reference`` run from a cell the compiled pipeline produced
(or vice versa) would mask exactly the divergence the reference model exists
to expose.

Corrupt entries (truncated writes, hand edits, bit rot) are **quarantined**,
not just treated as misses: the broken file is renamed to ``<key>.corrupt``
and the event recorded as a :class:`~repro.sim.results.DegradationEvent`
(drained by the engine into the suite report).  Leaving the file in place
would make every future run re-parse and re-miss it forever; renaming lets
the regenerated entry take the key back while preserving the corpse for
inspection.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.pipeline.config import MachineConfig
from repro.sim.faults import FaultPlan
from repro.sim.results import CellResult, DegradationEvent
from repro.sim.spec import RunRequest

#: Bump when the on-disk record layout or the fingerprint payload changes.
#: v2: the payload gained the resolved pipeline (a reference-pipeline run
#: must never be served a compiled-pipeline cell, or vice versa) and the
#: request's sampling schedule.
#: v3: :class:`CellResult` gained the ``failed`` placeholder flag (entries
#: written by older code lack the field and must not zero-fill it).
#: v4: multi-core mixes — :class:`CellResult` gained the per-core ``cores``
#: blocks and benchmark names may now be mix tokens, both changing the
#: record layout and the cell input space.
CACHE_SCHEMA_VERSION = 4

#: Default on-disk location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the installed ``repro`` sources, mixed into every cache key.

    A cached cell is only valid for the simulator that produced it; hashing
    the package's source files means any code change — not just ones someone
    remembered to version-bump — invalidates existing entries instead of
    silently serving results the current code no longer produces.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        try:
            digest.update(path.read_bytes())
        except OSError:
            continue
    return digest.hexdigest()


def canonical_value(value: Any) -> Any:
    """Render configs (nested dataclasses/enums) as a canonical JSON value.

    Every field is included — even ``compare=False`` ones: e.g.
    ``MachineConfig.EXEC_LATENCY`` is excluded from equality but is a real
    timing input, and two machines differing only there must not share
    cache entries.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): canonical_value(val)
                for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    return value


def request_fingerprint(request: RunRequest,
                        machine: Optional[MachineConfig] = None,
                        pipeline: Optional[str] = None) -> str:
    """Content hash identifying one cell's full input space.

    ``pipeline=None`` resolves the selection the executing simulator would
    make (the ``REPRO_PIPELINE`` environment variable, which worker processes
    inherit, falling back to the compiled default).
    """
    from repro.sim.simulator import resolve_pipeline

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "benchmark": request.benchmark,
        "instructions": request.instructions,
        "seed": request.seed,
        "warmup_instructions": request.warmup_instructions,
        "sampling": canonical_value(request.sampling),
        "config": canonical_value(request.config),
        "machine": canonical_value(machine or MachineConfig()),
        "pipeline": resolve_pipeline(pipeline),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Process-wide temp-file serial.  Temp names carry pid + this counter, so
#: two writers in the same process (threads, re-entrant stores) and writers
#: in different processes can never collide on a temp path; the final
#: ``os.replace`` onto the key stays atomic either way.
_TMP_COUNTER = itertools.count()


class ResultCache:
    """On-disk store of :class:`CellResult` records, one JSON file per cell."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 faults: Optional[FaultPlan] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corruptions = 0
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self._corruption_events: List[DegradationEvent] = []

    # -- keying ---------------------------------------------------------------------
    def key(self, request: RunRequest,
            machine: Optional[MachineConfig] = None,
            pipeline: Optional[str] = None) -> str:
        return request_fingerprint(request, machine, pipeline=pipeline)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- access ---------------------------------------------------------------------
    def load(self, key: str) -> Optional[CellResult]:
        """Fetch a cached cell, or ``None`` (corrupt entries are quarantined).

        A missing file is a plain miss.  An entry that exists but does not
        parse — or is missing any :class:`CellResult` field — is *corrupt*:
        a truncated or hand-edited file must fall back to simulation, not
        masquerade as a cell with zero cycles.  Corrupt files are renamed to
        ``<key>.corrupt`` (so the regenerated entry takes the key back and
        this run's report carries a ``cache-corrupt`` degradation event)
        rather than re-parsed as misses on every future run.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            if not isinstance(data, dict) or \
                    any(f.name not in data for f in dataclasses.fields(CellResult)):
                raise ValueError("incomplete cache entry")
            cell = CellResult.from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, TypeError) as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return cell

    def _quarantine(self, path: Path, error: Exception) -> None:
        """Rename a corrupt entry aside and record the degradation."""
        corpse = path.with_suffix(".corrupt")
        try:
            os.replace(path, corpse)
        except OSError:
            # Lost a race with another process quarantining (or rewriting)
            # the same entry — either way the key is no longer corrupt here.
            return
        self.corruptions += 1
        self._corruption_events.append(DegradationEvent(
            kind="cache-corrupt", subject=path.name,
            detail=(f"quarantined to {corpse.name}: "
                    f"{type(error).__name__}: {error}")))

    def drain_corruption_events(self) -> List[DegradationEvent]:
        """Hand over (and clear) the quarantine events since the last drain."""
        events, self._corruption_events = self._corruption_events, []
        return events

    def store(self, key: str, cell: CellResult) -> None:
        """Persist a cell atomically (write-to-temp then rename).

        The temp name embeds pid + a process-wide counter, so concurrent
        writers of the same key never collide on the temp path; last
        ``os.replace`` wins on the key itself, which is safe because every
        writer of a key writes the same deterministic content.
        """
        path = self._path(key)
        blob = json.dumps(cell.to_dict(), sort_keys=True)
        if self.faults.corrupts_store(cell.benchmark, cell.configuration):
            # Injected corruption: persist a torn write (truncated JSON),
            # exactly what a mid-write power loss leaves behind.
            blob = blob[:max(1, len(blob) // 3)]
        tmp = self.root / \
            f".{key[:24]}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        try:
            tmp.write_text(blob, encoding="utf-8")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def clear(self) -> int:
        """Delete every cached cell; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
