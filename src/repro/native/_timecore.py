"""Native timing core: the compiled pipeline's two hot loops in C.

The compiled trace pipeline runs each (trace × configuration) cell in two
passes — a batched memory-hierarchy replay
(:meth:`repro.memory.hierarchy.MemoryHierarchy.access_batch` /
:meth:`~repro.memory.hierarchy.MemoryHierarchy.warm_batch`) and the
dispatch/ready/port-reservation/commit integer scheduler
(:meth:`repro.pipeline.core.OutOfOrderCore.simulate_compiled`).  Both are
pure integer state machines over packed arrays, which caps the Python
interpreter at a few hundred thousand µops per second.  This module compiles
them to a small C kernel through the shared :mod:`repro.native.build`
machinery (system cc, first use, cached on disk, self-tested at load).

The kernel consumes exactly the structures the Python loops consume:

* ``hier_batch`` — the flattened int64 form of the OrderedDict cache sets,
  TLBs and prefetcher streams (see ``MemoryHierarchy._batch_native``, which
  exports the state, runs the kernel and imports it back), plus the packed
  ``(addrs, specs, positions)`` access sequence, writing latencies into
  ``lats`` and counter deltas into a counter block.  One entry point serves
  both the counted (``access_batch``) and warm-up (``warm_batch``) variants,
  toggled by the ``collect`` config slot.
* ``sched_run`` — per-µop words (flags, cost and the six register-slot
  operands in one int64 each), the post-hierarchy latency array, the
  flattened port-pool free times, and ring buffers for the ROB/IQ/LQ/SQ
  occupancy queues.  The stream compiler emits these words directly
  (:meth:`repro.sim.compiled.StreamCompiler.compile_measured`), so
  :func:`pack_stream` is normally just a view; streams that predate the
  flat form (or hand-built test streams) are packed through the
  ``pack_words`` entry point, or the Python loop when no kernel is loaded.

Both are replicas of the Python loops, statement for statement — every
counter, LRU movement, latency and stall decision lands on the same value,
and the load-time self-test plus the timecore golden tests enforce
bit-identical ``TimingResult``/``HierarchyStats`` output.  The kernel is
strictly optional: ``REPRO_TIMECORE=0``, a missing compiler, a failed build
or a failed self-test all fall back to the Python loops silently.
"""

from __future__ import annotations

import ctypes
import weakref
from array import array
from collections import OrderedDict
from pathlib import Path

from repro.native import build

#: Number of int64 counter slots ``hier_batch`` accumulates into (layout
#: documented in the C source; applied back by :func:`run_batch`).
N_COUNTERS = 28

#: Layout indices of the hierarchy config block (:func:`_config_array`).
CFG_COLLECT = 2
CFG_STRIDE = 3

_SOURCE = r"""
/* Native timing core: batched hierarchy replay + the array scheduler.
 *
 * Replicates repro.memory.hierarchy.MemoryHierarchy.access_batch/warm_batch
 * and repro.pipeline.core.OutOfOrderCore.simulate_compiled statement for
 * statement.  Any change to those Python loops must be mirrored here (the
 * load-time self-test and the timecore golden tests enforce equality).
 *
 * State encoding (produced by the run_batch marshaller in _timecore.py):
 *   cache set:  `assoc` consecutive int64 slots per set, oldest first,
 *               compacted; 0 = empty, else ((block + 1) << 1) | dirty.
 *   TLB:        `entries` slots, oldest first, 0 = empty, else page + 1.
 *   prefetcher: [count, last_block0, dir0, last_block1, dir1, ...].
 * These are exact images of the OrderedDict/list structures: a hit moves
 * the entry to the newest slot (move_to_end), an eviction drops slot 0
 * (popitem(last=False)).
 *
 * cfg layout (31 int64 slots):
 *   0 lock_cache_enabled, 1 ideal_shadow, 2 collect, 3 spec_stride,
 *   4-7   l1  num_sets, assoc, block_bytes, hit_latency,
 *   8-11  l2  ditto,   12-15 l3 ditto,   16-19 lock cache ditto,
 *   20 dram_latency,
 *   21-23 dtlb entries, page_bytes, miss_penalty,  24-26 lock tlb ditto,
 *   27-28 l1 prefetcher streams, depth,  29-30 l2 prefetcher ditto.
 *
 * counter layout (28 int64 slots, deltas the caller adds back):
 *   0-3   l1 hits, misses, evictions, writebacks,   4-7 l2,  8-11 l3,
 *   12-15 lock cache,  16-17 dtlb hits, misses,  18-19 lock tlb,
 *   20 l1-prefetches issued, 21 l2-prefetches issued,
 *   22-24 class access counts (data, lock, shadow),  25-27 class latency.
 *
 * collect=0 is warm_batch: identical state transitions, but the counters
 * the Python warm loop skips (L1/lock demand + TLB + L3-install) stay
 * untouched, while everything routed through the shared lookup/prefetch
 * methods (L2/L3 demand, prefetch issue) still counts — reset_stats()
 * erases them right after, exactly as in Python.
 */
#include <stdint.h>
#include <string.h>

typedef long long i64;

/* Demand access to one ordered set.  Returns 1 on hit (entry moved to
 * newest, dirty |= write); on miss inserts (evicting the oldest if full)
 * and reports the eviction through *evicted / *wb. */
static i64 set_demand(i64 *ways, i64 assoc, i64 key, i64 dirty,
                      i64 *evicted, i64 *wb)
{
    i64 i, n = 0, hit = -1, e;
    for (i = 0; i < assoc; i++) {
        if (!ways[i])
            break;
        n = i + 1;
        if ((ways[i] >> 1) == key)
            hit = i;
    }
    if (hit >= 0) {
        e = ways[hit] | dirty;
        memmove(ways + hit, ways + hit + 1, (size_t)(n - 1 - hit) * 8);
        ways[n - 1] = e;
        return 1;
    }
    *evicted = 0;
    *wb = 0;
    if (n >= assoc) {
        *evicted = 1;
        if (ways[0] & 1)
            *wb = 1;
        memmove(ways, ways + 1, (size_t)(assoc - 1) * 8);
        n = assoc - 1;
    }
    ways[n] = (key << 1) | dirty;
    return 0;
}

/* Install without demand counting (prefetch / inclusive-L3 install):
 * refresh LRU if present (keeping the dirty bit), else insert clean,
 * accumulating evictions/writebacks into the given counter slots. */
static void set_install(i64 *ways, i64 assoc, i64 key, i64 *evicted, i64 *wb)
{
    i64 i, n = 0, hit = -1, e;
    for (i = 0; i < assoc; i++) {
        if (!ways[i])
            break;
        n = i + 1;
        if ((ways[i] >> 1) == key)
            hit = i;
    }
    if (hit >= 0) {
        e = ways[hit];
        memmove(ways + hit, ways + hit + 1, (size_t)(n - 1 - hit) * 8);
        ways[n - 1] = e;
        return;
    }
    if (n >= assoc) {
        *evicted += 1;
        if (ways[0] & 1)
            *wb += 1;
        memmove(ways, ways + 1, (size_t)(assoc - 1) * 8);
        n = assoc - 1;
    }
    ways[n] = key << 1;
}

/* Fully-associative LRU TLB access; returns 1 on hit. */
static i64 tlb_access(i64 *ent, i64 cap, i64 key)
{
    i64 i, n = 0, hit = -1;
    for (i = 0; i < cap; i++) {
        if (!ent[i])
            break;
        n = i + 1;
        if (ent[i] == key)
            hit = i;
    }
    if (hit >= 0) {
        memmove(ent + hit, ent + hit + 1, (size_t)(n - 1 - hit) * 8);
        ent[n - 1] = key;
        return 1;
    }
    if (n >= cap) {
        memmove(ent, ent + 1, (size_t)(cap - 1) * 8);
        n = cap - 1;
    }
    ent[n] = key;
    return 0;
}

/* StreamPrefetcher.on_miss: find a stream within `depth` blocks (first
 * match wins); allocate (oldest stream dropped, no issue) when none, else
 * retarget the stream and install the next `depth` blocks. */
static void pf_on_miss(i64 *pf, i64 streams, i64 depth, i64 *ways, i64 nsets,
                       i64 assoc, i64 block, i64 *evicted, i64 *wb,
                       i64 *issued)
{
    i64 n = pf[0], i, si = -1, d, dir;
    for (i = 0; i < n; i++) {
        d = block - pf[1 + 2 * i];
        if (d < 0)
            d = -d;
        if (d <= depth) {
            si = i;
            break;
        }
    }
    if (si < 0) {
        if (n >= streams) {
            memmove(pf + 1, pf + 3, (size_t)(2 * (streams - 1)) * 8);
            n = streams - 1;
        }
        pf[1 + 2 * n] = block;
        pf[2 + 2 * n] = 1;
        pf[0] = n + 1;
        return;
    }
    dir = block >= pf[1 + 2 * si] ? 1 : -1;
    pf[1 + 2 * si] = block;
    pf[2 + 2 * si] = dir;
    for (i = 1; i <= depth; i++) {
        i64 b = block + i * dir;
        if (b < 0)
            continue;
        *issued += 1;
        set_install(ways + (b % nsets) * assoc, assoc, b + 1, evicted, wb);
    }
}

/* MemoryHierarchy._access_beyond_l1: L2 demand (prefetcher on miss), then
 * L3 demand, then DRAM; returns the added latency.  L2/L3 counters always
 * accumulate — the Python warm loop routes through the same shared
 * Cache.lookup / prefetcher methods. */
static i64 beyond_l1(const i64 *cfg, i64 *ctr, i64 *l2w, i64 *l3w, i64 *pf2,
                     i64 a, i64 write)
{
    i64 ev, wb;
    i64 block = a / cfg[10];
    if (set_demand(l2w + (block % cfg[8]) * cfg[9], cfg[9], block + 1, write,
                   &ev, &wb)) {
        ctr[4] += 1;
        return cfg[11];
    }
    ctr[5] += 1;
    ctr[6] += ev;
    ctr[7] += wb;
    pf_on_miss(pf2, cfg[29], cfg[30], l2w, cfg[8], cfg[9], block,
               &ctr[6], &ctr[7], &ctr[21]);
    block = a / cfg[14];
    if (set_demand(l3w + (block % cfg[12]) * cfg[13], cfg[13], block + 1,
                   write, &ev, &wb)) {
        ctr[8] += 1;
        return cfg[11] + cfg[15];
    }
    ctr[9] += 1;
    ctr[10] += ev;
    ctr[11] += wb;
    return cfg[11] + cfg[15] + cfg[20];
}

long long hier_batch(const long long *cfg, long long *ctr,
                     long long *l1w, long long *l2w, long long *l3w,
                     long long *lkw, long long *dtlb, long long *ltlb,
                     long long *pf1, long long *pf2, long long n,
                     const long long *addrs, const long long *specs,
                     const long long *pos, long long *lats)
{
    const i64 lock_en = cfg[0], ideal = cfg[1], collect = cfg[2];
    const i64 stride = cfg[3];
    i64 dtlb_last = -1, ltlb_last = -1;
    i64 k, ev, wb, dummy = 0;
    for (k = 0; k < n; k++) {
        i64 a = addrs[k];
        i64 spec = specs[k * stride];
        i64 port = spec & 3;
        i64 write = (spec >> 2) & 1;
        i64 lat, block, hit, page;
        if (port == 1 && lock_en) {
            /* -- dedicated lock location cache (no L1 prefetcher) ------- */
            page = a / cfg[25];
            if (page == ltlb_last) {
                ctr[18] += collect;
                lat = cfg[19];
            } else if (tlb_access(ltlb, cfg[24], page + 1)) {
                ctr[18] += collect;
                ltlb_last = page;
                lat = cfg[19];
            } else {
                ctr[19] += collect;
                ltlb_last = page;
                lat = cfg[26] + cfg[19];
            }
            block = a / cfg[18];
            hit = set_demand(lkw + (block % cfg[16]) * cfg[17], cfg[17],
                             block + 1, write, &ev, &wb);
            if (hit) {
                ctr[12] += collect;
            } else {
                if (collect) {
                    ctr[13] += 1;
                    ctr[14] += ev;
                    ctr[15] += wb;
                }
                lat += beyond_l1(cfg, ctr, l2w, l3w, pf2, a, write);
            }
        } else if (port == 2 && ideal) {
            /* Idealized shadow: a port-occupying L1 hit, no allocation. */
            if (collect) {
                lat = cfg[7];
                ctr[24] += 1;
                ctr[27] += lat;
                if (spec & 8)
                    lats[pos[k]] = lat;
            }
            continue;
        } else {
            /* -- the L1 data cache (data, shadow, lock-on-data) ---------- */
            page = a / cfg[22];
            if (page == dtlb_last) {
                ctr[16] += collect;
                lat = cfg[7];
            } else if (tlb_access(dtlb, cfg[21], page + 1)) {
                ctr[16] += collect;
                dtlb_last = page;
                lat = cfg[7];
            } else {
                ctr[17] += collect;
                dtlb_last = page;
                lat = cfg[23] + cfg[7];
            }
            block = a / cfg[6];
            hit = set_demand(l1w + (block % cfg[4]) * cfg[5], cfg[5],
                             block + 1, write, &ev, &wb);
            if (hit) {
                ctr[0] += collect;
            } else {
                if (collect) {
                    ctr[1] += 1;
                    ctr[2] += ev;
                    ctr[3] += wb;
                }
                pf_on_miss(pf1, cfg[27], cfg[28], l1w, cfg[4], cfg[5], block,
                           &ctr[2], &ctr[3], &ctr[20]);
                lat += beyond_l1(cfg, ctr, l2w, l3w, pf2, a, write);
            }
        }
        /* inclusive L3 install (demand accesses of every class) */
        block = a / cfg[14];
        if (collect)
            set_install(l3w + (block % cfg[12]) * cfg[13], cfg[13], block + 1,
                        &ctr[10], &ctr[11]);
        else
            set_install(l3w + (block % cfg[12]) * cfg[13], cfg[13], block + 1,
                        &dummy, &dummy);
        if (collect) {
            ctr[22 + port] += 1;
            ctr[25 + port] += lat;
            if (spec & 8)
                lats[pos[k]] = lat;
        }
    }
    return 0;
}

/* Write the indices of non-empty sets into `out`; returns how many.  Lets
 * the Python import walk only the touched sets of a 16384-set L3. */
long long occ_scan(const long long *ways, long long nsets, long long assoc,
                   long long *out)
{
    i64 i, n = 0;
    for (i = 0; i < nsets; i++)
        if (ways[i * assoc])
            out[n++] = i;
    return n;
}

/* sim.compiled._install_tail's inner loop: sequential warm install of `n`
 * addresses (clean lines; LRU refresh on re-touch, silent oldest-first
 * eviction when a set is full — no counters, warm-up is unobserved). */
long long warm_fill(i64 *ways, i64 nsets, i64 assoc, i64 block_bytes,
                    i64 n, const i64 *addrs)
{
    i64 k, block, dummy = 0;
    for (k = 0; k < n; k++) {
        block = addrs[k] / block_bytes;
        set_install(ways + (block % nsets) * assoc, assoc, block + 1,
                    &dummy, &dummy);
    }
    return 0;
}

/* pack_stream's per-row packing for legacy tuple streams: rows holds n
 * consecutive (flags, cost, dest, s0, s1, md, ms0, ms1) octets; each row
 * becomes one packed word in out (format documented at sched_run below).
 * Returns 0, or -1 as soon as any field exceeds its width — the caller
 * then marks the stream tuple-only and the Python scheduler (which has no
 * field-width limits) takes over, exactly as the Python packer does. */
long long pack_words(const long long *rows, long long n, long long *out)
{
    i64 k;
    for (k = 0; k < n; k++) {
        const i64 *r = rows + 8 * k;
        i64 flags = r[0], cost = r[1];
        i64 d = r[2] + 1, a = r[3] + 1, b = r[4] + 1;
        i64 m = r[5] + 1, x = r[6] + 1, y = r[7] + 1;
        if ((d | a | b | m | x | y) & ~63LL || flags & ~511LL
                || cost & ~63LL)
            return -1;
        out[k] = flags | cost << 9 | d << 15 | a << 21 | b << 27
                 | m << 33 | x << 39 | y << 45;
    }
    return 0;
}

/* OutOfOrderCore.simulate_compiled's integer scheduler.
 *
 * uops[k] packs one µop (pack_stream): bits 0-8 flags (kind code | LQ 32 |
 * SQ 64 | branch 128 | mispredict 256), bits 9-14 µop cost, then six 6-bit
 * register-slot fields (value + 1; 0 = none) for dest, s0, s1, meta-dest,
 * ms0, ms1 at bits 15/21/27/33/39/45.
 *
 * cfg: 0 dispatch_width, 1 dispatch_latency, 2 commit_width,
 *      3 mispredict_penalty, 4 first dispatch cycle (fetch+rename),
 *      5-8 ROB/IQ/LQ/SQ sizes.
 *
 * robq/iqq/lqq/sqq are caller-provided ring buffers of the queue sizes
 * (occupancy never exceeds size at append time, so size slots suffice).
 * pool_free is the concatenation of every pool's next-free list (offsets in
 * pool_off); final values are left in place for the caller to copy back.
 * Returns the last commit cycle. */
long long sched_run(const long long *cfg, const long long *uops,
                    const long long *lats, long long n, long long *ready,
                    long long *meta_ready, const long long *pool_map,
                    long long *pool_free, const long long *pool_off,
                    long long *pool_uses, long long *pool_waits,
                    long long *robq, long long *iqq, long long *lqq,
                    long long *sqq)
{
    const i64 DW = cfg[0], DL = cfg[1], CW = cfg[2], MP = cfg[3];
    const i64 ROB = cfg[5], IQ = cfg[6], LQ = cfg[7], SQ = cfg[8];
    i64 dispatch_cycle = cfg[4], dispatched = 0, fetch_stall = 0;
    i64 last_commit = 0, commits = 0, commit_cycle = 0;
    i64 rob_h = 0, rob_n = 0, iq_h = 0, iq_n = 0;
    i64 lq_h = 0, lq_n = 0, sq_h = 0, sq_n = 0;
    i64 k, i, v, idx;
    for (k = 0; k < n; k++) {
        i64 w = uops[k];
        i64 flags = w & 511;
        i64 cost = (w >> 9) & 63;
        i64 t, r, p, lo, hi, b, bi, start, completion, c, slot;

        /* ---- dispatch: front-end width, window occupancy -------------- */
        if (dispatched >= DW) {
            dispatch_cycle += 1;
            dispatched = 0;
        }
        t = dispatch_cycle;
        if (fetch_stall > t)
            t = fetch_stall;
        if (rob_n >= ROB) {
            v = robq[rob_h];
            if (++rob_h == ROB)
                rob_h = 0;
            rob_n -= 1;
            if (v > t)
                t = v;
        } else if (rob_n && robq[rob_h] <= t) {
            if (++rob_h == ROB)
                rob_h = 0;
            rob_n -= 1;
        }
        if (iq_n >= IQ) {
            v = iqq[iq_h];
            if (++iq_h == IQ)
                iq_h = 0;
            iq_n -= 1;
            if (v > t)
                t = v;
        } else if (iq_n && iqq[iq_h] <= t) {
            if (++iq_h == IQ)
                iq_h = 0;
            iq_n -= 1;
        }
        if (flags & 96) {
            if (flags & 32) {
                while (lq_n && lqq[lq_h] <= t) {
                    if (++lq_h == LQ)
                        lq_h = 0;
                    lq_n -= 1;
                }
                if (lq_n >= LQ) {
                    v = lqq[lq_h];
                    if (++lq_h == LQ)
                        lq_h = 0;
                    lq_n -= 1;
                    if (v > t)
                        t = v;
                }
            } else {
                while (sq_n && sqq[sq_h] <= t) {
                    if (++sq_h == SQ)
                        sq_h = 0;
                    sq_n -= 1;
                }
                if (sq_n >= SQ) {
                    v = sqq[sq_h];
                    if (++sq_h == SQ)
                        sq_h = 0;
                    sq_n -= 1;
                    if (v > t)
                        t = v;
                }
            }
        }
        if (t > dispatch_cycle) {
            dispatch_cycle = t;
            dispatched = cost;
        } else {
            dispatched += cost;
        }

        /* ---- issue: operand readiness, then a port -------------------- */
        r = t + DL;
        slot = ((w >> 15) & 63) - 1;  /* dest (consumed at writeback) */
        i = ((w >> 21) & 63) - 1;     /* s0 */
        if (i >= 0) {
            if (ready[i] > r)
                r = ready[i];
            i = ((w >> 27) & 63) - 1; /* s1 (only considered when s0 set) */
            if (i >= 0 && ready[i] > r)
                r = ready[i];
        }
        i = ((w >> 39) & 63) - 1;     /* ms0 */
        if (i >= 0) {
            if (meta_ready[i] > r)
                r = meta_ready[i];
            i = ((w >> 45) & 63) - 1; /* ms1 (only considered when ms0 set) */
            if (i >= 0 && meta_ready[i] > r)
                r = meta_ready[i];
        }
        p = pool_map[flags & 31];
        lo = pool_off[p];
        hi = pool_off[p + 1];
        bi = lo;
        b = pool_free[lo];
        for (i = lo + 1; i < hi; i++)
            if (pool_free[i] < b) {
                b = pool_free[i];
                bi = i;
            }
        if (b > r) {
            start = b;
            pool_waits[p] += b - r;
        } else {
            start = r;
        }
        pool_free[bi] = start + cost;
        pool_uses[p] += 1;
        completion = start + lats[k];

        /* ---- writeback ------------------------------------------------ */
        if (slot >= 0)
            ready[slot] = completion;
        slot = ((w >> 33) & 63) - 1;  /* meta dest */
        if (slot >= 0)
            meta_ready[slot] = completion;

        /* ---- branch misprediction refill ------------------------------ */
        if (flags & 256) {
            v = completion + MP;
            if (v > fetch_stall)
                fetch_stall = v;
        }

        /* ---- in-order commit ------------------------------------------ */
        c = completion;
        if (last_commit > c)
            c = last_commit;
        if (c == commit_cycle) {
            commits += cost;
            if (commits >= CW) {
                c += 1;
                commits = 0;
            }
        } else {
            commit_cycle = c;
            commits = cost;
        }
        last_commit = c;

        /* ---- occupancy bookkeeping ------------------------------------ */
        idx = rob_h + rob_n;
        if (idx >= ROB)
            idx -= ROB;
        robq[idx] = c;
        rob_n += 1;
        idx = iq_h + iq_n;
        if (idx >= IQ)
            idx -= IQ;
        iqq[idx] = start;
        iq_n += 1;
        if (flags & 32) {
            idx = lq_h + lq_n;
            if (idx >= LQ)
                idx -= LQ;
            lqq[idx] = completion;
            lq_n += 1;
        } else if (flags & 64) {
            idx = sq_h + sq_n;
            if (idx >= SQ)
                idx -= SQ;
            sqq[idx] = c;
            sq_n += 1;
        }
    }
    return last_commit;
}
"""


def _bind(so_path: Path):
    lib = ctypes.CDLL(str(so_path))
    p, q = ctypes.c_void_p, ctypes.c_longlong
    lib.hier_batch.restype = q
    lib.hier_batch.argtypes = [p] * 10 + [q] + [p] * 4
    lib.occ_scan.restype = q
    lib.occ_scan.argtypes = [p, q, q, p]
    lib.warm_fill.restype = q
    lib.warm_fill.argtypes = [p, q, q, q, q, p]
    lib.pack_words.restype = q
    lib.pack_words.argtypes = [p, q, p]
    lib.sched_run.restype = q
    lib.sched_run.argtypes = [p, p, p, q] + [p] * 11
    return lib


def pack_entry_words(uops):
    """Pack per-µop tuples into kernel words, or ``None`` on overflow.

    The pure-Python packer: used by the stream compiler to pre-pack each
    template's entries at build time, and by :func:`pack_stream` for legacy
    tuple streams when no kernel is loaded.
    """
    words = array("q", bytes(8 * len(uops)))
    i = 0
    try:
        for flags, cost, dest, s0, s1, md, ms0, ms1 in uops:
            d = dest + 1
            a = s0 + 1
            b = s1 + 1
            m = md + 1
            x = ms0 + 1
            y = ms1 + 1
            # Nonzero iff any slot is outside 0..63 (i.e. -1..62 pre-shift),
            # flags outside 0..511 or cost outside 0..63.
            if (d | a | b | m | x | y) & -64 or flags & -512 or cost & -64:
                return None
            words[i] = (flags | cost << 9 | d << 15 | a << 21 | b << 27
                        | m << 33 | x << 39 | y << 45)
            i += 1
    except (OverflowError, ValueError, TypeError):
        return None
    return words


def _pack_rows_native(lib, uops):
    """Pack per-µop tuples through the C ``pack_words`` entry point."""
    try:
        rows = array("q")
        extend = rows.extend
        for entry in uops:
            extend(entry)
        if len(rows) != 8 * len(uops):
            return None
    except (OverflowError, ValueError, TypeError):
        return None
    out = array("q", bytes(8 * len(uops)))
    if lib.pack_words(rows.buffer_info()[0], len(uops),
                      out.buffer_info()[0]):
        return None
    return out


def unpack_words(words):
    """Per-µop ``(flags, cost, dest, s0, s1, md, ms0, ms1)`` tuples of
    packed kernel words (the inverse of :func:`pack_entry_words`)."""
    return [(w & 511, (w >> 9) & 63,
             ((w >> 15) & 63) - 1, ((w >> 21) & 63) - 1,
             ((w >> 27) & 63) - 1, ((w >> 33) & 63) - 1,
             ((w >> 39) & 63) - 1, ((w >> 45) & 63) - 1)
            for w in words]


def pack_stream(stream, lib=None):
    """The kernel form of a compiled stream, or ``None`` when unpackable.

    Returns ``(words, lat_template, mem_pos, mem_addr, mem_spec, core)`` —
    int64 arrays plus the stream's core id.  Streams from the compiler
    already carry the flat form (``stream.words``), so this is just a view;
    the residual tuple-stream paths (hand-built test streams, overflow
    fallbacks probed again) pack through the C ``pack_words`` entry when
    ``lib`` is given, the Python loop otherwise, memoized on the stream.
    A µop whose cost or register slots exceed the packed field widths makes
    the whole stream unpackable — the caller falls back to the Python
    scheduler, which has no such limits.  Callers must copy the latency
    array before mutating it: flat streams hand out their own arenas.
    """
    words = getattr(stream, "words", None)
    if words is not None:
        return (words, stream.lat_template, stream.mem_pos,
                stream.mem_addr, stream.mem_spec, getattr(stream, "core", 0))
    cached = stream.__dict__.get("_tc_packed")
    if cached is not None:
        return cached or None
    uops = stream.uops
    words = (_pack_rows_native(lib, uops) if lib is not None
             else pack_entry_words(uops))
    if words is None:
        stream.__dict__["_tc_packed"] = False
        return None
    packed = (words, array("q", stream.lat_template),
              array("q", stream.mem_pos), array("q", stream.mem_addr),
              array("q", stream.mem_spec), getattr(stream, "core", 0))
    stream.__dict__["_tc_packed"] = packed
    return packed


#: Reusable int64 arenas.  String keys are per-role scratch arenas ("occ",
#: "ctr") recycled across calls; integer keys are free lists of pooled
#: state-export arenas by element count, recycled across *hierarchies* (see
#: :func:`_acquire_arena` / :func:`_release_arenas`) — a fresh cell's L3
#: export (16384 sets x 16 ways = 2MB) reuses a dead cell's arena instead
#: of allocating and zeroing a new one.  The engine is single-threaded per
#: process (parallelism is process-based), so sharing is safe.
_ARENAS = {}

#: Pooled arenas kept per size; beyond this, released arenas are dropped to
#: the allocator.  Sweeps run cells serially, so a handful per size covers
#: even a multi-core mix (one private set per core plus the shared set).
_POOL_LIMIT = 16


def _arena(role: str, size: int, zero: bool = True):
    """The per-role scratch arena, grown and (by default) zeroed."""
    arena = _ARENAS.get(role)
    if arena is None or len(arena) < size:
        arena = _ARENAS[role] = array("q", bytes(8 * size))
    elif zero:
        ctypes.memset(arena.buffer_info()[0], 0, 8 * len(arena))
    return arena


def _acquire_arena(size: int):
    """A zeroed ``size``-element int64 arena, reused from the pool if one
    of exactly this size is free, freshly allocated otherwise."""
    free = _ARENAS.get(size)
    if free:
        arena = free.pop()
        ctypes.memset(arena.buffer_info()[0], 0, 8 * size)
        return arena
    return array("q", bytes(8 * size))


def _release_arenas(arenas) -> None:
    """Return state-export arenas to the pool (capped per size)."""
    for arena in arenas:
        free = _ARENAS.setdefault(len(arena), [])
        if len(free) < _POOL_LIMIT:
            free.append(arena)


def _retire_state(state) -> None:
    """Release a state dict's pooled arenas (at most once per state).

    Routed through the ``weakref.finalize`` registered at export so that an
    explicit import-back and the owner's garbage collection can both trigger
    the release without ever double-pooling an arena.
    """
    release = state.pop("_release", None)
    if release is not None:
        release()


#: Role names of the shared-level arenas (kept in the backend's
#: ``_tc_shared`` dict and aliased into every attached core's ``_tc_state``).
_SHARED_ROLES = ("l2", "l3", "lk", "pf2")


def _private_parts(h):
    """Per-core structures (L1, TLBs, L1 prefetcher) with their role names."""
    caches = ((h.l1d, "l1"),)
    tlbs = ((h.dtlb, "dtlb"), (h.lock_tlb, "ltlb"))
    pfs = ((h.l1d_prefetcher, "pf1"),)
    return caches, tlbs, pfs


def _shared_parts(backend):
    """Shared-level structures (L2/L3/lock cache, L2 prefetcher) by role."""
    caches = ((backend.l2, "l2"), (backend.l3, "l3"),
              (backend.lock_cache, "lk"))
    tlbs = ()
    pfs = ((backend.l2_prefetcher, "pf2"),)
    return caches, tlbs, pfs


def _export_parts(state, caches, tlbs, pfs) -> None:
    """Flatten the given OrderedDict structures into pooled arenas.

    Every arena comes from :func:`_acquire_arena` (zeroed, recycled across
    hierarchies) and is recorded in ``state["_arenas"]`` so the state's
    finalizer can return it to the pool when the owner dies or syncs back.
    """
    acquired = state.setdefault("_arenas", [])
    for cache, role in caches:
        assoc = cache._assoc
        arena = _acquire_arena(cache._num_sets * assoc)
        acquired.append(arena)
        for idx, cset in cache._sets.items():
            i = idx * assoc
            for block, dirty in cset.items():
                arena[i] = (block + 1) << 1 | dirty
                i += 1
        state[role] = arena
    for tlb, role in tlbs:
        arena = _acquire_arena(tlb.config.entries)
        acquired.append(arena)
        i = 0
        for page in tlb._entries:
            arena[i] = page + 1
            i += 1
        state[role] = arena
    for pf, role in pfs:
        arena = _acquire_arena(1 + 2 * pf.config.streams)
        acquired.append(arena)
        arena[0] = len(pf._streams)
        i = 1
        for s in pf._streams:
            arena[i] = s.last_block
            arena[i + 1] = s.direction
            i += 2
        state[role] = arena


def _export_state(lib, h):
    """Flatten the hierarchy's OrderedDict state into persistent arenas.

    The arenas become the *authoritative* copy of the cache/TLB/prefetcher
    state: subsequent batches run the kernel directly on them with no
    per-batch marshalling, and the OrderedDicts are only rebuilt if someone
    asks (``MemoryHierarchy._tc_sync``) — the production flow never does, it
    reads counters, which are applied back after every batch.

    Private roles (L1/TLBs/L1 prefetcher) get fresh arenas per hierarchy;
    the shared roles (L2/L3/lock cache/L2 prefetcher) live in one arena set
    registered on the backend (``_tc_shared``) and are *aliased* into every
    attached core's state — the kernel then runs all cores' batches against
    the same shared-level memory, which is exactly the contention a
    multi-core replay needs.  ``state["shared"]`` keeps the identity of the
    backend dict the aliases came from, so :func:`attach_state` can detect
    when a shared-level sync has made them stale.
    """
    state = {"lib": lib, "cfg": _config_array(h.config)}
    _export_parts(state, *_private_parts(h))
    # When the hierarchy dies (or its state is imported back) the arenas
    # return to the pool; the finalizer closes over the arena list only, so
    # it neither pins the hierarchy nor can release twice.
    state["_release"] = weakref.finalize(h, _release_arenas, state["_arenas"])
    backend = h.shared
    tc_shared = backend.__dict__.get("_tc_shared")
    if tc_shared is None:
        tc_shared = {"lib": lib}
        _export_parts(tc_shared, *_shared_parts(backend))
        tc_shared["_release"] = weakref.finalize(
            backend, _release_arenas, tc_shared["_arenas"])
        backend.__dict__["_tc_shared"] = tc_shared
    state["shared"] = tc_shared
    for role in _SHARED_ROLES:
        state[role] = tc_shared[role]
    return state


def _import_parts(state, caches, tlbs, pfs) -> None:
    """Rebuild the given Python OrderedDict structures from arena state."""
    from repro.memory.prefetcher import _Stream

    lib = state["lib"]
    for cache, role in caches:
        assoc = cache._assoc
        nsets = cache._num_sets
        arena = state[role]
        occ = _arena("occ", nsets, zero=False)
        count = lib.occ_scan(arena.buffer_info()[0], nsets, assoc,
                             occ.buffer_info()[0])
        sets = {}
        for j in range(count):
            idx = occ[j]
            cset = OrderedDict()
            base = idx * assoc
            for i in range(base, base + assoc):
                e = arena[i]
                if not e:
                    break
                cset[(e >> 1) - 1] = bool(e & 1)
            sets[idx] = cset
        cache._sets = sets
    for tlb, role in tlbs:
        arena = state[role]
        entries = OrderedDict()
        for i in range(tlb.config.entries):
            e = arena[i]
            if not e:
                break
            entries[e - 1] = True
        tlb._entries = entries
    for pf, role in pfs:
        arena = state[role]
        pf._streams = [_Stream(last_block=arena[1 + 2 * i],
                               direction=arena[2 + 2 * i])
                       for i in range(arena[0])]


def import_private_state(state, h) -> None:
    """Rebuild one core's private structures (L1/TLBs/L1 prefetcher) and
    return the state's arenas to the pool."""
    _import_parts(state, *_private_parts(h))
    _retire_state(state)


def import_shared_state(state, backend) -> None:
    """Rebuild the backend's shared-level structures (L2/L3/lock/pf2) and
    return the state's arenas to the pool."""
    _import_parts(state, *_shared_parts(backend))
    _retire_state(state)


def _config_array(config):
    """The 31-slot int64 config block ``hier_batch`` expects (layout in C)."""
    levels = []
    for c in (config.l1d, config.l2, config.l3, config.lock_cache):
        levels += [c.num_sets, c.associativity, c.block_bytes, c.hit_latency]
    return array("q", [
        1 if config.lock_cache_enabled else 0,
        1 if config.ideal_shadow else 0,
        0, 0,  # collect / spec-stride, set per batch
        *levels,
        config.dram_latency,
        config.l1_tlb.entries, config.l1_tlb.page_bytes,
        config.l1_tlb.miss_penalty,
        config.lock_tlb.entries, config.lock_tlb.page_bytes,
        config.lock_tlb.miss_penalty,
        config.l1d_prefetcher.streams, config.l1d_prefetcher.depth,
        config.l2_prefetcher.streams, config.l2_prefetcher.depth])


def attach_state(lib, h):
    """The hierarchy's persistent arena state, exporting it on first use.

    A shared-level sync (:meth:`SharedMemoryBackend._tc_sync`) pops the
    backend's ``_tc_shared`` dict, which strands the aliases every attached
    core's state holds.  That staleness is detected here by identity: the
    private arenas are still authoritative, so they are imported back into
    the OrderedDicts, and the whole state is re-exported fresh (re-creating
    — or re-joining — the backend's shared arenas).
    """
    state = h.__dict__.get("_tc_state")
    if state is not None \
            and state["shared"] is not h.shared.__dict__.get("_tc_shared"):
        import_private_state(state, h)
        del h.__dict__["_tc_state"]
        state = None
    if state is None:
        state = h.__dict__["_tc_state"] = _export_state(lib, h)
    return state


def cache_fill(state, role, cache, pieces, limit) -> None:
    """Native form of :func:`repro.sim.compiled._install_tail`.

    Installs the last ``limit`` addresses of ``pieces`` (concatenated, in
    order) into the cache's arena; ``None`` installs everything.
    """
    if limit is not None:
        kept = []
        remaining = limit
        for piece in reversed(pieces):
            if remaining <= 0:
                break
            if len(piece) > remaining:
                piece = piece[len(piece) - remaining:]
            kept.append(piece)
            remaining -= len(piece)
        pieces = reversed(kept)
    tail = array("q")
    for piece in pieces:
        tail.extend(piece)
    if len(tail):
        state["lib"].warm_fill(
            state[role].buffer_info()[0], cache._num_sets, cache._assoc,
            cache._block_bytes, len(tail), tail.buffer_info()[0])


def run_batch(lib, h, addrs, specs, positions, lats, collect: bool) -> None:
    """Replay one access batch through the C kernel, in place of the Python
    loop of ``access_batch`` (``collect=True``) / ``warm_batch`` (False).

    On the first batch of a hierarchy the OrderedDict cache sets, TLBs and
    prefetcher streams are flattened into persistent int64 arenas
    (``h._tc_state``); later batches run the kernel on them directly.
    Counter deltas and stats are applied back after every batch, so all
    statistics stay exact at all times — only the OrderedDict *structures*
    go stale, and ``MemoryHierarchy._tc_sync`` rebuilds them on demand.
    ``specs`` may be a per-access sequence or a single int (warm-up);
    ``positions``/``lats`` are ignored when not collecting.
    """
    n = len(addrs)
    if not (isinstance(addrs, array) and addrs.typecode == "q"):
        addrs = array("q", addrs)
    if isinstance(specs, int):
        stride = 0
        specs = array("q", (specs,))
    else:
        stride = 1
        if not (isinstance(specs, array) and specs.typecode == "q"):
            specs = array("q", specs)
    pos_ptr = lat_ptr = None
    lats_q = lats_out = None
    if collect:
        if not (isinstance(positions, array) and positions.typecode == "q"):
            positions = array("q", positions)
        if isinstance(lats, array) and lats.typecode == "q":
            lats_q = lats
        else:
            lats_q = array("q", lats)
            lats_out = lats  # write the kernel's latencies back at the end
        pos_ptr = positions.buffer_info()[0]
        lat_ptr = lats_q.buffer_info()[0]

    state = attach_state(lib, h)
    cfg = state["cfg"]
    cfg[CFG_COLLECT] = 1 if collect else 0
    cfg[CFG_STRIDE] = stride
    ctr = _arena("ctr", N_COUNTERS)

    lib.hier_batch(
        cfg.buffer_info()[0], ctr.buffer_info()[0],
        state["l1"].buffer_info()[0], state["l2"].buffer_info()[0],
        state["l3"].buffer_info()[0], state["lk"].buffer_info()[0],
        state["dtlb"].buffer_info()[0], state["ltlb"].buffer_info()[0],
        state["pf1"].buffer_info()[0], state["pf2"].buffer_info()[0],
        n, addrs.buffer_info()[0], specs.buffer_info()[0], pos_ptr, lat_ptr)

    h.l1d.hits += ctr[0]
    h.l1d.misses += ctr[1]
    h.l1d.evictions += ctr[2]
    h.l1d.writebacks += ctr[3]
    h.l2.hits += ctr[4]
    h.l2.misses += ctr[5]
    h.l2.evictions += ctr[6]
    h.l2.writebacks += ctr[7]
    h.l3.hits += ctr[8]
    h.l3.misses += ctr[9]
    h.l3.evictions += ctr[10]
    h.l3.writebacks += ctr[11]
    h.lock_cache.hits += ctr[12]
    h.lock_cache.misses += ctr[13]
    h.lock_cache.evictions += ctr[14]
    h.lock_cache.writebacks += ctr[15]
    h.dtlb.hits += ctr[16]
    h.dtlb.misses += ctr[17]
    h.lock_tlb.hits += ctr[18]
    h.lock_tlb.misses += ctr[19]
    h.l1d_prefetcher.prefetches_issued += ctr[20]
    h.l2_prefetcher.prefetches_issued += ctr[21]
    # Per-core attribution of the shared-level traffic, mirroring the Python
    # loops exactly: L2/L3 demand counts accumulate during warm-up too (the
    # Python warm loop routes through _access_beyond_l1), while the lock
    # counters are collect-gated in the kernel and therefore zero here when
    # warming — same unconditional fold either way.
    shared = h.stats.shared
    shared["l2_hits"] += ctr[4]
    shared["l2_misses"] += ctr[5]
    shared["l3_hits"] += ctr[8]
    shared["l3_misses"] += ctr[9]
    shared["lock_hits"] += ctr[12]
    shared["lock_misses"] += ctr[13]
    shared["lock_evictions"] += ctr[14]
    shared["lock_writebacks"] += ctr[15]
    if collect:
        names = ("data",
                 "lock" if h.config.lock_cache_enabled else "lock-on-data",
                 "shadow-ideal" if h.config.ideal_shadow else "shadow")
        for code in (0, 1, 2):
            if ctr[22 + code]:
                h.stats.fold(names[code], ctr[22 + code], ctr[25 + code])
        if lats_out is not None:
            lats_out[:] = lats_q


def _self_test_hier(lib) -> bool:
    """The hierarchy kernel must match the Python batch loops exactly."""
    import random

    from repro.memory.cache import CacheConfig
    from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
    from repro.memory.prefetcher import PrefetcherConfig
    from repro.memory.tlb import TLBConfig

    rng = random.Random(20120609)
    geometry = dict(
        l1d=CacheConfig("L1D", size_bytes=1024, associativity=2,
                        block_bytes=64, hit_latency=3),
        l2=CacheConfig("L2", size_bytes=4096, associativity=4,
                       block_bytes=64, hit_latency=10),
        l3=CacheConfig("L3", size_bytes=16384, associativity=4,
                       block_bytes=64, hit_latency=25),
        lock_cache=CacheConfig("LockLoc", size_bytes=512, associativity=2,
                               block_bytes=64, hit_latency=3),
        l1d_prefetcher=PrefetcherConfig(streams=2, depth=3),
        l2_prefetcher=PrefetcherConfig(streams=2, depth=4),
        l1_tlb=TLBConfig("DTLB", entries=4, miss_penalty=20),
        lock_tlb=TLBConfig("LockTLB", entries=2, miss_penalty=20),
        dram_latency=200)
    for lock_en, ideal in ((True, False), (False, True), (True, True)):
        config = HierarchyConfig(lock_cache_enabled=lock_en,
                                 ideal_shadow=ideal, **geometry)
        # Tiny geometry + mixed address locality: every path (hits, misses,
        # evictions, writebacks, TLB churn, both prefetch directions, lock
        # and shadow ports, idealized shadow) triggers within ~2k accesses.
        addrs, specs, positions = [], [], []
        for _ in range(1500):
            region = rng.randrange(3)
            if region == 0:
                a = rng.randrange(4096)
            elif region == 1:
                a = rng.randrange(1 << 20)
            else:
                a = rng.randrange(64) * 64 + rng.randrange(4) * (1 << 18)
            addrs.append(a)
            specs.append(rng.randrange(3) | rng.randrange(2) << 2 | 8)
            positions.append(len(positions))
        base = rng.randrange(1 << 16)
        for i in range(120):  # a descending run: negative-direction streams
            addrs.append(base + 64 * (120 - i))
            specs.append(8)
            positions.append(len(positions))
        ref = MemoryHierarchy(config)
        ref.native_override = False
        ker = MemoryHierarchy(config)
        lats_ref = [0] * len(addrs)
        lats_ker = array("q", bytes(8 * len(addrs)))
        ref.access_batch(addrs, specs, positions, lats_ref)
        ker._batch_native(lib, addrs, specs, positions, lats_ker, True)
        if list(lats_ker) != lats_ref or not _same_hierarchy(ref, ker):
            return False
        for warm_specs in (specs, 0):  # per-access and scalar-spec warm-up
            ref_w = MemoryHierarchy(config)
            ref_w.native_override = False
            ker_w = MemoryHierarchy(config)
            ref_w.warm_batch(addrs, warm_specs)
            ker_w._batch_native(lib, addrs, warm_specs, None, None, False)
            if not _same_hierarchy(ref_w, ker_w):
                return False
        # warm_fill must match the Python working-set install
        # (sim.compiled._install_tail) including tail-limit semantics.
        from repro.sim.compiled import _install_tail
        ref_f = MemoryHierarchy(config)
        ker_f = MemoryHierarchy(config)
        pieces = (addrs[:40], addrs[40:])
        state = attach_state(lib, ker_f)
        for cache_of, role, limit in (
                (lambda h: h.l1d, "l1", 6),
                (lambda h: h.l2, "l2", None)):
            _install_tail(cache_of(ref_f), pieces, limit)
            cache_fill(state, role, cache_of(ker_f), pieces, limit)
        if not _same_hierarchy(ref_f, ker_f):
            return False
    return True


def _same_hierarchy(a, b) -> bool:
    """Full state + counter equality, including LRU order."""
    a._tc_sync()
    b._tc_sync()
    for ca, cb in ((a.l1d, b.l1d), (a.l2, b.l2), (a.l3, b.l3),
                   (a.lock_cache, b.lock_cache)):
        if (ca.hits, ca.misses, ca.evictions, ca.writebacks) != \
                (cb.hits, cb.misses, cb.evictions, cb.writebacks):
            return False
        if set(ca._sets) != set(cb._sets):
            return False
        for idx, sa in ca._sets.items():
            if list(sa.items()) != list(cb._sets[idx].items()):
                return False
    for ta, tb in ((a.dtlb, b.dtlb), (a.lock_tlb, b.lock_tlb)):
        if (ta.hits, ta.misses) != (tb.hits, tb.misses):
            return False
        if list(ta._entries) != list(tb._entries):
            return False
    for pa, pb in ((a.l1d_prefetcher, b.l1d_prefetcher),
                   (a.l2_prefetcher, b.l2_prefetcher)):
        if pa.prefetches_issued != pb.prefetches_issued:
            return False
        if [(s.last_block, s.direction) for s in pa._streams] != \
                [(s.last_block, s.direction) for s in pb._streams]:
            return False
    return a.stats == b.stats


def _self_test_sched(lib) -> bool:
    """The scheduler kernel must match the Python array scheduler exactly."""
    import random
    from types import SimpleNamespace

    from repro.core.config import WatchdogConfig
    from repro.isa.microops import UopKind
    from repro.pipeline.config import MachineConfig
    from repro.pipeline.core import OutOfOrderCore

    rng = random.Random(42)
    # Tiny windows and widths so every structural stall (ROB/IQ/LQ/SQ full,
    # dispatch width, commit width, fetch refill) occurs within ~1k µops.
    machine = MachineConfig(rob_entries=12, iq_entries=6, lq_entries=3,
                            sq_entries=3, dispatch_width=2, commit_width=2,
                            branch_misprediction_penalty=5)
    kinds = list(UopKind)
    uops, lat_template = [], []
    for _ in range(1200):
        kind = rng.choice(kinds)
        flags = kind.code
        if kind in (UopKind.LOAD, UopKind.SHADOW_LOAD):
            flags |= 32
        elif kind in (UopKind.STORE, UopKind.SHADOW_STORE):
            flags |= 64
        if kind is UopKind.BRANCH:
            flags |= 128
            if rng.random() < 0.3:
                flags |= 256
        s0 = rng.randrange(-1, 32)
        ms0 = rng.randrange(-1, 32)
        uops.append((flags, rng.choice((1, 1, 1, 2, 4)),
                     rng.randrange(-1, 32), s0,
                     rng.randrange(-1, 32) if s0 >= 0 else -1,
                     rng.randrange(-1, 32), ms0,
                     rng.randrange(-1, 32) if ms0 >= 0 else -1))
        lat_template.append(rng.choice((1, 1, 3, 3, 13, 23, 258)))
    stream = SimpleNamespace(
        uops=uops, lat_template=lat_template, mem_pos=[], mem_addr=[],
        mem_spec=[], total_uops=sum(u[1] for u in uops), injected_uops=0,
        macro_instructions=len(uops), memory_accesses=0)
    for config in (WatchdogConfig.isa_assisted_uaf(),
                   WatchdogConfig.no_lock_cache()):
        ref_core = OutOfOrderCore(machine=machine, watchdog=config,
                                  timecore=False)
        ker_core = OutOfOrderCore(machine=machine, watchdog=config)
        ref_result = ref_core.simulate_compiled(stream)
        ker_result = ker_core._simulate_compiled_native(stream, lib)
        if ker_result is None or ker_result != ref_result:
            return False
        for rp, kp in zip(ref_core.units.all_pools().values(),
                          ker_core.units.all_pools().values()):
            if (rp._next_free, rp.uses, rp.total_wait) != \
                    (kp._next_free, kp.uses, kp.total_wait):
                return False
    return True


def _self_test_pack(lib) -> bool:
    """``pack_words`` must agree with the Python packer, overflow included."""
    import random

    rng = random.Random(977)
    good = []
    for _ in range(512):
        good.append((rng.randrange(512), rng.randrange(64),
                     rng.randrange(-1, 63), rng.randrange(-1, 63),
                     rng.randrange(-1, 63), rng.randrange(-1, 63),
                     rng.randrange(-1, 63), rng.randrange(-1, 63)))
    # Field boundaries: every slot at its extremes in one row.
    good.append((511, 63, 62, -1, 62, -1, 62, -1))
    good.append((0, 0, -1, -1, -1, -1, -1, -1))
    ref = pack_entry_words(good)
    ker = _pack_rows_native(lib, good)
    if ref is None or ker is None or ref != ker:
        return False
    overflowing = ((0, 64, 0, 0, 0, 0, 0, 0),     # cost too wide
                   (512, 1, 0, 0, 0, 0, 0, 0),    # flags too wide
                   (0, 1, 63, 0, 0, 0, 0, 0),     # slot too high
                   (0, 1, 0, 0, 0, 0, 0, -2),     # slot below none
                   (0, -1, 0, 0, 0, 0, 0, 0))     # negative cost
    for bad in overflowing:
        rows = good[:3] + [bad]
        if pack_entry_words(rows) is not None \
                or _pack_rows_native(lib, rows) is not None:
            return False
    return True


def _self_test(lib):
    """All kernels must reproduce the Python loops before being trusted.

    Returns ``(ok, detail)`` — the failing stage's name lets the loader's
    refusal message say *which* kernel diverged.
    """
    for check, stage in ((_self_test_hier, "hier_batch/warm_fill"),
                         (_self_test_sched, "sched_run"),
                         (_self_test_pack, "pack_words")):
        if not check(lib):
            return False, stage
    return True, None


def load():
    """The compiled timing core, or ``None`` when unavailable (memoized)."""
    return build.load_kernel("timecore", _SOURCE, switch_env="REPRO_TIMECORE",
                             dir_env="REPRO_TIMECORE_DIR", bind=_bind,
                             self_test=_self_test)


def status():
    """Why the last :func:`load` decision went the way it did (or ``None``)."""
    return build.status("timecore")
