"""Optional native (C) kernels compiled with the system compiler.

Two hot loops of the reproduction are lowered to C kernels, both following
the same recipe (proved out by the fast-forward kernel of the workload
generator): the source is embedded in a Python module, compiled at first use
with whatever system C compiler is available, cached on disk keyed by a hash
of the source, loaded through :mod:`ctypes`, and *self-tested at load time*
against the pure-Python reference implementation before it is trusted.  When
anything in that chain fails — no compiler, a failed build, a self-test
mismatch, or an explicit env kill switch — the caller silently falls back to
the bit-identical Python path.

* :mod:`repro.native.build` — the shared compile-at-first-use machinery
  (trusted cache directory, cc invocation, artifact cache, memoized loader).
* :mod:`repro.native._timecore` — the timing core: the batched memory
  hierarchy walk and the dispatch/issue/commit integer scheduler of the
  compiled pipeline (kill switch ``REPRO_TIMECORE=0``).
* :mod:`repro.workloads._ffcore` — the workload fast-forward kernel lives
  with the workloads but builds through :mod:`repro.native.build` (kill
  switch ``REPRO_FFCORE=0``).
"""
