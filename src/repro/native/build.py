"""Compile-at-first-use machinery shared by the native kernels.

Every native kernel in this repository follows one recipe (established by the
fast-forward kernel, :mod:`repro.workloads._ffcore`):

1. the C source is embedded in the owning Python module,
2. at first use it is compiled with whatever system C compiler responds
   (``cc``, ``gcc``, ``clang``) into a shared object cached on disk under a
   name derived from the sha256 of the source — so a source change can never
   pick up a stale artifact, and a second process (or a later run) reuses the
   build,
3. the artifact is loaded with :mod:`ctypes` and **self-tested** against the
   pure-Python reference implementation before it is trusted,
4. an environment kill switch disables the kernel outright, and *any* failure
   anywhere in the chain makes the loader return ``None`` so the caller falls
   back to the bit-identical Python path.

This module holds the shared steps (trusted cache directory, compilation,
memoized load); each kernel module supplies its source, its ctypes bindings
and its self-test.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple

_COMPILERS = ("cc", "gcc", "clang")


def _dir_is_trusted(path: Path) -> bool:
    """Refuse to load/compile kernels from a directory another user controls.

    The shared-tmp fallback has a predictable name; without this check a
    local attacker could pre-create it and plant a ``.so`` that
    ``ctypes.CDLL`` would execute before the self-test runs.
    """
    try:
        stat = path.stat()
    except OSError:
        return False
    uid = getattr(os, "getuid", lambda: 0)()
    if hasattr(os, "getuid") and stat.st_uid != uid:
        return False
    # No group/other write permission.
    return (stat.st_mode & 0o022) == 0


def cache_dir(dir_env: str) -> Optional[Path]:
    """The trusted artifact directory, or ``None`` when none is available.

    ``dir_env`` names an environment variable overriding the location (used
    by tests to build into a temporary directory); otherwise the per-user
    cache directory is used, with a per-uid tmp directory as fallback.
    """
    override = os.environ.get(dir_env)
    if override:
        path = Path(override)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        return path if _dir_is_trusted(path) else None
    for path in (Path.home() / ".cache" / "repro-watchdog",
                 Path(tempfile.gettempdir()) /
                 f"repro-watchdog-{getattr(os, 'getuid', lambda: 0)()}"):
        try:
            path.mkdir(parents=True, exist_ok=True, mode=0o700)
        except OSError:
            continue
        if _dir_is_trusted(path):
            return path
    return None


def compile_source(source: str, so_path: Path) -> bool:
    """Build ``source`` into ``so_path``; False on any failure."""
    try:
        so_path.parent.mkdir(parents=True, exist_ok=True)
        src = so_path.with_suffix(".c")
        src.write_text(source, encoding="utf-8")
        tmp = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
        for compiler in _COMPILERS:
            try:
                result = subprocess.run(
                    [compiler, "-O2", "-fPIC", "-shared", "-o", str(tmp),
                     str(src)],
                    capture_output=True, timeout=120)
            except (OSError, subprocess.SubprocessError):
                continue
            if result.returncode == 0 and tmp.exists():
                os.replace(tmp, so_path)  # atomic: concurrent builds race safely
                return True
        return False
    except OSError:
        return False


def artifact_path(name: str, source: str, dir_env: str) -> Optional[Path]:
    """Where ``name``'s artifact for this exact source lives (may not exist)."""
    directory = cache_dir(dir_env)
    if directory is None:
        return None
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    return directory / f"{name}-{digest}.so"


#: Kernel name -> ``(lib_or_None,)``.  Memoizes :func:`load_kernel` per
#: process; tests clear entries to force a reload under changed conditions.
_LOADED: Dict[str, Tuple[Optional[ctypes.CDLL]]] = {}


def load_kernel(name: str, source: str, switch_env: str, dir_env: str,
                bind: Callable[[Path], ctypes.CDLL],
                self_test: Callable[[ctypes.CDLL], bool]):
    """The compiled-and-verified kernel ``name``, or ``None`` (memoized).

    ``switch_env`` names the kill-switch environment variable (value ``"0"``
    disables the kernel), ``dir_env`` the cache-directory override.  ``bind``
    attaches ctypes signatures to the loaded library; ``self_test`` must
    return True before the kernel is handed out.  Every failure — missing
    compiler, failed build, binding error, failed or crashing self-test —
    yields ``None``, and the decision is remembered for the process.
    """
    cached = _LOADED.get(name)
    if cached is not None:
        return cached[0]
    lib = None
    if os.environ.get(switch_env, "").strip() != "0":
        try:
            so_path = artifact_path(name, source, dir_env)
            if so_path is not None and (so_path.exists()
                                        or compile_source(source, so_path)):
                candidate = bind(so_path)
                if self_test(candidate):
                    lib = candidate
        except Exception:
            lib = None
    _LOADED[name] = (lib,)
    return lib
