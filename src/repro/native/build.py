"""Compile-at-first-use machinery shared by the native kernels.

Every native kernel in this repository follows one recipe (established by the
fast-forward kernel, :mod:`repro.workloads._ffcore`):

1. the C source is embedded in the owning Python module,
2. at first use it is compiled with whatever system C compiler responds
   (``cc``, ``gcc``, ``clang``) into a shared object cached on disk under a
   name derived from the sha256 of the source — so a source change can never
   pick up a stale artifact, and a second process (or a later run) reuses the
   build,
3. the artifact is loaded with :mod:`ctypes` and **self-tested** against the
   pure-Python reference implementation before it is trusted,
4. an environment kill switch disables the kernel outright, and *any* failure
   anywhere in the chain makes the loader return ``None`` so the caller falls
   back to the bit-identical Python path.

The fallback is golden-equal but ~6× slower, so "return None" must never be
the whole story: every load decision is recorded on a module-level
:class:`KernelStatus` (``why`` did it fail — compiler missing, non-zero cc
exit, refused self-test), an *unexpected* failure additionally emits a single
:class:`RuntimeWarning` per process, and the statuses are surfaced by
``repro bench`` and as :class:`~repro.sim.results.DegradationEvent` records
in suite reports.  A deliberately disabled kernel (kill switch) is recorded
as ``disabled`` and stays silent — the user asked for it.

This module holds the shared steps (trusted cache directory, compilation,
memoized load, status ledger); each kernel module supplies its source, its
ctypes bindings and its self-test.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

_COMPILERS = ("cc", "gcc", "clang")


def _dir_is_trusted(path: Path) -> bool:
    """Refuse to load/compile kernels from a directory another user controls.

    The shared-tmp fallback has a predictable name; without this check a
    local attacker could pre-create it and plant a ``.so`` that
    ``ctypes.CDLL`` would execute before the self-test runs.
    """
    try:
        stat = path.stat()
    except OSError:
        return False
    uid = getattr(os, "getuid", lambda: 0)()
    if hasattr(os, "getuid") and stat.st_uid != uid:
        return False
    # No group/other write permission.
    return (stat.st_mode & 0o022) == 0


def cache_dir(dir_env: str) -> Optional[Path]:
    """The trusted artifact directory, or ``None`` when none is available.

    ``dir_env`` names an environment variable overriding the location (used
    by tests to build into a temporary directory); otherwise the per-user
    cache directory is used, with a per-uid tmp directory as fallback.
    """
    override = os.environ.get(dir_env)
    if override:
        path = Path(override)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        return path if _dir_is_trusted(path) else None
    for path in (Path.home() / ".cache" / "repro-watchdog",
                 Path(tempfile.gettempdir()) /
                 f"repro-watchdog-{getattr(os, 'getuid', lambda: 0)()}"):
        try:
            path.mkdir(parents=True, exist_ok=True, mode=0o700)
        except OSError:
            continue
        if _dir_is_trusted(path):
            return path
    return None


def compile_source(source: str, so_path: Path) -> Optional[str]:
    """Build ``source`` into ``so_path``; ``None`` on success, else why not.

    The failure string names the concrete cause — no compiler on PATH, or
    the last responding compiler's exit status with a stderr tail — so the
    status ledger (and through it ``repro bench`` and suite reports) can say
    more than "kernel unavailable".
    """
    try:
        so_path.parent.mkdir(parents=True, exist_ok=True)
        src = so_path.with_suffix(".c")
        src.write_text(source, encoding="utf-8")
        tmp = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
        failure: Optional[str] = None
        responded = False
        for compiler in _COMPILERS:
            try:
                result = subprocess.run(
                    [compiler, "-O2", "-fPIC", "-shared", "-o", str(tmp),
                     str(src)],
                    capture_output=True, timeout=120)
            except (OSError, subprocess.SubprocessError):
                continue
            responded = True
            if result.returncode == 0 and tmp.exists():
                os.replace(tmp, so_path)  # atomic: concurrent builds race safely
                return None
            stderr = result.stderr.decode(errors="replace").strip()
            tail = stderr.splitlines()[-1] if stderr else "no diagnostics"
            failure = (f"{compiler} exited with status "
                       f"{result.returncode}: {tail}")
        if not responded:
            return (f"no C compiler responded "
                    f"(tried {', '.join(_COMPILERS)})")
        return failure
    except OSError as exc:
        return f"build I/O failure: {exc}"


def artifact_path(name: str, source: str, dir_env: str) -> Optional[Path]:
    """Where ``name``'s artifact for this exact source lives (may not exist)."""
    directory = cache_dir(dir_env)
    if directory is None:
        return None
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    return directory / f"{name}-{digest}.so"


@dataclass
class KernelStatus:
    """The recorded outcome of one kernel's (memoized) load decision.

    ``available`` — the kernel loaded and passed its self-test;
    ``disabled`` — the kill switch turned it off on purpose;
    ``reason`` — why an enabled kernel is nonetheless unavailable (empty
    when available).  An enabled-but-unavailable kernel is the *unexpected*
    case the resilience layer reports.
    """

    name: str
    available: bool = False
    disabled: bool = False
    reason: str = ""
    artifact: Optional[str] = None

    @property
    def unexpected(self) -> bool:
        """True when the kernel should be running but is not."""
        return not self.available and not self.disabled

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "available": self.available,
                "disabled": self.disabled, "reason": self.reason,
                "artifact": self.artifact}


#: Kernel name -> ``(lib_or_None,)``.  Memoizes :func:`load_kernel` per
#: process; tests clear entries to force a reload under changed conditions.
_LOADED: Dict[str, Tuple[Optional[ctypes.CDLL]]] = {}

#: Kernel name -> the status of its last load decision.  Rewritten whenever
#: the memoized decision is remade (i.e. after ``_LOADED`` is cleared).
_STATUS: Dict[str, KernelStatus] = {}

#: Kernel names that already emitted their one-per-process unavailability
#: warning (an unexpected failure warns once, not per call site).
_WARNED: set = set()


def status(name: str) -> Optional[KernelStatus]:
    """The recorded load status of kernel ``name`` (None before first load)."""
    return _STATUS.get(name)


def statuses() -> Dict[str, KernelStatus]:
    """All recorded kernel load statuses, by kernel name."""
    return dict(_STATUS)


def unexpected_failures() -> Dict[str, KernelStatus]:
    """Kernels that should be running but are not (candidate degradations)."""
    return {name: st for name, st in _STATUS.items() if st.unexpected}


def forget(name: str) -> None:
    """Drop the memoized decision (and status) so the next load is fresh."""
    _LOADED.pop(name, None)
    _STATUS.pop(name, None)


def _fault_injected_selftest_failure(name: str) -> bool:
    """Whether the active ``REPRO_FAULTS`` plan fails this kernel's self-test."""
    # Imported at call time: build.py must stay importable before repro.sim
    # (the kernels' owning modules import it at module scope).
    from repro.sim.faults import FaultPlan

    return FaultPlan.from_env().kernel_selftest_fails(name)


def load_kernel(name: str, source: str, switch_env: str, dir_env: str,
                bind: Callable[[Path], ctypes.CDLL],
                self_test: Callable[[ctypes.CDLL], bool]):
    """The compiled-and-verified kernel ``name``, or ``None`` (memoized).

    ``switch_env`` names the kill-switch environment variable (value ``"0"``
    disables the kernel), ``dir_env`` the cache-directory override.  ``bind``
    attaches ctypes signatures to the loaded library; ``self_test`` must
    return a truthy value — or an ``(ok, detail)`` pair, whose detail names
    the diverging stage in the refusal reason — before the kernel is handed
    out.  Every failure — missing
    compiler, failed build, binding error, failed or crashing self-test —
    yields ``None`` with its reason recorded in :func:`status`; an
    unexpected failure (anything but the kill switch) warns once per
    process.  The decision is remembered for the process.
    """
    cached = _LOADED.get(name)
    if cached is not None:
        return cached[0]
    st = KernelStatus(name=name)
    lib = None
    if os.environ.get(switch_env, "").strip() == "0":
        st.disabled = True
        st.reason = f"disabled by {switch_env}=0"
    else:
        try:
            so_path = artifact_path(name, source, dir_env)
            if so_path is None:
                st.reason = ("no trusted artifact cache directory "
                             f"(checked {dir_env}, ~/.cache, per-uid tmp)")
            else:
                st.artifact = str(so_path)
                compile_error = None
                if not so_path.exists():
                    compile_error = compile_source(source, so_path)
                if compile_error is not None:
                    st.reason = compile_error
                elif _fault_injected_selftest_failure(name):
                    st.reason = ("fault-injected self-test failure "
                                 "(REPRO_FAULTS)")
                else:
                    candidate = bind(so_path)
                    outcome = self_test(candidate)
                    detail = None
                    if isinstance(outcome, tuple):
                        outcome, detail = outcome
                    if outcome:
                        lib = candidate
                        st.available = True
                    else:
                        st.reason = ("self-test refused the kernel "
                                     "(output diverged from the Python "
                                     "reference"
                                     + (f": {detail}" if detail else "")
                                     + ")")
        except Exception as exc:
            lib = None
            st.available = False
            st.reason = f"loader error: {type(exc).__name__}: {exc}"
    if st.unexpected and name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"native kernel {name!r} unavailable — falling back to the "
            f"pure-Python path (correct but much slower): {st.reason}",
            RuntimeWarning, stacklevel=2)
    _LOADED[name] = (lib,)
    _STATUS[name] = st
    return lib
