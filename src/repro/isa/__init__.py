"""Macro ISA and µop ISA used by the Watchdog reproduction.

The paper's simulator decodes x86-64 macro instructions and cracks them into
RISC-style µops (§9.1); Watchdog then injects additional µops for metadata
propagation and checking (§3).  This package defines:

* :mod:`repro.isa.registers` — architectural register file layout,
* :mod:`repro.isa.instructions` — the macro instruction set, including the
  pointer-annotated load/store variants used by ISA-assisted pointer
  identification (§5.2),
* :mod:`repro.isa.microops` — the µop vocabulary, including the Watchdog
  check / shadow-load / shadow-store / metadata-select µops,
* :mod:`repro.isa.decoder` — the cracker from macro instructions to µops.
"""

from repro.isa.registers import (
    ArchReg,
    INT_REGS,
    FP_REGS,
    STACK_POINTER,
    RegisterFile,
)
from repro.isa.instructions import (
    Opcode,
    Instruction,
    AccessSize,
    is_memory_opcode,
    is_load_opcode,
    is_store_opcode,
)
from repro.isa.microops import MicroOp, UopKind
from repro.isa.decoder import Decoder

__all__ = [
    "ArchReg",
    "INT_REGS",
    "FP_REGS",
    "STACK_POINTER",
    "RegisterFile",
    "Opcode",
    "Instruction",
    "AccessSize",
    "is_memory_opcode",
    "is_load_opcode",
    "is_store_opcode",
    "MicroOp",
    "UopKind",
    "Decoder",
]
