"""Architectural registers and the functional register file.

Watchdog conceptually extends every architectural register with a *sidecar*
identifier register (§3.4).  In the functional machine we model this by
storing, next to each register's 64-bit data value, a metadata slot managed by
the Watchdog engine (see :mod:`repro.core.metadata`).  The timing model uses a
decoupled mapping instead (§6.2), handled by :mod:`repro.core.renaming`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ProgramError

WORD_BYTES = 8
WORD_MASK = (1 << 64) - 1


class RegClass(enum.Enum):
    """Integer versus floating-point register class.

    Conservative pointer identification (§5.1) relies on the observation that
    pointers live in integer registers; loads/stores to floating-point
    registers are never treated as pointer operations.
    """

    INT = "int"
    FP = "fp"


@dataclass(frozen=True, order=True)
class ArchReg:
    """An architectural register name such as ``r3`` or ``f7``."""

    regclass: RegClass
    index: int

    def __str__(self) -> str:
        prefix = "r" if self.regclass is RegClass.INT else "f"
        return f"{prefix}{self.index}"

    @property
    def is_int(self) -> bool:
        return self.regclass is RegClass.INT

    @property
    def is_fp(self) -> bool:
        return self.regclass is RegClass.FP


NUM_INT_REGS = 16
NUM_FP_REGS = 16

#: Total number of flat register *slots* (integer registers first, then FP).
#: The compiled timing pipeline indexes its readiness scoreboards by slot
#: instead of hashing :class:`ArchReg` objects.
NUM_REG_SLOTS = NUM_INT_REGS + NUM_FP_REGS

INT_REGS = tuple(ArchReg(RegClass.INT, i) for i in range(NUM_INT_REGS))
FP_REGS = tuple(ArchReg(RegClass.FP, i) for i in range(NUM_FP_REGS))


def reg_slot(reg: "ArchReg") -> int:
    """Flat scoreboard slot of a register (int regs first, then FP regs)."""
    if reg.regclass is RegClass.INT:
        return reg.index
    return NUM_INT_REGS + reg.index

#: The stack pointer register (``%rsp`` in the paper's figures).  The hardware
#: associates a per-stack-frame identifier with this register on call/return
#: (Figure 3c/3d).
STACK_POINTER = INT_REGS[15]

#: Register used by convention to return values from calls in the program
#: model (analogous to ``%rax``).
RETURN_VALUE = INT_REGS[0]


def int_reg(index: int) -> ArchReg:
    """Return the integer architectural register with the given index."""
    if not 0 <= index < NUM_INT_REGS:
        raise ProgramError(f"integer register index out of range: {index}")
    return INT_REGS[index]


def fp_reg(index: int) -> ArchReg:
    """Return the floating-point architectural register with the given index."""
    if not 0 <= index < NUM_FP_REGS:
        raise ProgramError(f"fp register index out of range: {index}")
    return FP_REGS[index]


@dataclass
class RegisterFile:
    """Functional (architectural) register file holding 64-bit values.

    Values are stored as Python ints masked to 64 bits.  Floating-point
    registers store their bit patterns the same way; the workloads in this
    reproduction never need real FP arithmetic semantics, only the
    pointer/non-pointer distinction.
    """

    values: Dict[ArchReg, int] = field(default_factory=dict)

    def read(self, reg: ArchReg) -> int:
        """Read a register; unwritten registers read as zero."""
        return self.values.get(reg, 0)

    def write(self, reg: ArchReg, value: int) -> None:
        """Write a 64-bit value (masked) to a register."""
        self.values[reg] = value & WORD_MASK

    def copy(self) -> "RegisterFile":
        """Return an independent snapshot of the register file."""
        return RegisterFile(values=dict(self.values))

    def __getitem__(self, reg: ArchReg) -> int:
        return self.read(reg)

    def __setitem__(self, reg: ArchReg, value: int) -> None:
        self.write(reg, value)


def parse_reg(name: str) -> ArchReg:
    """Parse ``"r4"`` / ``"f2"`` style register names (used by tests/examples)."""
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in ("r", "f") or not name[1:].isdigit():
        raise ProgramError(f"cannot parse register name: {name!r}")
    index = int(name[1:])
    return int_reg(index) if name[0] == "r" else fp_reg(index)
