"""The macro instruction set.

This is a small RISC-flavoured macro ISA standing in for the x86-64 macro
instructions of the paper's simulator.  What matters for Watchdog is the
*category* of each instruction:

* register-to-register arithmetic (metadata propagation, §3.4/§6),
* loads and stores of various sizes and register classes (checks plus shadow
  metadata accesses, §3.2/§3.3, and the conservative pointer-identification
  heuristic of §5.1),
* pointer-annotated load/store variants used by ISA-assisted pointer
  identification (§5.2),
* calls and returns (stack-frame identifier management, Figure 3c/3d),
* the new ``setident`` / ``getident`` instructions used by the instrumented
  allocator (Figure 3a/3b) and ``setbounds`` for the bounds extension (§8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.isa.registers import ArchReg


class AccessSize(enum.IntEnum):
    """Memory access size in bytes.

    Only 8-byte (word) integer accesses can carry pointers; sub-word and
    floating point accesses are never pointer operations (§5.1).
    """

    BYTE = 1
    HALF = 2
    WORD32 = 4
    WORD64 = 8


class PointerHint(enum.Enum):
    """ISA-assisted pointer annotation attached to a load/store (§5.2).

    ``UNKNOWN`` corresponds to an unannotated binary (conservative mode must
    guess); ``POINTER`` / ``NOT_POINTER`` correspond to the load/store variants
    a compiler would emit.
    """

    UNKNOWN = "unknown"
    POINTER = "pointer"
    NOT_POINTER = "not-pointer"


class Opcode(enum.Enum):
    """Macro opcodes."""

    # Register/immediate arithmetic.
    MOV_RR = "mov_rr"
    MOV_RI = "mov_ri"
    ADD_RR = "add_rr"
    ADD_RI = "add_ri"
    SUB_RR = "sub_rr"
    SUB_RI = "sub_ri"
    MUL_RR = "mul_rr"
    DIV_RR = "div_rr"
    AND_RR = "and_rr"
    OR_RR = "or_rr"
    XOR_RR = "xor_rr"
    SHL_RI = "shl_ri"
    SHR_RI = "shr_ri"
    CMP_RR = "cmp_rr"
    CMP_RI = "cmp_ri"
    # Sub-word arithmetic (never produces a pointer, §6.2 case two).
    ADD32_RR = "add32_rr"
    # Floating point.
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    # Address generation (PC-relative / global addressing, §7).
    LEA_GLOBAL = "lea_global"
    LEA = "lea"
    # Memory.
    LOAD = "load"
    STORE = "store"
    FLOAD = "fload"
    FSTORE = "fstore"
    # Control.
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    NOP = "nop"
    HALT = "halt"
    # Watchdog runtime interface (Figure 3a/3b, §8).
    SETIDENT = "setident"
    GETIDENT = "getident"
    SETBOUNDS = "setbounds"


# Small integer codes attached to the enum members themselves: the compiled
# trace pipeline builds template keys out of millions of dynamic instruction
# instances, and an attribute load is ~2x faster than hashing an enum member
# into a dict (enum.__hash__ is a Python-level call).
for _i, _member in enumerate(Opcode):
    _member.code = _i
for _i, _member in enumerate(PointerHint):
    _member.code = _i
del _i, _member


#: Opcodes whose destination can never be a valid pointer; the renamer marks
#: their metadata mapping invalid instead of propagating (§6.2).
NON_POINTER_PRODUCERS = frozenset(
    {
        Opcode.MUL_RR,
        Opcode.DIV_RR,
        Opcode.SHL_RI,
        Opcode.SHR_RI,
        Opcode.CMP_RR,
        Opcode.CMP_RI,
        Opcode.ADD32_RR,
        Opcode.FADD,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FMOV,
        Opcode.AND_RR,
        Opcode.OR_RR,
        Opcode.XOR_RR,
    }
)

#: Opcodes that copy/propagate metadata from a single register source (§6.2).
SINGLE_SOURCE_PROPAGATORS = frozenset(
    {Opcode.MOV_RR, Opcode.ADD_RI, Opcode.SUB_RI, Opcode.LEA}
)

#: Opcodes with two register sources either of which may be the pointer, so a
#: ``META_SELECT`` µop is required (§6.2 case three).
SELECT_PROPAGATORS = frozenset({Opcode.ADD_RR, Opcode.SUB_RR})

MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.FLOAD, Opcode.FSTORE})
LOAD_OPCODES = frozenset({Opcode.LOAD, Opcode.FLOAD})
STORE_OPCODES = frozenset({Opcode.STORE, Opcode.FSTORE})
CONTROL_OPCODES = frozenset({Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RET, Opcode.HALT})


def is_memory_opcode(opcode: Opcode) -> bool:
    """True if the opcode accesses program memory."""
    return opcode in MEMORY_OPCODES


def is_load_opcode(opcode: Opcode) -> bool:
    """True if the opcode reads program memory."""
    return opcode in LOAD_OPCODES


def is_store_opcode(opcode: Opcode) -> bool:
    """True if the opcode writes program memory."""
    return opcode in STORE_OPCODES


@dataclass
class Instruction:
    """A single macro instruction.

    Parameters
    ----------
    opcode:
        The macro opcode.
    dest:
        Destination register, if any.
    srcs:
        Source registers in operand order.  For memory operations the first
        source is the address (base) register; stores pass the value register
        second.
    imm:
        Immediate operand (offsets, constants, branch targets).
    size:
        Access size for memory operations.
    pointer_hint:
        ISA-assisted pointer annotation for memory operations (§5.2).
    label / target:
        Optional symbolic label of this instruction and of a branch/call
        target, resolved by the compiler.
    """

    opcode: Opcode
    dest: Optional[ArchReg] = None
    srcs: Tuple[ArchReg, ...] = ()
    imm: int = 0
    size: AccessSize = AccessSize.WORD64
    pointer_hint: PointerHint = PointerHint.UNKNOWN
    label: Optional[str] = None
    target: Optional[str] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.srcs, tuple):
            self.srcs = tuple(self.srcs)
        self._validate()

    def _validate(self) -> None:
        op = self.opcode
        if op in MEMORY_OPCODES and not self.srcs:
            raise ProgramError(f"{op.value} requires an address register")
        if op in LOAD_OPCODES and self.dest is None:
            raise ProgramError(f"{op.value} requires a destination register")
        if op in STORE_OPCODES and len(self.srcs) < 2:
            raise ProgramError(f"{op.value} requires address and value registers")
        if op is Opcode.SETIDENT and len(self.srcs) < 2:
            raise ProgramError("setident requires pointer and identifier registers")
        if op is Opcode.GETIDENT and (self.dest is None or not self.srcs):
            raise ProgramError("getident requires a destination and a pointer register")

    @property
    def is_memory(self) -> bool:
        return is_memory_opcode(self.opcode)

    @property
    def is_load(self) -> bool:
        return is_load_opcode(self.opcode)

    @property
    def is_store(self) -> bool:
        return is_store_opcode(self.opcode)

    @property
    def is_control(self) -> bool:
        return self.opcode in CONTROL_OPCODES

    @property
    def address_reg(self) -> Optional[ArchReg]:
        """The register holding the address for memory operations."""
        if self.is_memory:
            return self.srcs[0]
        return None

    @property
    def may_carry_pointer(self) -> bool:
        """Whether this memory operation could move a pointer value.

        This encodes the §5.1 conservative heuristic: only 64-bit accesses to
        integer registers may carry pointers.  ISA-assisted identification
        further refines it via :attr:`pointer_hint`.
        """
        if not self.is_memory:
            return False
        if self.opcode in (Opcode.FLOAD, Opcode.FSTORE):
            return False
        return self.size is AccessSize.WORD64

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.dest is not None:
            parts.append(str(self.dest))
        parts.extend(str(s) for s in self.srcs)
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target:
            parts.append(f"@{self.target}")
        return " ".join(parts)
