"""Decoder: crack macro instructions into baseline µops.

The decoder produces only the *baseline* µops of the original program.  The
Watchdog µops (checks, shadow accesses, metadata selects, stack-frame
identifier management) are injected afterwards by
:class:`repro.core.uop_injection.UopInjector`, which wraps this decoder.  This
mirrors the paper's structure: the core's decoder is unchanged and Watchdog
augments instruction execution by injecting extra µops (§3).
"""

from __future__ import annotations

from typing import List

from repro.errors import ProgramError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.microops import MicroOp, UopKind
from repro.isa.registers import STACK_POINTER

#: Macro opcode -> µop kind for the simple one-to-one cases.
_SIMPLE_ALU = {
    Opcode.MOV_RR: UopKind.ALU,
    Opcode.MOV_RI: UopKind.ALU,
    Opcode.ADD_RR: UopKind.ALU,
    Opcode.ADD_RI: UopKind.ALU,
    Opcode.SUB_RR: UopKind.ALU,
    Opcode.SUB_RI: UopKind.ALU,
    Opcode.AND_RR: UopKind.ALU,
    Opcode.OR_RR: UopKind.ALU,
    Opcode.XOR_RR: UopKind.ALU,
    Opcode.SHL_RI: UopKind.ALU,
    Opcode.SHR_RI: UopKind.ALU,
    Opcode.CMP_RR: UopKind.ALU,
    Opcode.CMP_RI: UopKind.ALU,
    Opcode.ADD32_RR: UopKind.ALU,
    Opcode.LEA: UopKind.ALU,
    Opcode.LEA_GLOBAL: UopKind.ALU,
    Opcode.MUL_RR: UopKind.MUL,
    Opcode.DIV_RR: UopKind.DIV,
    Opcode.FADD: UopKind.FP,
    Opcode.FMUL: UopKind.FP,
    Opcode.FDIV: UopKind.FP,
    Opcode.FMOV: UopKind.FP,
}


class Decoder:
    """Cracks macro instructions into baseline µop sequences."""

    def decode(self, inst: Instruction) -> List[MicroOp]:
        """Return the baseline µops for ``inst`` (no Watchdog µops)."""
        op = inst.opcode

        if op in _SIMPLE_ALU:
            return [MicroOp(kind=_SIMPLE_ALU[op], dest=inst.dest, srcs=inst.srcs,
                            imm=inst.imm, macro=inst)]

        if op in (Opcode.LOAD, Opcode.FLOAD):
            return [MicroOp(kind=UopKind.LOAD, dest=inst.dest, srcs=(inst.srcs[0],),
                            imm=inst.imm, size=inst.size, macro=inst)]

        if op in (Opcode.STORE, Opcode.FSTORE):
            return [MicroOp(kind=UopKind.STORE, dest=None, srcs=inst.srcs,
                            imm=inst.imm, size=inst.size, macro=inst)]

        if op is Opcode.BRANCH or op is Opcode.JUMP:
            return [MicroOp(kind=UopKind.BRANCH, dest=None, srcs=inst.srcs,
                            imm=inst.imm, macro=inst)]

        if op is Opcode.CALL:
            # A call adjusts the stack pointer and transfers control; model as
            # one ALU µop (stack adjust) plus a branch µop.
            return [
                MicroOp(kind=UopKind.ALU, dest=STACK_POINTER, srcs=(STACK_POINTER,),
                        imm=-8, macro=inst),
                MicroOp(kind=UopKind.BRANCH, dest=None, srcs=(), imm=inst.imm, macro=inst),
            ]

        if op is Opcode.RET:
            return [
                MicroOp(kind=UopKind.ALU, dest=STACK_POINTER, srcs=(STACK_POINTER,),
                        imm=8, macro=inst),
                MicroOp(kind=UopKind.BRANCH, dest=None, srcs=(), macro=inst),
            ]

        if op is Opcode.SETIDENT:
            return [MicroOp(kind=UopKind.SETIDENT, dest=None, srcs=inst.srcs,
                            meta_srcs=(inst.srcs[1],), meta_dest=inst.srcs[0],
                            macro=inst)]

        if op is Opcode.GETIDENT:
            return [MicroOp(kind=UopKind.GETIDENT, dest=inst.dest, srcs=inst.srcs,
                            meta_srcs=(inst.srcs[0],), macro=inst)]

        if op is Opcode.SETBOUNDS:
            return [MicroOp(kind=UopKind.SETBOUNDS, dest=None, srcs=inst.srcs,
                            meta_dest=inst.srcs[0], imm=inst.imm, macro=inst)]

        if op is Opcode.NOP or op is Opcode.HALT:
            return [MicroOp(kind=UopKind.NOP, macro=inst)]

        raise ProgramError(f"decoder does not handle opcode {op}")

    def decode_block(self, instructions) -> List[MicroOp]:
        """Decode a sequence of macro instructions into one µop list."""
        uops: List[MicroOp] = []
        for inst in instructions:
            uops.extend(self.decode(inst))
        return uops
