"""The µop vocabulary.

Macro instructions are cracked into RISC-style µops (§9.1).  Watchdog's own
work is expressed as *injected* µops (§3, Figure 2):

* ``CHECK`` — identifier validity check before a memory access (§3.2, Fig 4b),
* ``SHADOW_LOAD`` / ``SHADOW_STORE`` — move pointer metadata between the
  sidecar register and the disjoint shadow space (§3.3),
* ``META_SELECT`` — select metadata from whichever of two sources holds a
  valid pointer (§6.2),
* ``BOUNDS_CHECK`` — the separate bounds-check µop of the two-µop bounds
  configuration (§8),
* ``LOCK_PUSH`` / ``LOCK_POP`` — the stack-frame identifier management µops
  injected on call/return (Figure 3c/3d; each expands to four simple µops in
  the paper, which we charge for in the timing model via ``uop_cost``).

The µop is the unit shared between the functional machine (which executes its
semantics) and the timing model (which charges its latency and port usage).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.instructions import AccessSize, Instruction
from repro.isa.registers import ArchReg


class UopKind(enum.Enum):
    """Execution category of a µop (determines functional unit and latency)."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    # --- Watchdog-injected kinds ---------------------------------------
    CHECK = "check"
    SHADOW_LOAD = "shadow_load"
    SHADOW_STORE = "shadow_store"
    META_SELECT = "meta_select"
    BOUNDS_CHECK = "bounds_check"
    LOCK_PUSH = "lock_push"
    LOCK_POP = "lock_pop"
    SETIDENT = "setident"
    GETIDENT = "getident"
    SETBOUNDS = "setbounds"
    NOP = "nop"


# Stable small-int codes for each µop kind, attached to the members (an
# attribute load beats hashing the enum).  The compiled timing pipeline packs
# these into its per-µop flag words.
for _i, _member in enumerate(UopKind):
    _member.code = _i
KIND_COUNT = len(UopKind)
del _i, _member


#: µop kinds injected by Watchdog (as opposed to cracked from the program's
#: own macro instructions).  Used for the Figure 8 µop-overhead breakdown.
WATCHDOG_KINDS = frozenset(
    {
        UopKind.CHECK,
        UopKind.SHADOW_LOAD,
        UopKind.SHADOW_STORE,
        UopKind.META_SELECT,
        UopKind.BOUNDS_CHECK,
        UopKind.LOCK_PUSH,
        UopKind.LOCK_POP,
    }
)

#: µop kinds that access the memory hierarchy.
MEMORY_KINDS = frozenset(
    {
        UopKind.LOAD,
        UopKind.STORE,
        UopKind.CHECK,
        UopKind.SHADOW_LOAD,
        UopKind.SHADOW_STORE,
        UopKind.LOCK_PUSH,
        UopKind.LOCK_POP,
    }
)

_uop_ids = itertools.count()


@dataclass
class MicroOp:
    """A single µop in the dynamic stream.

    Registers are architectural at this point; the rename stage assigns
    physical registers (and metadata physical registers) later.

    ``meta_srcs`` / ``meta_dest`` name the architectural registers whose
    *metadata* the µop reads/writes (the sidecar registers of §3.4) — e.g. a
    ``CHECK`` µop reads the metadata of the address register but none of the
    data registers.
    """

    kind: UopKind
    dest: Optional[ArchReg] = None
    srcs: Tuple[ArchReg, ...] = ()
    meta_dest: Optional[ArchReg] = None
    meta_srcs: Tuple[ArchReg, ...] = ()
    imm: int = 0
    size: AccessSize = AccessSize.WORD64
    #: Relative cost in simple µops; LOCK_PUSH/LOCK_POP expand to 4 (Fig 3).
    uop_cost: int = 1
    #: True if this µop was injected by Watchdog rather than cracked from the
    #: program instruction.
    injected: bool = False
    #: The macro instruction this µop belongs to (for attribution/statistics).
    macro: Optional[Instruction] = None
    #: Sequence number, assigned at creation, unique within a process.
    seq: int = field(default_factory=lambda: next(_uop_ids))
    #: Monotonic id of the *dynamic macro instance* this µop was injected
    #: for, stamped by :class:`~repro.core.uop_injection.UopInjector` — all
    #: µops of one expansion share one stamp.  ``-1`` means "not stamped"
    #: (hand-built µops); the timing model then falls back to object-identity
    #: macro counting.  Unlike ``id(macro)``, stamps are never reused, so two
    #: distinct macro instances can never be silently merged.
    macro_seq: int = -1

    def __post_init__(self) -> None:
        if not isinstance(self.srcs, tuple):
            self.srcs = tuple(self.srcs)
        if not isinstance(self.meta_srcs, tuple):
            self.meta_srcs = tuple(self.meta_srcs)

    @property
    def is_injected(self) -> bool:
        return self.injected or self.kind in WATCHDOG_KINDS

    @property
    def accesses_memory(self) -> bool:
        return self.kind in MEMORY_KINDS

    @property
    def accesses_lock_location(self) -> bool:
        """True if this µop reads/writes a lock location (candidates for the
        lock location cache, §4.2)."""
        return self.kind in (UopKind.CHECK, UopKind.LOCK_PUSH, UopKind.LOCK_POP,
                             UopKind.SETIDENT, UopKind.GETIDENT)

    def __str__(self) -> str:
        parts = [self.kind.value]
        if self.dest is not None:
            parts.append(str(self.dest))
        parts.extend(str(s) for s in self.srcs)
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.is_injected:
            parts.append("[wd]")
        return " ".join(parts)


def alu_uop(dest: Optional[ArchReg], srcs: Tuple[ArchReg, ...], imm: int = 0,
            macro: Optional[Instruction] = None) -> MicroOp:
    """Convenience constructor for a plain ALU µop."""
    return MicroOp(kind=UopKind.ALU, dest=dest, srcs=srcs, imm=imm, macro=macro)
