"""Behavioral reproduction of *Watchdog: Hardware for Safe and Secure Manual
Memory Management and Full Memory Safety* (Nagarakatte, Martin, Zdancewic,
ISCA 2012).

The public API re-exports the pieces a downstream user typically needs:

* :class:`~repro.core.config.WatchdogConfig` and the
  :class:`~repro.core.watchdog.Watchdog` engine (the paper's contribution),
* the program-building layer (:class:`~repro.program.builder.ProgramBuilder`,
  :class:`~repro.program.machine.Machine`) for writing and executing small
  C-like programs under Watchdog,
* the simulation layer (:class:`~repro.sim.simulator.Simulator`,
  :class:`~repro.pipeline.config.MachineConfig`) for timing studies on the
  SPEC-like synthetic workloads,
* the sweep engine (:class:`~repro.sim.engine.SweepEngine`,
  :class:`~repro.sim.spec.ExperimentSpec`,
  :class:`~repro.sim.cache.ResultCache`) for declarative, parallel,
  cached (benchmark × configuration) grids,
* the workload generators (SPEC profiles, Juliet-style suite, attacks),
* the experiment drivers under :mod:`repro.experiments`, one per paper
  table/figure.

Quickstart::

    from repro import ProgramBuilder, Machine, WatchdogConfig

    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 64)      # p = malloc(64)
        main.mov("r2", "r1")       # q = p
        main.free("r1")            # free(p)
        main.load("r3", "r2")      # ... = *q   (dangling!)
    result = Machine(WatchdogConfig.isa_assisted_uaf()).run(builder.build())
    assert result.detected and result.violation_kind == "use-after-free"
"""

from repro.core.config import BoundsCheckMode, PointerIdentificationMode, WatchdogConfig
from repro.core.watchdog import Watchdog
from repro.errors import (
    BoundsError,
    DoubleFreeError,
    InvalidFreeError,
    MemorySafetyViolation,
    ReproError,
    UseAfterFreeError,
)
from repro.pipeline.config import MachineConfig
from repro.program.builder import ProgramBuilder
from repro.program.machine import ExecutionResult, Machine
from repro.sim.cache import ResultCache
from repro.sim.engine import SweepEngine
from repro.sim.results import CellResult, ExperimentResult
from repro.sim.simulator import SimulationOutcome, Simulator
from repro.sim.spec import ExperimentSettings, ExperimentSpec, RunRequest
from repro.workloads.juliet import JulietSuite
from repro.workloads.profiles import SPEC_PROFILES, benchmark_names, profile_by_name
from repro.workloads.synthetic import SyntheticWorkload

__version__ = "1.0.0"

__all__ = [
    "WatchdogConfig",
    "PointerIdentificationMode",
    "BoundsCheckMode",
    "Watchdog",
    "MachineConfig",
    "ProgramBuilder",
    "Machine",
    "ExecutionResult",
    "Simulator",
    "SimulationOutcome",
    "SweepEngine",
    "ResultCache",
    "CellResult",
    "ExperimentResult",
    "ExperimentSettings",
    "ExperimentSpec",
    "RunRequest",
    "JulietSuite",
    "SyntheticWorkload",
    "SPEC_PROFILES",
    "benchmark_names",
    "profile_by_name",
    "ReproError",
    "MemorySafetyViolation",
    "UseAfterFreeError",
    "BoundsError",
    "DoubleFreeError",
    "InvalidFreeError",
    "__version__",
]
