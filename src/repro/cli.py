"""Command-line interface: list and run the paper's experiments.

Examples::

    python -m repro list
    python -m repro run fig7 --workers 4
    python -m repro run fig7 fig9 --quick --no-cache
    python -m repro run --all --sampling quick --report report.json
    python -m repro run --all --workers 8 --cache-dir /tmp/repro-cache

``run`` resolves every requested experiment through the declarative registry
(:data:`repro.experiments.REGISTRY`): the experiments' grids are merged into
one deduplicated super-spec and executed as a single sweep batch, so cells
shared between figures are simulated once; with caching enabled (default:
``.repro-cache/``) repeated invocations skip already-computed cells entirely.
Each experiment's summary metrics are checked against the paper's expected
values — deviations beyond tolerance fail the invocation (``--no-check``
opts out) — and ``--report`` writes the full measured-vs-expected record,
including cell provenance, as JSON.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional

from repro.experiments import REGISTRY, run_experiments
from repro.sim.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sim.engine import SweepEngine
from repro.sim.faults import FaultPlan
from repro.sim.journal import RunJournal
from repro.sim.sampling import SAMPLING_SCHEDULES
from repro.sim.spec import ResiliencePolicy, settings_from_args
from repro.workloads.profiles import (
    benchmark_names,
    long_profile_names,
    one_b_profile_names,
    paper_profile_names,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the Watchdog reproduction's figure/table experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                     help="experiments to run (see `list`), e.g. "
                          "`repro run fig7 fig9`")
    run.add_argument("--figure", "-f", dest="figures", action="append",
                     metavar="NAME", choices=sorted(REGISTRY),
                     help="deprecated alias for the positional EXPERIMENT "
                          "arguments (repeatable)")
    run.add_argument("--all", action="store_true",
                     help="run every registered experiment as one merged sweep")
    run.add_argument("--no-check", action="store_true",
                     help="do not fail the run when measured metrics deviate "
                          "from the paper's expected values beyond tolerance")
    run.add_argument("--report", metavar="FILE", default=None,
                     help="write the full measured-vs-expected record "
                          "(checks, deviations, cell provenance) as JSON")
    run.add_argument("--workers", "-j", type=int, default=1, metavar="N",
                     help="worker processes for the sweep engine (default: 1)")
    run.add_argument("--instructions", "-n", type=int, default=None, metavar="N",
                     help="dynamic macro instructions per benchmark run")
    run.add_argument("--seed", type=int, default=None,
                     help="workload seed (default: 7)")
    run.add_argument("--benchmarks", "-b", metavar="A,B,...",
                     help="comma-separated benchmark subset (default: all 20)")
    run.add_argument("--quick", action="store_true",
                     help="reduced scale: 4 benchmarks, short traces")
    run.add_argument("--sampling", choices=sorted(SAMPLING_SCHEDULES),
                     default="none",
                     help="periodic §9.1 sampling schedule: 'paper' "
                          "(480M/10M/10M, 2%% measured), 'paper-scaled' "
                          "(the paper's 96/2/2 structure at a 10M period, "
                          "fits the 100M *-paper horizons), 'quick' "
                          "(80k/10k/10k, 10%% measured), or 'none' "
                          "(default; measure everything)")
    run.add_argument("--no-timecore", action="store_true",
                     help="disable the native timing core (C kernel) and "
                          "run the pure-Python timing loops")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the persistent result cache")
    run.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
                     help=f"result cache location (default: {DEFAULT_CACHE_DIR})")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="re-executions per crashed/timed-out cell before "
                          "quarantine (default: 2, or REPRO_RETRIES)")
    run.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                     help="per-cell wall-clock budget, enforced on pooled "
                          "rounds with --workers > 1 (default: unlimited, "
                          "or REPRO_DEADLINE)")
    run.add_argument("--resume", action="store_true",
                     help="continue an interrupted run: serve cells the "
                          "previous run's journal completed, re-simulate "
                          "only failed/unreached ones")
    run.add_argument("--journal", metavar="FILE", default=None,
                     help="completed/failed-cell journal location (default: "
                          "<cache-dir>/journal.jsonl)")
    run.add_argument("--faults", metavar="SPEC", default=None,
                     help="deterministic fault-injection plan, e.g. "
                          "'crash:gzip:0,slow:mcf:*:5,corrupt:gzip/baseline,"
                          "selftest:timecore' (also: REPRO_FAULTS)")

    cache = sub.add_parser("cache", help="inspect or prune the result cache")
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
                       help=f"result cache location (default: {DEFAULT_CACHE_DIR})")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached cell (e.g. entries orphaned "
                            "by code changes)")

    bench = sub.add_parser(
        "bench", help="time the fig7 cell matrix and write BENCH_<rev>.json")
    bench.add_argument("--quick", action="store_true",
                       help="reduced scale: 4 benchmarks, short traces "
                            "(what the CI perf-smoke job runs)")
    bench.add_argument("--benchmarks", "-b", metavar="A,B,...",
                       help="comma-separated benchmark subset")
    bench.add_argument("--instructions", "-n", type=int, default=None,
                       metavar="N", help="dynamic macro instructions per run")
    bench.add_argument("--seed", type=int, default=None,
                       help="workload seed (default: 7)")
    bench.add_argument("--sampling", choices=sorted(SAMPLING_SCHEDULES),
                       default="none",
                       help="run the matrix under a §9.1 sampling schedule "
                            "(see `run --sampling`)")
    bench.add_argument("--no-sampled", action="store_true",
                       help="skip the sampled long-profile cell (timed by "
                            "default and gated by --check)")
    bench.add_argument("--no-fast-forward", action="store_true",
                       help="skip the skip-window-only fast-forward cell")
    bench.add_argument("--no-paper", action="store_true",
                       help="skip the 100M-instruction paper-scale sampled "
                            "smoke cell")
    bench.add_argument("--no-suite", action="store_true",
                       help="skip the merged registry suite cell "
                            "(`repro run --all` at quick scale)")
    bench.add_argument("--no-timecore", action="store_true",
                       help="disable the native timing core (C kernel) "
                            "everywhere and skip its gated matrix cell")
    bench.add_argument("--no-mix", action="store_true",
                       help="skip the 4-core multi-core mix cell (timed by "
                            "default and gated by --check)")
    bench.add_argument("--no-one-b", action="store_true",
                       help="skip the billion-instruction streaming smoke "
                            "cell (timed by default; --check gates both its "
                            "throughput floor and its peak-RSS ceiling)")
    bench.add_argument("--no-reference", action="store_true",
                       help="skip timing the reference object pipeline")
    bench.add_argument("--output", "-o", metavar="FILE", default=None,
                       help="output path (default: BENCH_<rev>.json)")
    bench.add_argument("--check", metavar="BASELINE.json", default=None,
                       help="fail if uops/sec regresses beyond the tolerance "
                            "vs this baseline record")
    bench.add_argument("--max-regression", type=float, default=0.30,
                       metavar="FRACTION",
                       help="allowed throughput regression for --check "
                            "(default: 0.30)")
    bench.add_argument("--allow-degraded", action="store_true",
                       help="do not fail the bench when a native kernel "
                            "unexpectedly fell back to pure Python (by "
                            "default any unexpected degradation event fails, "
                            "so a dead kernel can't masquerade as a perf "
                            "regression)")
    return parser


def _cmd_list() -> int:
    from repro.workloads.profiles import MIXES

    print("registered experiments (grid experiments share one merged sweep):")
    for name, definition in REGISTRY.items():
        kind = "grid" if definition.has_grid else "standalone"
        tiers = "/".join(definition.sampling_tiers)
        print(f"  {name:<12} [{kind}, sampling: {tiers}] "
              f"{definition.description}")
    print()
    print("workload mixes (multi-core benchmark tokens: 'mix1', 'mix1:2', "
          "'mix1:1@3'):")
    for mix in MIXES:
        members = " + ".join(mix.members)
        print(f"  {mix.name:<12} {members:<28} {mix.description}")
    return 0


def _cmd_run(args) -> int:
    from repro.errors import ConfigurationError

    # dict.fromkeys: drop repeats (e.g. the same name positionally and via
    # the --figure alias) while preserving first-seen order.
    names: List[str] = list(REGISTRY) if args.all \
        else list(dict.fromkeys(list(args.experiments)
                                + list(args.figures or [])))
    if not names:
        print("nothing to run: pass experiment names (see `list`) or --all",
              file=sys.stderr)
        return 2
    unknown_experiments = [name for name in names if name not in REGISTRY]
    if unknown_experiments:
        print(f"unknown experiment(s): {', '.join(unknown_experiments)}; "
              f"known: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2

    try:
        settings = settings_from_args(args)
    except ConfigurationError as error:
        # E.g. a paper-scale horizon under a schedule that measures nothing.
        print(f"invalid settings: {error}", file=sys.stderr)
        return 2
    from repro.workloads.profiles import parse_mix_benchmark

    known = set(benchmark_names()) | set(long_profile_names()) \
        | set(paper_profile_names()) | set(one_b_profile_names())
    unknown = []
    for name in settings.benchmarks:
        if name in known:
            continue
        try:
            # Mix tokens ("mix1", "mix1:2", "mix1:1@3") are valid benchmark
            # names too; a malformed one gets its specific parse error.
            if parse_mix_benchmark(name) is not None:
                continue
        except ConfigurationError as error:
            print(f"invalid mix benchmark: {error}", file=sys.stderr)
            return 2
        unknown.append(name)
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}; "
              f"known: {', '.join(sorted(known))} (plus mix tokens, "
              f"see `list`)", file=sys.stderr)
        return 2
    if settings.sampling is not None:
        from repro.sim.sampling import SamplingSchedule

        measured = SamplingSchedule(settings.sampling).measured_count(
            settings.instructions)
        if settings.sampling.degenerate or measured == 0:
            print(f"note: --sampling {args.sampling} measures "
                  f"{'everything' if settings.sampling.degenerate else 'nothing'} "
                  f"at {settings.instructions} instructions per run; cells "
                  f"execute unsampled (raise --instructions past "
                  f"{settings.sampling.fast_forward + settings.sampling.warmup} "
                  f"to sample)", file=sys.stderr)
    if args.no_timecore:
        # Via the environment rather than a Simulator argument so sweep
        # worker processes inherit the switch.
        os.environ["REPRO_TIMECORE"] = "0"
    if args.faults is not None:
        # Also via the environment: pooled workers and kernel loaders read
        # the plan from REPRO_FAULTS, and validating here turns a typo into
        # a usage error instead of a mid-sweep surprise.
        try:
            FaultPlan.parse(args.faults)
        except ConfigurationError as error:
            print(f"invalid --faults spec: {error}", file=sys.stderr)
            return 2
        os.environ["REPRO_FAULTS"] = args.faults
    try:
        policy = ResiliencePolicy.from_env()
        overrides = {}
        if args.retries is not None:
            overrides["retries"] = args.retries
        if args.deadline is not None:
            overrides["deadline_seconds"] = args.deadline
        if overrides:
            policy = dataclasses.replace(policy, **overrides)
    except ConfigurationError as error:
        print(f"invalid resilience settings: {error}", file=sys.stderr)
        return 2
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
    journal_path = args.journal or os.path.join(args.cache_dir,
                                                "journal.jsonl")
    journal = RunJournal(journal_path, resume=args.resume)
    if args.resume and journal.stale:
        print("[journal] previous journal is stale (different code or "
              "schema); starting fresh", file=sys.stderr)
    engine = SweepEngine(workers=args.workers, cache=cache, policy=policy,
                         journal=journal)

    try:
        suite = run_experiments(names, settings=settings, engine=engine)
    finally:
        # Join the worker pool before interpreter teardown; relying on the
        # stdlib atexit hook can race fd teardown and spew spurious OSErrors.
        engine.close()

    for report in suite.reports:
        definition = REGISTRY[report.name]
        print(f"=== {report.result.name} ===")
        print(definition.render_result(report.result))
        for check in report.checks:
            print(f"[check] {check.describe()}")
        print()

    stats = suite.engine
    cache_text = (f"cache hits {stats['cache_hits']}, cache dir {cache.root}"
                  if cache is not None else "cache disabled")
    journal_text = f", journal served {stats['journal_cells']} cells" \
        if args.resume else ""
    print(f"[engine] simulated {stats['simulated_cells']} cells "
          f"({stats['merged_unique_cells']} unique of "
          f"{stats['grid_cells_total']} grid cells) in "
          f"{stats['simulation_batches']} batch(es), "
          f"sweep {stats['sweep_seconds']:.1f}s, "
          f"workers {stats['workers']}, {cache_text}{journal_text}")

    for event in suite.degradations:
        print(f"[degraded] {event.describe()}", file=sys.stderr)
    for failure in suite.cell_failures:
        print(f"[failed] {failure.describe()}", file=sys.stderr)

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(suite.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[report] wrote {args.report}")

    if suite.cell_failures:
        # Quarantined cells always fail the invocation — --no-check opts out
        # of paper-value deviations, not of cells that never produced data.
        print(f"[failed] {len(suite.cell_failures)} cell(s) exhausted the "
              f"retry budget; rerun with --resume to retry only those cells",
              file=sys.stderr)
        return 1
    if not suite.ok:
        failed = ", ".join(report.name for report in suite.failures())
        print(f"[check] metrics deviate from the paper beyond tolerance in: "
              f"{failed}", file=sys.stderr)
        if not args.no_check:
            return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.errors import ConfigurationError
    from repro.sim import bench

    kwargs = {}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.seed is not None:
        kwargs["seed"] = args.seed
    try:
        record = _run_bench_record(bench, args, kwargs)
    except ConfigurationError as error:
        print(f"invalid bench settings: {error}", file=sys.stderr)
        return 2
    print(bench.format_summary(record))
    path = bench.write_record(record, output=args.output)
    print(f"[bench] wrote {path}")
    if args.check:
        try:
            ok, message = bench.check_against_baseline(
                record, args.check, max_regression=args.max_regression)
        except (OSError, ValueError, KeyError) as error:
            print(f"[bench] cannot read baseline {args.check}: {error!r}",
                  file=sys.stderr)
            return 2
        print(f"[bench] {message}")
        if not ok:
            return 1
    if record.get("degradations") and not args.allow_degraded:
        # A perf number measured on the pure-Python fallback is not a perf
        # number for the native path: fail rather than let a dead kernel
        # masquerade as (or mask) a regression.
        print("[bench] unexpected degradation(s) during perf cells — the "
              "measurements above do not describe the native path "
              "(--allow-degraded to accept):", file=sys.stderr)
        for event in record["degradations"]:
            print(f"[bench]   {event.get('kind')}: {event.get('subject')} — "
                  f"{event.get('detail')}", file=sys.stderr)
        return 1
    return 0


def _run_bench_record(bench, args, kwargs):
    if args.no_timecore:
        os.environ["REPRO_TIMECORE"] = "0"
    return bench.run_bench(
        benchmarks=tuple(args.benchmarks.split(",")) if args.benchmarks else None,
        include_reference=not args.no_reference,
        quick=args.quick,
        sampling=SAMPLING_SCHEDULES[args.sampling](),
        include_sampled=not args.no_sampled,
        include_fast_forward=not args.no_fast_forward,
        include_paper=not args.no_paper,
        include_suite=not args.no_suite,
        include_timecore=not args.no_timecore,
        include_mix=not args.no_mix,
        include_one_b=not args.no_one_b,
        **kwargs)


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached cells from {cache.root}")
    else:
        print(f"{len(cache)} cached cells in {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
