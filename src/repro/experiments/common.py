"""Shared experiment infrastructure.

All of the figure experiments follow the same pattern: run every benchmark
under a baseline (Watchdog disabled) and under one or more Watchdog
configurations, then compare cycles (Figures 7/9/11), µop counts (Figure 8),
classification fractions (Figure 5) or footprints (Figure 10).

Each figure module *declares* its grid as an
:class:`~repro.sim.spec.ExperimentSpec`; the :class:`OverheadSweep` hands the
grid to a :class:`~repro.sim.engine.SweepEngine`, which shares trace
generation across configurations, optionally fans cells out over a process
pool and/or resolves them from the persistent result cache, and memoizes the
resulting :class:`~repro.sim.results.CellResult` records so a single sweep
can feed several figures.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.config import WatchdogConfig
from repro.pipeline.config import MachineConfig
from repro.sim.cache import ResultCache
from repro.sim.engine import SweepEngine
from repro.sim.results import CellResult
from repro.sim.spec import (
    BASELINE_LABEL,
    DEFAULT_INSTRUCTIONS,
    DEFAULT_SEED,
    ExperimentSettings,
    ExperimentSpec,
    RunRequest,
)
from repro.sim.stats import geometric_mean_overhead, percent_overhead

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_SEED",
    "ExperimentSettings",
    "ExperimentSpec",
    "OverheadSweep",
]


class OverheadSweep:
    """Settings-scoped view over a :class:`SweepEngine`.

    Binds the engine to one :class:`ExperimentSettings` (benchmark list,
    instruction count, seed) and exposes the cell lookups and overhead math
    the figure drivers summarize with.  Outcomes are memoized inside the
    engine, so configurations shared between figures (e.g. the ISA-assisted
    run used by Figures 7–11) are simulated once per sweep — or never, when
    a persistent cache already holds them.
    """

    BASELINE = BASELINE_LABEL

    def __init__(self, settings: Optional[ExperimentSettings] = None,
                 engine: Optional[SweepEngine] = None,
                 machine: Optional[MachineConfig] = None,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self.settings = settings or ExperimentSettings()
        self.engine = engine or SweepEngine(machine=machine, workers=workers,
                                            cache=cache)

    # -- declarative entry points ---------------------------------------------------
    def run_spec(self, spec: ExperimentSpec) -> Dict[Tuple[str, str], CellResult]:
        """Batch-execute a grid (the parallel/cached fast path)."""
        return self.engine.run_spec(spec)

    def run_configs(self, configs: Mapping[str, WatchdogConfig],
                    include_baseline: bool = True) -> None:
        """Pre-run every benchmark under every configuration (plus baseline)."""
        self.run_spec(ExperimentSpec.build("sweep", configs,
                                           settings=self.settings,
                                           include_baseline=include_baseline))

    # -- cell access ---------------------------------------------------------------
    def request(self, benchmark: str, label: str,
                config: WatchdogConfig) -> RunRequest:
        return RunRequest(benchmark=benchmark, label=label, config=config,
                          instructions=self.settings.instructions,
                          seed=self.settings.seed,
                          sampling=self.settings.sampling)

    def outcome(self, benchmark: str, label: str,
                config: WatchdogConfig) -> CellResult:
        """Run (or fetch from memo/cache) one benchmark under one configuration."""
        return self.engine.cell(self.request(benchmark, label, config))

    def baseline(self, benchmark: str) -> CellResult:
        return self.outcome(benchmark, self.BASELINE, WatchdogConfig.disabled())

    # -- derived values ------------------------------------------------------------
    def overhead(self, benchmark: str, label: str, config: WatchdogConfig) -> float:
        """Fractional slowdown of ``config`` over the baseline."""
        baseline = self.baseline(benchmark)
        configured = self.outcome(benchmark, label, config)
        return percent_overhead(baseline.cycles, configured.cycles)

    def overheads(self, label: str, config: WatchdogConfig) -> Dict[str, float]:
        """Per-benchmark fractional slowdowns for one configuration."""
        return {benchmark: self.overhead(benchmark, label, config)
                for benchmark in self.settings.benchmarks}

    def geo_mean_overhead(self, label: str, config: WatchdogConfig) -> float:
        return geometric_mean_overhead(list(self.overheads(label, config).values()))

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        return self.settings.benchmarks
