"""Shared experiment infrastructure: the declarative registry and its runner.

Every module in :mod:`repro.experiments` *declares* itself as an
:class:`ExperimentDefinition` — its CLI name, grid builder, per-benchmark
metric extractor, the paper's expected values with tolerances, and an
optional render hook — and registers it in ``repro.experiments.REGISTRY``.
One generic runner (:func:`run_experiments`) then serves every experiment:

1. the grid-based experiments' specs are fused into one deduplicated
   super-spec (:class:`~repro.sim.spec.MergedGrid`) and resolved by the
   :class:`~repro.sim.engine.SweepEngine` in a single batch, so cells shared
   between figures (the ISA-assisted run feeds Figures 7–11, every slowdown
   figure wants the baseline) are simulated exactly once and the worker pool
   stays saturated across figure boundaries,
2. each experiment's extractor turns its slice of the resolved cells into an
   :class:`~repro.sim.results.ExperimentResult`,
3. every summary metric is checked against the paper's expected value within
   its tolerance, and the whole invocation is summarized as a
   :class:`~repro.sim.results.SuiteReport` — the CLI's JSON artifact and its
   exit code both come from that record.

:class:`OverheadSweep` remains the settings-scoped accessor the extractors
(and the benchmark harness) read cells and overhead math through.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import WatchdogConfig
from repro.pipeline.config import MachineConfig
from repro.sim.cache import ResultCache
from repro.sim.engine import SweepEngine
from repro.sim.results import (
    CellResult,
    ExperimentReport,
    ExperimentResult,
    MetricCheck,
    SuiteReport,
)
from repro.sim.spec import (
    BASELINE_LABEL,
    DEFAULT_INSTRUCTIONS,
    DEFAULT_SEED,
    ExperimentSettings,
    ExperimentSpec,
    MergedGrid,
    RunRequest,
    request_content_key,
)
from repro.sim.stats import geometric_mean_overhead, percent_overhead

__all__ = [
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_SEED",
    "ExperimentContext",
    "ExperimentDefinition",
    "ExperimentSettings",
    "ExperimentSpec",
    "OverheadSweep",
    "kernel_degradation_events",
    "run_definition",
    "run_experiments",
]

#: Sampling tiers a grid experiment supports out of the box: its cells run
#: unsampled, under the §9.1 schedules, and over the long/paper profiles —
#: all through :class:`ExperimentSettings`, no driver code involved.
GRID_SAMPLING_TIERS = ("none", "quick", "paper", "paper-scaled")
#: Standalone experiments (tables, Juliet) have no timing grid; sampling
#: does not apply to them.
NO_SAMPLING_TIERS = ("none",)


class OverheadSweep:
    """Settings-scoped view over a :class:`SweepEngine`.

    Binds the engine to one :class:`ExperimentSettings` (benchmark list,
    instruction count, seed) and exposes the cell lookups and overhead math
    the figure drivers summarize with.  Outcomes are memoized inside the
    engine, so configurations shared between figures (e.g. the ISA-assisted
    run used by Figures 7–11) are simulated once per sweep — or never, when
    a persistent cache already holds them.
    """

    BASELINE = BASELINE_LABEL

    def __init__(self, settings: Optional[ExperimentSettings] = None,
                 engine: Optional[SweepEngine] = None,
                 machine: Optional[MachineConfig] = None,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None):
        self.settings = settings or ExperimentSettings()
        self.engine = engine or SweepEngine(machine=machine, workers=workers,
                                            cache=cache)

    # -- declarative entry points ---------------------------------------------------
    def run_spec(self, spec: ExperimentSpec) -> Dict[Tuple[str, str], CellResult]:
        """Batch-execute a grid (the parallel/cached fast path)."""
        return self.engine.run_spec(spec)

    def run_configs(self, configs: Mapping[str, WatchdogConfig],
                    include_baseline: bool = True) -> None:
        """Pre-run every benchmark under every configuration (plus baseline)."""
        self.run_spec(ExperimentSpec.build("sweep", configs,
                                           settings=self.settings,
                                           include_baseline=include_baseline))

    # -- cell access ---------------------------------------------------------------
    def request(self, benchmark: str, label: str,
                config: WatchdogConfig) -> RunRequest:
        return RunRequest(benchmark=benchmark, label=label, config=config,
                          instructions=self.settings.instructions,
                          seed=self.settings.seed,
                          sampling=self.settings.sampling)

    def outcome(self, benchmark: str, label: str,
                config: WatchdogConfig) -> CellResult:
        """Run (or fetch from memo/cache) one benchmark under one configuration."""
        return self.engine.cell(self.request(benchmark, label, config))

    def baseline(self, benchmark: str) -> CellResult:
        return self.outcome(benchmark, self.BASELINE, WatchdogConfig.disabled())

    # -- derived values ------------------------------------------------------------
    def overhead(self, benchmark: str, label: str, config: WatchdogConfig) -> float:
        """Fractional slowdown of ``config`` over the baseline.

        NaN when either cell is a quarantined-failure placeholder (or the
        baseline has no cycles at all): the extractors stay total over a
        degraded grid — every benchmark keeps its row — while any check
        whose inputs include a failed cell can only read DEVIATION, never a
        silently-fabricated number.
        """
        baseline = self.baseline(benchmark)
        configured = self.outcome(benchmark, label, config)
        if baseline.failed or configured.failed or baseline.cycles <= 0:
            return float("nan")
        return percent_overhead(baseline.cycles, configured.cycles)

    def overheads(self, label: str, config: WatchdogConfig) -> Dict[str, float]:
        """Per-benchmark fractional slowdowns for one configuration."""
        return {benchmark: self.overhead(benchmark, label, config)
                for benchmark in self.settings.benchmarks}

    def geo_mean_overhead(self, label: str, config: WatchdogConfig) -> float:
        return geometric_mean_overhead(list(self.overheads(label, config).values()))

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        return self.settings.benchmarks


@dataclass
class ExperimentContext:
    """Everything an experiment's extractor may read.

    Grid experiments get their spec and its resolved cells (plus the shared
    :class:`OverheadSweep` accessor, whose lookups are engine-memoized — the
    cells were already resolved, so no extractor triggers new simulation);
    standalone experiments get only the settings and run their own machinery.
    """

    settings: ExperimentSettings
    sweep: Optional[OverheadSweep] = None
    spec: Optional[ExperimentSpec] = None
    cells: Dict[Tuple[str, str], CellResult] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentDefinition:
    """One experiment, declaratively: what to run, extract, expect, render.

    ``build_spec`` is ``None`` for standalone experiments (the derived
    tables, the Juliet detection suite); everything else describes a
    (benchmark × configuration) grid the generic runner merges, executes and
    hands back to ``extract``.
    """

    #: CLI name (``repro run fig7``).
    name: str
    #: Result/record title (``fig7-runtime-overhead``).
    title: str
    #: One-line description for ``repro list`` and the README table.
    description: str
    #: Turns the resolved context into the experiment's result record.
    extract: Callable[[ExperimentContext], ExperimentResult]
    #: Builds the experiment's grid from the sweep settings; ``None`` marks
    #: a standalone experiment.
    build_spec: Optional[Callable[[ExperimentSettings], ExperimentSpec]] = None
    #: Paper-expected summary values, keyed by the summary metric name.
    expected: Mapping[str, float] = field(default_factory=dict)
    #: Allowed absolute deviation per metric (same units as the metric;
    #: missing keys default to exact agreement).  Wide enough to absorb the
    #: reproduction's scale dependence, tight enough that a broken pipeline
    #: (zero overhead, runaway injection) trips the check.
    tolerances: Mapping[str, float] = field(default_factory=dict)
    #: Optional custom text rendering; default is the result's table.
    render: Optional[Callable[[ExperimentResult], str]] = None
    #: Sampling tiers this experiment supports (for docs/CLI listing).
    sampling_tiers: Tuple[str, ...] = GRID_SAMPLING_TIERS

    @property
    def has_grid(self) -> bool:
        return self.build_spec is not None

    def evaluate(self, result: ExperimentResult) -> List[MetricCheck]:
        """Compare the result's summary metrics against the paper's values."""
        return [MetricCheck(metric=metric, expected=float(value),
                            tolerance=float(self.tolerances.get(metric, 0.0)),
                            measured=result.summary.get(metric))
                for metric, value in self.expected.items()]

    def render_result(self, result: ExperimentResult) -> str:
        if self.render is not None:
            return self.render(result)
        return result.format_table()


def run_definition(definition: ExperimentDefinition,
                   settings: Optional[ExperimentSettings] = None,
                   sweep: Optional[OverheadSweep] = None,
                   workers: Optional[int] = None,
                   spec: Optional[ExperimentSpec] = None) -> ExperimentResult:
    """Run one experiment standalone (the module-level ``run()`` path).

    ``spec`` overrides the definition's default grid (e.g. Figure 7 without
    the §9.3 ablation); extraction always follows the spec actually run.
    """
    sweep = sweep or OverheadSweep(settings, workers=workers)
    if not definition.has_grid:
        return definition.extract(ExperimentContext(settings=sweep.settings))
    grid = spec if spec is not None else definition.build_spec(sweep.settings)
    cells = sweep.run_spec(grid)
    return definition.extract(ExperimentContext(
        settings=sweep.settings, sweep=sweep, spec=grid, cells=cells))


def run_experiments(names: Sequence[str],
                    settings: Optional[ExperimentSettings] = None,
                    engine: Optional[SweepEngine] = None,
                    workers: Optional[int] = None,
                    cache: Optional[ResultCache] = None) -> SuiteReport:
    """The generic runner: execute any set of registered experiments.

    All requested grids are merged into one deduplicated super-spec and
    resolved in a single engine batch before any experiment extracts its
    metrics; standalone experiments run afterwards.  Returns the full
    :class:`~repro.sim.results.SuiteReport` — per-experiment results,
    paper-vs-measured checks, and engine/cell provenance.
    """
    from repro.experiments import get_definition

    settings = settings or ExperimentSettings()
    engine = engine or SweepEngine(workers=workers, cache=cache)
    definitions = [get_definition(name) for name in names]
    sweep = OverheadSweep(settings, engine=engine)

    specs: Dict[str, ExperimentSpec] = {
        definition.name: definition.build_spec(settings)
        for definition in definitions if definition.has_grid}
    merged = MergedGrid.merge(list(specs.values()))
    started = time.perf_counter()
    grids = engine.run_specs(merged) if specs else {}
    sweep_elapsed = time.perf_counter() - started

    reports: List[ExperimentReport] = []
    for definition in definitions:
        t0 = time.perf_counter()
        if definition.has_grid:
            spec = specs[definition.name]
            context = ExperimentContext(settings=settings, sweep=sweep,
                                        spec=spec, cells=grids[spec.name])
            provenance = {
                "grid_cells": len(spec),
                "unique_cells": len({request_content_key(r)
                                     for r in spec.requests()}),
            }
        else:
            context = ExperimentContext(settings=settings)
            provenance = {"grid_cells": 0, "unique_cells": 0}
        result = definition.extract(context)
        reports.append(ExperimentReport(
            name=definition.name, result=result,
            checks=definition.evaluate(result),
            elapsed_seconds=time.perf_counter() - t0,
            provenance=provenance))

    engine_stats = {
        "experiments": len(definitions),
        "grid_cells_total": merged.total_grid_cells(),
        "merged_unique_cells": len(merged),
        "simulated_cells": engine.simulated_cells,
        "simulation_batches": engine.simulation_batches,
        "cache_hits": engine.cache.hits if engine.cache is not None else 0,
        "journal_cells": engine.journal_cells,
        "pool_rebuilds": engine.pool_rebuilds,
        "cell_failures": len(engine.cell_failures),
        "degradation_events": len(engine.degradations),
        "workers": engine.workers,
        "sweep_seconds": round(sweep_elapsed, 4),
    }
    return SuiteReport(reports=reports,
                       settings=describe_settings(settings),
                       engine=engine_stats,
                       degradations=kernel_degradation_events()
                       + list(engine.degradations),
                       cell_failures=list(engine.cell_failures))


def kernel_degradation_events() -> List["DegradationEvent"]:
    """Native kernels that should be running in this process but are not.

    Probes both kernel loaders (their decisions are memoized, so this is
    free after the first call) and maps each *unexpected* unavailability —
    anything other than a deliberate kill switch — to a
    ``kernel-unavailable`` :class:`~repro.sim.results.DegradationEvent`.
    Worker processes make their own load decisions, but they run the same
    code against the same environment and artifact cache, so the parent's
    probe is representative of the fleet.
    """
    from repro.native import _timecore, build
    from repro.sim.results import DegradationEvent
    from repro.workloads import _ffcore

    _timecore.load()
    _ffcore.load()
    return [DegradationEvent(
                kind="kernel-unavailable", subject=name,
                detail=f"{status.reason}; running the pure-Python fallback")
            for name, status in sorted(build.unexpected_failures().items())]


def describe_settings(settings: ExperimentSettings) -> Dict[str, object]:
    """JSON-friendly record of the settings a suite ran under."""
    import dataclasses as _dataclasses

    return {
        "benchmarks": list(settings.benchmarks),
        "instructions": settings.instructions,
        "seed": settings.seed,
        "sampling": None if settings.sampling is None
        else _dataclasses.asdict(settings.sampling),
    }
