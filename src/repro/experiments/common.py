"""Shared experiment infrastructure.

All of the figure experiments follow the same pattern: run every benchmark
under a baseline (Watchdog disabled) and under one or more Watchdog
configurations, then compare cycles (Figures 7/9/11), µop counts (Figure 8),
classification fractions (Figure 5) or footprints (Figure 10).  The
:class:`OverheadSweep` performs those runs once and caches the outcomes so a
single sweep can feed several figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import WatchdogConfig
from repro.sim.simulator import SimulationOutcome, Simulator
from repro.sim.stats import geometric_mean_overhead, percent_overhead
from repro.workloads.profiles import benchmark_names

#: Default dynamic macro-instruction count per benchmark run.  Large enough
#: for cache/branch behaviour to settle, small enough to keep the full
#: 20-benchmark sweeps fast; the benchmark harness can raise it.
DEFAULT_INSTRUCTIONS = 8_000
#: Default random seed for the synthetic workloads (reproducibility).
DEFAULT_SEED = 7


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all figure experiments."""

    benchmarks: Tuple[str, ...] = tuple(benchmark_names())
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = DEFAULT_SEED

    @classmethod
    def quick(cls, benchmarks: Optional[Sequence[str]] = None,
              instructions: int = 3_000) -> "ExperimentSettings":
        """A reduced setting for unit tests (few benchmarks, short traces)."""
        chosen = tuple(benchmarks) if benchmarks else ("gzip", "mcf", "lbm", "gcc")
        return cls(benchmarks=chosen, instructions=instructions)


class OverheadSweep:
    """Runs (benchmark × configuration) simulations and caches the outcomes."""

    BASELINE = "baseline"

    def __init__(self, settings: Optional[ExperimentSettings] = None,
                 simulator: Optional[Simulator] = None):
        self.settings = settings or ExperimentSettings()
        self.simulator = simulator or Simulator()
        self._outcomes: Dict[Tuple[str, str], SimulationOutcome] = {}

    # -- running ---------------------------------------------------------------------
    def outcome(self, benchmark: str, label: str,
                config: WatchdogConfig) -> SimulationOutcome:
        """Run (or fetch from cache) one benchmark under one configuration."""
        key = (benchmark, label)
        if key not in self._outcomes:
            self._outcomes[key] = self.simulator.run_benchmark(
                benchmark, config,
                instructions=self.settings.instructions,
                seed=self.settings.seed)
        return self._outcomes[key]

    def baseline(self, benchmark: str) -> SimulationOutcome:
        return self.outcome(benchmark, self.BASELINE, WatchdogConfig.disabled())

    def run_configs(self, configs: Dict[str, WatchdogConfig]) -> None:
        """Pre-run every benchmark under every configuration (plus baseline)."""
        for benchmark in self.settings.benchmarks:
            self.baseline(benchmark)
            for label, config in configs.items():
                self.outcome(benchmark, label, config)

    # -- derived values ------------------------------------------------------------------
    def overhead(self, benchmark: str, label: str, config: WatchdogConfig) -> float:
        """Fractional slowdown of ``config`` over the baseline."""
        baseline = self.baseline(benchmark)
        configured = self.outcome(benchmark, label, config)
        return percent_overhead(baseline.cycles, configured.cycles)

    def overheads(self, label: str, config: WatchdogConfig) -> Dict[str, float]:
        """Per-benchmark fractional slowdowns for one configuration."""
        return {benchmark: self.overhead(benchmark, label, config)
                for benchmark in self.settings.benchmarks}

    def geo_mean_overhead(self, label: str, config: WatchdogConfig) -> float:
        return geometric_mean_overhead(list(self.overheads(label, config).values()))

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        return self.settings.benchmarks
