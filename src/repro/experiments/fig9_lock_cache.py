"""Figure 9: effect of the lock location cache.

With the dedicated 4KB lock location cache, ISA-assisted Watchdog's overhead
is 15% (geometric mean).  Without it, check µops compete with program loads
for the two data-cache ports and the overhead rises to 24%.  The paper also
notes the lock location cache's miss rate stays below 1 miss per 1000
instructions for seventeen of the twenty benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import ExperimentSettings, ExperimentSpec, OverheadSweep
from repro.sim.results import ExperimentResult
from repro.sim.stats import geometric_mean_overhead

EXPECTED = {
    "with_lock_cache_geomean_percent": 15.0,
    "without_lock_cache_geomean_percent": 24.0,
}

NAME = "fig9-lock-location-cache"
WITH_CACHE = "with-lock-cache"
WITHOUT_CACHE = "without-lock-cache"


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The Figure 9 grid: ISA-assisted with and without the lock cache."""
    return ExperimentSpec.build(NAME, {
        WITH_CACHE: WatchdogConfig.isa_assisted_uaf(),
        WITHOUT_CACHE: WatchdogConfig.no_lock_cache(),
    }, settings=settings)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Measure overhead with and without the lock location cache."""
    sweep = sweep or OverheadSweep(settings, workers=workers)
    grid = spec(sweep.settings)
    cells = sweep.run_spec(grid)
    result = ExperimentResult(name=grid.name)

    for label, config in grid.configs:
        overheads = sweep.overheads(label, config)
        for benchmark, overhead in overheads.items():
            result.add_value(label, benchmark, 100.0 * overhead)
        result.add_summary(f"{label}_geomean_percent",
                           100.0 * geometric_mean_overhead(list(overheads.values())))

    # Lock cache miss rate (misses per kilo-instruction) per benchmark.
    low_mpki_benchmarks = 0
    for benchmark in sweep.benchmarks:
        outcome = cells[benchmark, WITH_CACHE]
        mpki = (1000.0 * outcome.lock_cache_misses
                / max(outcome.total_uops, 1))
        result.add_value("lock_cache_mpki", benchmark, mpki)
        if mpki < 1.0:
            low_mpki_benchmarks += 1
    result.add_summary("benchmarks_below_1_mpki", float(low_mpki_benchmarks))

    result.notes.append("paper geo-means: with cache 15%, without cache 24%; "
                        "17/20 benchmarks below 1 lock-cache miss per 1000 instructions")
    return result
