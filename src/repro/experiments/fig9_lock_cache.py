"""Figure 9: effect of the lock location cache.

With the dedicated 4KB lock location cache, ISA-assisted Watchdog's overhead
is 15% (geometric mean).  Without it, check µops compete with program loads
for the two data-cache ports and the overhead rises to 24%.  The paper also
notes the lock location cache's miss rate stays below 1 miss per 1000
instructions for seventeen of the twenty benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import ExperimentResult
from repro.sim.stats import geometric_mean_overhead

EXPECTED = {
    "with_lock_cache_geomean_percent": 15.0,
    "without_lock_cache_geomean_percent": 24.0,
}

NAME = "fig9-lock-location-cache"
WITH_CACHE = "with-lock-cache"
WITHOUT_CACHE = "without-lock-cache"


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The Figure 9 grid: ISA-assisted with and without the lock cache."""
    return ExperimentSpec.build(NAME, {
        WITH_CACHE: WatchdogConfig.isa_assisted_uaf(),
        WITHOUT_CACHE: WatchdogConfig.no_lock_cache(),
    }, settings=settings)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Overhead with and without the lock location cache, plus miss rates."""
    result = ExperimentResult(name=context.spec.name)
    for label, config in context.spec.configs:
        overheads = context.sweep.overheads(label, config)
        for benchmark, overhead in overheads.items():
            result.add_value(label, benchmark, 100.0 * overhead)
        result.add_summary(f"{label}_geomean_percent",
                           100.0 * geometric_mean_overhead(list(overheads.values())))

    # Lock cache miss rate (misses per kilo-instruction) per benchmark.
    low_mpki_benchmarks = 0
    for benchmark in context.settings.benchmarks:
        outcome = context.cells[benchmark, WITH_CACHE]
        mpki = (1000.0 * outcome.lock_cache_misses
                / max(outcome.total_uops, 1))
        result.add_value("lock_cache_mpki", benchmark, mpki)
        if mpki < 1.0:
            low_mpki_benchmarks += 1
    result.add_summary("benchmarks_below_1_mpki", float(low_mpki_benchmarks))

    result.notes.append("paper geo-means: with cache 15%, without cache 24%; "
                        "17/20 benchmarks below 1 lock-cache miss per 1000 instructions")
    return result


DEFINITION = ExperimentDefinition(
    name="fig9",
    title=NAME,
    description="Figure 9 — effect of the lock location cache",
    build_spec=spec,
    extract=extract,
    # benchmarks_below_1_mpki is deliberately unchecked: it scales with the
    # benchmark count, so a subset sweep would always "fail" the paper's
    # 17-of-20 figure.
    expected={
        f"{WITH_CACHE}_geomean_percent":
            EXPECTED["with_lock_cache_geomean_percent"],
        f"{WITHOUT_CACHE}_geomean_percent":
            EXPECTED["without_lock_cache_geomean_percent"],
    },
    tolerances={
        f"{WITH_CACHE}_geomean_percent": 8.0,
        f"{WITHOUT_CACHE}_geomean_percent": 12.0,
    },
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Measure overhead with and without the lock location cache."""
    return run_definition(DEFINITION, settings=settings, sweep=sweep,
                          workers=workers)
