"""Additional ablations of Watchdog's design choices.

Two ablations quantify design decisions DESIGN.md calls out:

* **idealized shadow accesses** (§9.3): metadata accesses occupy cache ports
  but never miss and never displace program data.  The paper reports the
  ISA-assisted overhead drops from 15% to 11%, showing cache pressure is a
  real but not dominant cost.
* **rename-time copy elimination** (§6.2): disabling the map-table remapping
  forces an explicit metadata-copy µop for every single-source pointer
  operation (moves, add-immediate), showing how much front-end bandwidth the
  renaming optimization saves.  (The paper motivates the optimization
  qualitatively; this ablation provides the quantitative counterpart.)
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import ExperimentResult
from repro.sim.stats import geometric_mean_overhead

EXPECTED = {
    "isa_assisted_geomean_percent": 15.0,
    "ideal_shadow_geomean_percent": 11.0,
}

NAME = "ablations"
BASELINE_WD = "isa-assisted"
IDEAL_SHADOW = "ideal-shadow"
NO_COPY_ELIMINATION = "no-copy-elimination"


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The ablation grid: ideal shadow and disabled copy elimination."""
    return ExperimentSpec.build(NAME, {
        BASELINE_WD: WatchdogConfig.isa_assisted_uaf(),
        IDEAL_SHADOW: WatchdogConfig.idealized_shadow(),
        NO_COPY_ELIMINATION:
            WatchdogConfig.isa_assisted_uaf().with_(copy_elimination=False),
    }, settings=settings)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Idealized-shadow and copy-elimination ablation overheads."""
    result = ExperimentResult(name=context.spec.name)
    for label, config in context.spec.configs:
        overheads = context.sweep.overheads(label, config)
        for benchmark, overhead in overheads.items():
            result.add_value(label, benchmark, 100.0 * overhead)
        result.add_summary(f"{label}_geomean_percent",
                           100.0 * geometric_mean_overhead(list(overheads.values())))
    result.notes.append("paper: idealized shadow lowers ISA-assisted overhead "
                        "from 15% to 11% (§9.3); copy elimination is this "
                        "reproduction's added ablation")
    return result


DEFINITION = ExperimentDefinition(
    name="ablations",
    title=NAME,
    description="Extra ablations — idealized shadow (§9.3) and rename-time "
                "copy elimination (§6.2)",
    build_spec=spec,
    extract=extract,
    # no-copy-elimination has no paper counterpart (the paper motivates the
    # optimization qualitatively), so only the two §9.3 metrics are checked.
    expected={
        f"{BASELINE_WD}_geomean_percent":
            EXPECTED["isa_assisted_geomean_percent"],
        f"{IDEAL_SHADOW}_geomean_percent":
            EXPECTED["ideal_shadow_geomean_percent"],
    },
    tolerances={
        f"{BASELINE_WD}_geomean_percent": 8.0,
        f"{IDEAL_SHADOW}_geomean_percent": 11.0,
    },
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Run the idealized-shadow and copy-elimination ablations."""
    return run_definition(DEFINITION, settings=settings, sweep=sweep,
                          workers=workers)
