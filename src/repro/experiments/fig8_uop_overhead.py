"""Figure 8: µop overhead and its breakdown.

With ISA-assisted pointer identification, Watchdog executes 44% more µops
than the baseline on average.  The breakdown (as a fraction of baseline
µops): checks ≈29%, pointer metadata loads ≈4%, pointer metadata stores ≈2%,
and the remaining µops (identifier propagation selects, stack-frame
identifier management and allocator instrumentation) ≈9%.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import ExperimentResult
from repro.sim.stats import arithmetic_mean

EXPECTED = {
    "total_avg_percent": 44.0,
    "checks_avg_percent": 29.0,
    "pointer_loads_avg_percent": 4.0,
    "pointer_stores_avg_percent": 2.0,
    "other_avg_percent": 9.0,
}

NAME = "fig8-uop-overhead"
ISA_ASSISTED = "isa-assisted"
SEGMENTS = ("checks", "pointer_loads", "pointer_stores", "other")


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The Figure 8 grid: the ISA-assisted configuration, no baseline needed."""
    return ExperimentSpec.build(NAME, {
        ISA_ASSISTED: WatchdogConfig.isa_assisted_uaf(),
    }, settings=settings, include_baseline=False)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Per-benchmark µop overhead breakdown (ISA-assisted)."""
    result = ExperimentResult(name=context.spec.name)
    per_segment_totals: Dict[str, list] = {segment: [] for segment in SEGMENTS}
    totals = []
    for benchmark in context.settings.benchmarks:
        outcome = context.cells[benchmark, ISA_ASSISTED]
        breakdown = outcome.uop_breakdown()
        total = outcome.uop_overhead_fraction()
        totals.append(total)
        result.add_value("total", benchmark, 100.0 * total)
        for segment in SEGMENTS:
            value = breakdown[segment]
            per_segment_totals[segment].append(value)
            result.add_value(segment, benchmark, 100.0 * value)

    result.add_summary("total_avg_percent", 100.0 * arithmetic_mean(totals))
    for segment in SEGMENTS:
        result.add_summary(f"{segment}_avg_percent",
                           100.0 * arithmetic_mean(per_segment_totals[segment]))
    result.notes.append(
        "paper averages: total 44%, checks 29%, pointer loads 4%, "
        "pointer stores 2%, other 9%")
    return result


DEFINITION = ExperimentDefinition(
    name="fig8",
    title=NAME,
    description="Figure 8 — µop overhead and its breakdown (ISA-assisted)",
    build_spec=spec,
    extract=extract,
    expected=EXPECTED,
    tolerances={
        "total_avg_percent": 15.0,
        "checks_avg_percent": 10.0,
        "pointer_loads_avg_percent": 4.0,
        "pointer_stores_avg_percent": 2.5,
        "other_avg_percent": 6.0,
    },
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Collect the per-benchmark µop overhead breakdown (ISA-assisted)."""
    return run_definition(DEFINITION, settings=settings, sweep=sweep,
                          workers=workers)
