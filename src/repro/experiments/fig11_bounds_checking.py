"""Figure 11: integrating bounds checking (full memory safety).

Extending Watchdog with pointer-based bounds checking (§8) widens the
per-pointer metadata to 256 bits and either fuses the bound comparison into
the existing check µop or injects a second bounds-check µop per memory
access.  The paper reports: use-after-free only 15%, +bounds as a single
fused µop 18%, +bounds as a separate µop 24% (geometric means, ISA-assisted
identification).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import ExperimentResult
from repro.sim.stats import geometric_mean_overhead

EXPECTED = {
    "watchdog_geomean_percent": 15.0,
    "bounds_fused_geomean_percent": 18.0,
    "bounds_two_uop_geomean_percent": 24.0,
}

NAME = "fig11-bounds-checking"
WATCHDOG = "watchdog"
BOUNDS_FUSED = "bounds-1uop"
BOUNDS_TWO_UOPS = "bounds-2uop"


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The Figure 11 grid: UAF-only plus both bounds-checking variants."""
    return ExperimentSpec.build(NAME, {
        WATCHDOG: WatchdogConfig.isa_assisted_uaf(),
        BOUNDS_FUSED: WatchdogConfig.full_safety_fused(),
        BOUNDS_TWO_UOPS: WatchdogConfig.full_safety_two_uops(),
    }, settings=settings)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Overhead of the three checking configurations."""
    result = ExperimentResult(name=context.spec.name)
    summary_keys = {
        WATCHDOG: "watchdog_geomean_percent",
        BOUNDS_FUSED: "bounds_fused_geomean_percent",
        BOUNDS_TWO_UOPS: "bounds_two_uop_geomean_percent",
    }
    for label, config in context.spec.configs:
        overheads = context.sweep.overheads(label, config)
        for benchmark, overhead in overheads.items():
            result.add_value(label, benchmark, 100.0 * overhead)
        result.add_summary(summary_keys[label],
                           100.0 * geometric_mean_overhead(list(overheads.values())))

    result.notes.append("paper geo-means: Watchdog 15%, +bounds (1 µop) 18%, "
                        "+bounds (2 µops) 24%")
    return result


DEFINITION = ExperimentDefinition(
    name="fig11",
    title=NAME,
    description="Figure 11 — integrating bounds checking (full memory safety)",
    build_spec=spec,
    extract=extract,
    expected=EXPECTED,
    tolerances={
        "watchdog_geomean_percent": 8.0,
        "bounds_fused_geomean_percent": 8.0,
        "bounds_two_uop_geomean_percent": 10.0,
    },
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Measure overhead of the three checking configurations."""
    return run_definition(DEFINITION, settings=settings, sweep=sweep,
                          workers=workers)
