"""Figure 7: runtime overhead of use-after-free checking.

The paper reports 25% geometric-mean slowdown with conservative pointer
identification and 15% with ISA-assisted identification (lock location cache
enabled in both).  §9.3 additionally reports that idealizing the shadow
accesses (no misses, no cache pollution) lowers the ISA-assisted overhead
from 15% to 11%, isolating the cache-pressure component.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import ExperimentResult
from repro.sim.stats import geometric_mean_overhead

EXPECTED = {
    "conservative_geomean_percent": 25.0,
    "isa_assisted_geomean_percent": 15.0,
    "ideal_shadow_geomean_percent": 11.0,
}

NAME = "fig7-runtime-overhead"
CONSERVATIVE = "conservative"
ISA_ASSISTED = "isa-assisted"
IDEAL_SHADOW = "ideal-shadow"


def spec(settings: Optional[ExperimentSettings] = None,
         include_ideal_shadow: bool = True) -> ExperimentSpec:
    """The Figure 7 grid: both identification policies (+ §9.3 ablation)."""
    configs = {
        CONSERVATIVE: WatchdogConfig.conservative_uaf(),
        ISA_ASSISTED: WatchdogConfig.isa_assisted_uaf(),
    }
    if include_ideal_shadow:
        configs[IDEAL_SHADOW] = WatchdogConfig.idealized_shadow()
    return ExperimentSpec.build(NAME, configs, settings=settings)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Per-benchmark slowdown and geo-mean for each identification policy."""
    result = ExperimentResult(name=context.spec.name)
    for label, config in context.spec.configs:
        overheads = context.sweep.overheads(label, config)
        for benchmark, overhead in overheads.items():
            result.add_value(label, benchmark, 100.0 * overhead)
        result.add_summary(f"{label}_geomean_percent",
                           100.0 * geometric_mean_overhead(list(overheads.values())))
    result.notes.append(
        "paper geo-means: conservative 25%, ISA-assisted 15%, idealized shadow 11%")
    return result


DEFINITION = ExperimentDefinition(
    name="fig7",
    title=NAME,
    description="Figure 7 — runtime overhead of use-after-free checking",
    build_spec=spec,
    extract=extract,
    expected={
        f"{CONSERVATIVE}_geomean_percent":
            EXPECTED["conservative_geomean_percent"],
        f"{ISA_ASSISTED}_geomean_percent":
            EXPECTED["isa_assisted_geomean_percent"],
        f"{IDEAL_SHADOW}_geomean_percent":
            EXPECTED["ideal_shadow_geomean_percent"],
    },
    tolerances={
        f"{CONSERVATIVE}_geomean_percent": 15.0,
        f"{ISA_ASSISTED}_geomean_percent": 8.0,
        # At reduced scale the idealized shadow removes nearly all of the
        # cache-pressure component, so the measured value sits well below
        # the paper's 11%.  The symmetric ±11 band therefore accepts the
        # whole 0–22% range: it only catches runaway ideal-shadow overhead,
        # not a silently disabled idealization (that regression is caught by
        # the registry golden test's exact pins instead).
        f"{IDEAL_SHADOW}_geomean_percent": 11.0,
    },
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        include_ideal_shadow: bool = True,
        workers: Optional[int] = None) -> ExperimentResult:
    """Measure per-benchmark slowdown for both identification policies."""
    sweep = sweep or OverheadSweep(settings, workers=workers)
    return run_definition(
        DEFINITION, sweep=sweep,
        spec=spec(sweep.settings, include_ideal_shadow=include_ideal_shadow))


def main(argv=None) -> int:
    """Stand-alone Figure 7 driver with §9.1 sampling.

    ``python -m repro.experiments.fig7_runtime_overhead --sampling quick``
    runs the figure directly — including over the long-horizon and
    paper-scale profiles that only sampled simulation makes tractable —
    without going through ``repro run``/``repro bench``.
    """
    import argparse
    import sys

    from repro.errors import ConfigurationError
    from repro.sim.sampling import SAMPLING_SCHEDULES
    from repro.sim.spec import settings_from_args

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig7_runtime_overhead",
        description="Figure 7: runtime overhead of use-after-free checking.")
    parser.add_argument("--benchmarks", "-b", metavar="A,B,...",
                        help="comma-separated benchmark subset "
                             "(default: the twenty §9.1 profiles)")
    parser.add_argument("--instructions", "-n", type=int, default=None,
                        metavar="N",
                        help="dynamic macro instructions per benchmark run")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload seed (default: 7)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scale: 4 benchmarks, short traces")
    parser.add_argument("--sampling", choices=sorted(SAMPLING_SCHEDULES),
                        default="none",
                        help="periodic §9.1 sampling schedule "
                             "(see `repro run --sampling`)")
    parser.add_argument("--workers", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the sweep engine")
    parser.add_argument("--no-ideal-shadow", action="store_true",
                        help="skip the §9.3 idealized-shadow ablation")
    args = parser.parse_args(argv)

    try:
        settings = settings_from_args(args)
    except ConfigurationError as error:
        print(f"invalid settings: {error}", file=sys.stderr)
        return 2

    sweep = OverheadSweep(settings, workers=args.workers)
    try:
        result = run(sweep=sweep,
                     include_ideal_shadow=not args.no_ideal_shadow)
    finally:
        # Join the pool before interpreter teardown (same rationale as the
        # main CLI): the stdlib atexit hook can race fd teardown.
        sweep.engine.close()
    print(f"=== {result.name} ===")
    print(result.format_table())
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
