"""Figure 7: runtime overhead of use-after-free checking.

The paper reports 25% geometric-mean slowdown with conservative pointer
identification and 15% with ISA-assisted identification (lock location cache
enabled in both).  §9.3 additionally reports that idealizing the shadow
accesses (no misses, no cache pollution) lowers the ISA-assisted overhead
from 15% to 11%, isolating the cache-pressure component.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import ExperimentSettings, ExperimentSpec, OverheadSweep
from repro.sim.results import ExperimentResult
from repro.sim.stats import geometric_mean_overhead

EXPECTED = {
    "conservative_geomean_percent": 25.0,
    "isa_assisted_geomean_percent": 15.0,
    "ideal_shadow_geomean_percent": 11.0,
}

NAME = "fig7-runtime-overhead"
CONSERVATIVE = "conservative"
ISA_ASSISTED = "isa-assisted"
IDEAL_SHADOW = "ideal-shadow"


def spec(settings: Optional[ExperimentSettings] = None,
         include_ideal_shadow: bool = True) -> ExperimentSpec:
    """The Figure 7 grid: both identification policies (+ §9.3 ablation)."""
    configs = {
        CONSERVATIVE: WatchdogConfig.conservative_uaf(),
        ISA_ASSISTED: WatchdogConfig.isa_assisted_uaf(),
    }
    if include_ideal_shadow:
        configs[IDEAL_SHADOW] = WatchdogConfig.idealized_shadow()
    return ExperimentSpec.build(NAME, configs, settings=settings)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        include_ideal_shadow: bool = True,
        workers: Optional[int] = None) -> ExperimentResult:
    """Measure per-benchmark slowdown for both identification policies."""
    sweep = sweep or OverheadSweep(settings, workers=workers)
    grid = spec(sweep.settings, include_ideal_shadow=include_ideal_shadow)
    sweep.run_spec(grid)

    result = ExperimentResult(name=grid.name)
    for label, config in grid.configs:
        overheads = sweep.overheads(label, config)
        for benchmark, overhead in overheads.items():
            result.add_value(label, benchmark, 100.0 * overhead)
        result.add_summary(f"{label}_geomean_percent",
                           100.0 * geometric_mean_overhead(list(overheads.values())))

    result.notes.append(
        "paper geo-means: conservative 25%, ISA-assisted 15%, idealized shadow 11%")
    return result
