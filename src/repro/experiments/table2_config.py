"""Table 2: simulated processor configuration.

This "experiment" simply renders the machine configuration the timing model
uses and checks the headline parameters against the paper's table.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentDefinition,
    NO_SAMPLING_TIERS,
)
from repro.pipeline.config import MachineConfig
from repro.sim.results import ExperimentResult

EXPECTED = {
    "clock_ghz": 3.2,
    "issue_width": 6,
    "rob_entries": 168,
    "iq_entries": 54,
    "lq_entries": 64,
    "sq_entries": 36,
    "l1d_kb": 32,
    "l2_kb": 256,
    "l3_mb": 16,
    "lock_cache_kb": 4,
}


def run(machine: MachineConfig = None) -> ExperimentResult:
    """Check the default machine configuration against Table 2."""
    machine = machine or MachineConfig()
    result = ExperimentResult(name="table2-processor-configuration")
    measured = {
        "clock_ghz": machine.clock_ghz,
        "issue_width": float(machine.issue_width),
        "rob_entries": float(machine.rob_entries),
        "iq_entries": float(machine.iq_entries),
        "lq_entries": float(machine.lq_entries),
        "sq_entries": float(machine.sq_entries),
        "l1d_kb": machine.hierarchy.l1d.size_bytes / 1024,
        "l2_kb": machine.hierarchy.l2.size_bytes / 1024,
        "l3_mb": machine.hierarchy.l3.size_bytes / (1024 * 1024),
        "lock_cache_kb": machine.hierarchy.lock_cache.size_bytes / 1024,
    }
    mismatches = 0
    for key, value in measured.items():
        result.add_value("measured", key, float(value))
        result.add_value("paper", key, float(EXPECTED[key]))
        if abs(float(value) - float(EXPECTED[key])) > 1e-9:
            mismatches += 1
    result.add_summary("mismatches_vs_paper", float(mismatches))
    result.notes.append(machine.describe())
    return result


def format_table(machine: MachineConfig = None) -> str:
    """Render the Table 2-style configuration listing."""
    return (machine or MachineConfig()).describe()


DEFINITION = ExperimentDefinition(
    name="table2",
    title="table2-processor-configuration",
    description="Table 2 — simulated processor configuration",
    extract=lambda context: run(),
    # Every headline machine parameter must match the paper's table.
    expected={"mismatches_vs_paper": 0.0},
    render=lambda result: format_table(),
    sampling_tiers=NO_SAMPLING_TIERS,
)
