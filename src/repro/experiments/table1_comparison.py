"""Table 1: comparison of location-based and identifier-based approaches.

The qualitative columns ("Casts", "Compre.") are derived by replaying witness
scenarios through executable models of each approach family (see
:mod:`repro.baselines.comparison`); the instrumentation and representative
runtime-overhead columns are the published characteristics the paper
tabulates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.comparison import ApproachSummary, ComparisonHarness
from repro.experiments.common import (
    ExperimentDefinition,
    NO_SAMPLING_TIERS,
)
from repro.sim.results import ExperimentResult

#: The paper's Table 1, encoded for paper-vs-measured comparison:
#: name -> (casts safe, comprehensive).
EXPECTED: Dict[str, Dict[str, bool]] = {
    "MC":       {"casts": True,  "comprehensive": False},
    "JK":       {"casts": True,  "comprehensive": False},
    "LBA":      {"casts": True,  "comprehensive": False},
    "SProc":    {"casts": True,  "comprehensive": False},
    "MTrac":    {"casts": True,  "comprehensive": False},
    "SafeC":    {"casts": False, "comprehensive": True},
    "P&F":      {"casts": False, "comprehensive": True},
    "MSCC":     {"casts": False, "comprehensive": True},
    "Chuang":   {"casts": False, "comprehensive": True},
    "CETS":     {"casts": True,  "comprehensive": True},
    "Watchdog": {"casts": True,  "comprehensive": True},
}


def summaries() -> List[ApproachSummary]:
    """The derived Table 1 rows."""
    return ComparisonHarness().summaries()


def run() -> ExperimentResult:
    """Derive the Table 1 columns and compare them to the paper's table."""
    result = ExperimentResult(name="table1-approach-comparison")
    mismatches = 0
    for summary in summaries():
        result.add_value("casts_safe", summary.name, float(summary.safe_with_casts))
        result.add_value("comprehensive", summary.name, float(summary.comprehensive))
        expected = EXPECTED.get(summary.name)
        if expected is not None:
            if expected["casts"] != summary.safe_with_casts:
                mismatches += 1
            if expected["comprehensive"] != summary.comprehensive:
                mismatches += 1
    result.add_summary("approaches", float(len(summaries())))
    result.add_summary("mismatches_vs_paper", float(mismatches))
    result.notes.append("derived columns match Table 1 when mismatches_vs_paper == 0")
    return result


def format_table() -> str:
    """Render the full Table 1-style text table."""
    return ComparisonHarness().format_table()


DEFINITION = ExperimentDefinition(
    name="table1",
    title="table1-approach-comparison",
    description="Table 1 — location-based vs identifier-based approach "
                "comparison",
    extract=lambda context: run(),
    # The derived columns must agree with the published table exactly.
    expected={"mismatches_vs_paper": 0.0},
    render=lambda result: format_table(),
    sampling_tiers=NO_SAMPLING_TIERS,
)
