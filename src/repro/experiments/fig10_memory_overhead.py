"""Figure 10: shadow metadata memory overhead.

The paper measures the memory overhead of the per-pointer shadow metadata two
ways: total words of memory accessed (32% geometric mean) and total 4KB pages
of memory accessed (56% geometric mean), the latter reflecting on-demand,
page-granularity allocation of the shadow space and its fragmentation.
Several benchmarks approach the worst case of two shadow pages per data page;
for most the overhead is small.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import ExperimentResult
from repro.sim.stats import geometric_mean

EXPECTED = {
    "words_geomean_percent": 32.0,
    "pages_geomean_percent": 56.0,
}

NAME = "fig10-memory-overhead"
ISA_ASSISTED = "isa-assisted"
WORDS = "words"
PAGES = "pages"


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The Figure 10 grid: the ISA-assisted configuration, no baseline needed."""
    return ExperimentSpec.build(NAME, {
        ISA_ASSISTED: WatchdogConfig.isa_assisted_uaf(),
    }, settings=settings, include_baseline=False)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Shadow word and shadow page overheads (ISA-assisted)."""
    result = ExperimentResult(name=context.spec.name)
    word_ratios = []
    page_ratios = []
    for benchmark in context.settings.benchmarks:
        outcome = context.cells[benchmark, ISA_ASSISTED]
        word_overhead = outcome.word_overhead()
        page_overhead = outcome.page_overhead()
        word_ratios.append(1.0 + word_overhead)
        page_ratios.append(1.0 + page_overhead)
        result.add_value(WORDS, benchmark, 100.0 * word_overhead)
        result.add_value(PAGES, benchmark, 100.0 * page_overhead)

    result.add_summary("words_geomean_percent", 100.0 * (geometric_mean(word_ratios) - 1.0))
    result.add_summary("pages_geomean_percent", 100.0 * (geometric_mean(page_ratios) - 1.0))
    result.notes.append("paper geo-means: 32% (words), 56% (pages)")
    return result


DEFINITION = ExperimentDefinition(
    name="fig10",
    title=NAME,
    description="Figure 10 — shadow metadata memory overhead (words/pages)",
    build_spec=spec,
    extract=extract,
    expected=EXPECTED,
    # The synthetic workloads' shorter traces touch proportionally fewer
    # data pages per shadow page, inflating the page-granularity overhead
    # well past the paper's 56%; the wide tolerance absorbs that scale
    # artifact while still catching a broken page accountant (0% or
    # runaway overhead).
    tolerances={
        "words_geomean_percent": 25.0,
        "pages_geomean_percent": 75.0,
    },
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Measure shadow word and shadow page overheads (ISA-assisted)."""
    return run_definition(DEFINITION, settings=settings, sweep=sweep,
                          workers=workers)
