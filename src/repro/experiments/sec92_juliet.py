"""§9.2: efficacy against the Juliet CWE-416/562 use-after-free cases.

The paper runs the 291 use-after-free test cases (CWE-416 and CWE-562) from
the NIST Juliet suite and reports that Watchdog detects and thwarts the
attack in all 291 cases with no false positives.  This experiment runs the
generated Juliet-style suite (faulty cases plus benign twins) through the
functional machine under the ISA-assisted configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentDefinition,
    NO_SAMPLING_TIERS,
)
from repro.sim.results import ExperimentResult
from repro.sim.simulator import Simulator
from repro.workloads.juliet import JulietCase, JulietSuite, JULIET_CASE_COUNT

EXPECTED = {
    "cases": 291,
    "detected": 291,
    "false_positives": 0,
}


@dataclass
class JulietOutcome:
    """Detailed per-case outcomes (useful for debugging a failed pattern)."""

    detected: List[str] = field(default_factory=list)
    missed: List[str] = field(default_factory=list)
    false_positives: List[str] = field(default_factory=list)
    per_pattern_detected: Dict[str, int] = field(default_factory=dict)
    per_pattern_total: Dict[str, int] = field(default_factory=dict)


def run(case_count: int = JULIET_CASE_COUNT,
        config: Optional[WatchdogConfig] = None,
        benign_count: Optional[int] = None) -> ExperimentResult:
    """Run the Juliet-style suite and count detections / false positives."""
    config = config or WatchdogConfig.isa_assisted_uaf()
    simulator = Simulator()
    suite = JulietSuite(case_count=case_count)
    outcome = JulietOutcome()

    for case in suite.faulty_cases():
        result = simulator.run_program(case.program, config)
        outcome.per_pattern_total[case.pattern] = \
            outcome.per_pattern_total.get(case.pattern, 0) + 1
        if result.detected:
            outcome.detected.append(case.name)
            outcome.per_pattern_detected[case.pattern] = \
                outcome.per_pattern_detected.get(case.pattern, 0) + 1
        else:
            outcome.missed.append(case.name)

    benign_limit = benign_count if benign_count is not None else case_count
    for case in suite.benign_cases(benign_limit):
        result = simulator.run_program(case.program, config)
        if result.detected:
            outcome.false_positives.append(case.name)

    result = ExperimentResult(name="sec9.2-juliet-use-after-free")
    for pattern, total in outcome.per_pattern_total.items():
        result.add_value("cases", pattern, float(total))
        result.add_value("detected", pattern,
                         float(outcome.per_pattern_detected.get(pattern, 0)))
    result.add_summary("cases", float(case_count))
    result.add_summary("detected", float(len(outcome.detected)))
    result.add_summary("missed", float(len(outcome.missed)))
    result.add_summary("false_positives", float(len(outcome.false_positives)))
    result.notes.append("paper: 291/291 detected, zero false positives")
    if outcome.missed:
        result.notes.append("missed cases: " + ", ".join(outcome.missed[:10]))
    if outcome.false_positives:
        result.notes.append("false positives: " + ", ".join(outcome.false_positives[:10]))
    return result


DEFINITION = ExperimentDefinition(
    name="juliet",
    title="sec9.2-juliet-use-after-free",
    description="§9.2 — Juliet CWE-416/562 use-after-free detection efficacy",
    # Standalone: the full 291-case suite runs through the functional
    # machine regardless of sweep settings (it completes in well under a
    # second, so no reduced tier is needed).
    extract=lambda context: run(),
    expected={"cases": 291.0, "detected": 291.0, "false_positives": 0.0},
    sampling_tiers=NO_SAMPLING_TIERS,
)
