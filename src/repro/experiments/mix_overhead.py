"""Multi-core mixes: Watchdog overhead and lock-cache contention vs core count.

The paper's evaluation is single-core; this experiment extends it with the
standard multiprogrammed-mix methodology: four-application bundles of the
existing SPEC-like profiles (``mix1``–``mix7`` in
:mod:`repro.workloads.profiles`, MPKI-ordered) run on 1, 2 and 4 cores that
share the L2, the inclusive L3 and the 4KB lock location cache while keeping
private L1s and TLBs (:class:`~repro.sim.multicore.MultiCoreSimulator`).

Reported per mix:

* **overhead vs core count** — the geometric-mean slowdown of ISA-assisted
  Watchdog over the unprotected baseline at 1 core (each member solo), 2
  cores (first two members) and 4 cores (the full mix),
* **lock-cache contention** — the mix's lock-location-cache misses per 1000
  µops minus the aggregate solo MPKI of its members: the misses caused purely
  by cross-core contention for the shared 4KB cache,
* **per-core attribution** — each core's IPC and attributed lock-cache MPKI
  (from the mix cell's :class:`~repro.sim.results.CoreResult` blocks).

There are no paper-expected values (the paper has no multi-core numbers), so
the experiment carries no metric checks; it exists to quantify how far the
single-core overhead story survives shared-level contention.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    BASELINE_LABEL,
    NO_SAMPLING_TIERS,
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import CellResult, ExperimentResult
from repro.sim.stats import geometric_mean_overhead
from repro.workloads.profiles import mix_by_name, mix_names

NAME = "mix-overhead"
WATCHDOG = "watchdog"

#: Mixes a quick (unit-test / CI smoke) run covers: the most and the least
#: memory-intensive bundle — the extremes of shared-level pressure.
QUICK_MIXES = ("mix1", "mix5")
#: Settings at or below this horizon are treated as a quick run.
QUICK_INSTRUCTION_LIMIT = 3_000


def _mixes_for(settings: ExperimentSettings) -> List[str]:
    if settings.instructions <= QUICK_INSTRUCTION_LIMIT:
        return list(QUICK_MIXES)
    return mix_names()


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The mix grid: every chosen mix at 1, 2 and 4 cores, ± Watchdog.

    The 1-core cells are ``mixK:1@i`` tokens — each member runs alone under
    exactly the seed it carries inside the mix, so the solo/contended
    comparison holds the workload fixed.  Sampling never applies to mixes
    (there is no cross-core interleaving order between sampled windows), so
    the settings' schedule is dropped and the horizon clamped to the largest
    unsampled trace the bundle layer materializes.
    """
    from repro.workloads.bundle import MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS

    settings = settings or ExperimentSettings()
    tokens: List[str] = []
    for mix_name in _mixes_for(settings):
        mix = mix_by_name(mix_name)
        tokens.extend(f"{mix_name}:1@{index}"
                      for index in range(len(mix.members)))
        tokens.append(f"{mix_name}:2")
        tokens.append(mix_name)
    mix_settings = dataclasses.replace(
        settings, benchmarks=tuple(tokens),
        instructions=min(settings.instructions,
                         MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS),
        sampling=None)
    return ExperimentSpec.build(NAME, {WATCHDOG: WatchdogConfig.isa_assisted_uaf()},
                                settings=mix_settings)


def _overhead(baseline: CellResult, configured: CellResult) -> float:
    """Fractional slowdown, NaN when either cell is a failure placeholder."""
    if baseline.failed or configured.failed or baseline.cycles <= 0:
        return float("nan")
    return configured.overhead_vs(baseline)


def _lock_mpki(cell: CellResult) -> float:
    return 1000.0 * cell.lock_cache_misses / max(cell.total_uops, 1)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Per-mix overhead by core count, contention MPKI, per-core blocks."""
    result = ExperimentResult(name=context.spec.name)
    cells = context.cells
    mixes = [token for token in context.spec.settings.benchmarks
             if ":" not in token]

    full_overheads: List[float] = []
    solo_overheads: List[float] = []
    contentions: List[float] = []
    for mix_name in mixes:
        members = mix_by_name(mix_name).members
        solos_base = [cells[f"{mix_name}:1@{index}", BASELINE_LABEL]
                      for index in range(len(members))]
        solos_wd = [cells[f"{mix_name}:1@{index}", WATCHDOG]
                    for index in range(len(members))]
        duo_base = cells[f"{mix_name}:2", BASELINE_LABEL]
        duo_wd = cells[f"{mix_name}:2", WATCHDOG]
        full_base = cells[mix_name, BASELINE_LABEL]
        full_wd = cells[mix_name, WATCHDOG]

        per_solo = [_overhead(base, wd)
                    for base, wd in zip(solos_base, solos_wd)]
        solo_overheads.extend(per_solo)
        full_overhead = _overhead(full_base, full_wd)
        full_overheads.append(full_overhead)
        result.add_value("overhead_percent_1core", mix_name,
                         100.0 * geometric_mean_overhead(per_solo))
        result.add_value("overhead_percent_2core", mix_name,
                         100.0 * _overhead(duo_base, duo_wd))
        result.add_value("overhead_percent_4core", mix_name,
                         100.0 * full_overhead)

        # Contention for the shared 4KB lock cache: misses the mix sees
        # beyond what its members produce running alone (same workloads,
        # same seeds — the delta is purely cross-core interference).
        solo_misses = sum(cell.lock_cache_misses for cell in solos_wd)
        solo_uops = sum(cell.total_uops for cell in solos_wd)
        solo_mpki = 1000.0 * solo_misses / max(solo_uops, 1)
        mix_mpki = _lock_mpki(full_wd)
        contention = mix_mpki - solo_mpki
        contentions.append(contention)
        result.add_value("lock_mpki_4core", mix_name, mix_mpki)
        result.add_value("lock_contention_mpki", mix_name, contention)

        # Per-core attribution rows of the 4-core Watchdog cell.
        for core in full_wd.cores:
            row = f"{mix_name}/c{core.core}:{core.benchmark}"
            result.add_value("core_ipc", row, core.ipc)
            result.add_value("core_lock_mpki", row, core.lock_cache_mpki())

    result.add_summary("mix_count", float(len(mixes)))
    result.add_summary("watchdog_geomean_percent_1core",
                       100.0 * geometric_mean_overhead(solo_overheads))
    result.add_summary("watchdog_geomean_percent_4core",
                       100.0 * geometric_mean_overhead(full_overheads))
    finite = [value for value in contentions if not math.isnan(value)]
    result.add_summary("mean_lock_contention_mpki",
                       sum(finite) / len(finite) if finite else float("nan"))
    result.notes.append(
        "mixes share L2+L3+lock cache across cores (private L1s/TLBs); "
        "1-core cells replay each member solo under its in-mix seed, so "
        "lock_contention_mpki isolates cross-core interference")
    return result


DEFINITION = ExperimentDefinition(
    name="mix_overhead",
    title=NAME,
    description="Multi-core mixes — overhead and lock-cache contention "
                "vs core count (1/2/4 cores, shared L2+L3+lock cache)",
    build_spec=spec,
    extract=extract,
    # No expected values: the paper's evaluation is single-core; this
    # experiment extends it rather than reproducing a figure.
    expected={},
    tolerances={},
    # Mixes always measure their full horizon; the spec drops any sampling
    # schedule, so only the unsampled tier is meaningful.
    sampling_tiers=NO_SAMPLING_TIERS,
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Measure per-mix Watchdog overhead and shared-cache contention."""
    return run_definition(DEFINITION, settings=settings, sweep=sweep,
                          workers=workers)
