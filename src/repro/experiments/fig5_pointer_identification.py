"""Figure 5: fraction of memory accesses classified as pointer operations.

The paper reports that the conservative heuristic (§5.1) classifies 31% of
memory accesses as potential pointer loads/stores on average, and that
ISA-assisted identification (§5.2) reduces that to 18%.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import ExperimentSettings, OverheadSweep
from repro.sim.results import ExperimentResult
from repro.sim.stats import arithmetic_mean

#: Paper values (percent of memory accesses classified as pointer ops).
EXPECTED = {
    "conservative_avg_percent": 31.0,
    "isa_assisted_avg_percent": 18.0,
}

CONSERVATIVE = "conservative"
ISA_ASSISTED = "isa-assisted"


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None) -> ExperimentResult:
    """Classify every benchmark's memory accesses under both policies."""
    sweep = sweep or OverheadSweep(settings)
    configs = {
        CONSERVATIVE: WatchdogConfig.conservative_uaf(),
        ISA_ASSISTED: WatchdogConfig.isa_assisted_uaf(),
    }
    result = ExperimentResult(name="fig5-pointer-identification")

    for label, config in configs.items():
        for benchmark in sweep.benchmarks:
            outcome = sweep.outcome(benchmark, label, config)
            assert outcome.pointer_stats is not None
            fraction = outcome.pointer_stats.pointer_fraction
            result.add_value(label, benchmark, 100.0 * fraction)

    conservative_avg = arithmetic_mean(list(result.series[CONSERVATIVE].values()))
    isa_avg = arithmetic_mean(list(result.series[ISA_ASSISTED].values()))
    result.add_summary("conservative_avg_percent", conservative_avg)
    result.add_summary("isa_assisted_avg_percent", isa_avg)
    result.notes.append(
        f"paper: conservative {EXPECTED['conservative_avg_percent']:.0f}%, "
        f"ISA-assisted {EXPECTED['isa_assisted_avg_percent']:.0f}% (averages)")
    return result
