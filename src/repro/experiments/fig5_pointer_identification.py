"""Figure 5: fraction of memory accesses classified as pointer operations.

The paper reports that the conservative heuristic (§5.1) classifies 31% of
memory accesses as potential pointer loads/stores on average, and that
ISA-assisted identification (§5.2) reduces that to 18%.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import (
    ExperimentContext,
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
)
from repro.sim.results import ExperimentResult
from repro.sim.stats import arithmetic_mean

#: Paper values (percent of memory accesses classified as pointer ops).
EXPECTED = {
    "conservative_avg_percent": 31.0,
    "isa_assisted_avg_percent": 18.0,
}

NAME = "fig5-pointer-identification"
CONSERVATIVE = "conservative"
ISA_ASSISTED = "isa-assisted"


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The Figure 5 grid: both identification policies, no baseline needed."""
    return ExperimentSpec.build(NAME, {
        CONSERVATIVE: WatchdogConfig.conservative_uaf(),
        ISA_ASSISTED: WatchdogConfig.isa_assisted_uaf(),
    }, settings=settings, include_baseline=False)


def extract(context: ExperimentContext) -> ExperimentResult:
    """Pointer-classification fractions per benchmark and policy."""
    result = ExperimentResult(name=context.spec.name)
    for label, _ in context.spec.configs:
        for benchmark in context.settings.benchmarks:
            result.add_value(
                label, benchmark,
                100.0 * context.cells[benchmark, label].pointer_fraction)
    conservative_avg = arithmetic_mean(list(result.series[CONSERVATIVE].values()))
    isa_avg = arithmetic_mean(list(result.series[ISA_ASSISTED].values()))
    result.add_summary("conservative_avg_percent", conservative_avg)
    result.add_summary("isa_assisted_avg_percent", isa_avg)
    result.notes.append(
        f"paper: conservative {EXPECTED['conservative_avg_percent']:.0f}%, "
        f"ISA-assisted {EXPECTED['isa_assisted_avg_percent']:.0f}% (averages)")
    return result


DEFINITION = ExperimentDefinition(
    name="fig5",
    title=NAME,
    description="Figure 5 — fraction of memory accesses classified as "
                "pointer operations",
    build_spec=spec,
    extract=extract,
    expected=EXPECTED,
    tolerances={
        "conservative_avg_percent": 10.0,
        "isa_assisted_avg_percent": 8.0,
    },
)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Classify every benchmark's memory accesses under both policies."""
    return run_definition(DEFINITION, settings=settings, sweep=sweep,
                          workers=workers)
