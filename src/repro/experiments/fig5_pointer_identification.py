"""Figure 5: fraction of memory accesses classified as pointer operations.

The paper reports that the conservative heuristic (§5.1) classifies 31% of
memory accesses as potential pointer loads/stores on average, and that
ISA-assisted identification (§5.2) reduces that to 18%.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import WatchdogConfig
from repro.experiments.common import ExperimentSettings, ExperimentSpec, OverheadSweep
from repro.sim.results import ExperimentResult
from repro.sim.stats import arithmetic_mean

#: Paper values (percent of memory accesses classified as pointer ops).
EXPECTED = {
    "conservative_avg_percent": 31.0,
    "isa_assisted_avg_percent": 18.0,
}

NAME = "fig5-pointer-identification"
CONSERVATIVE = "conservative"
ISA_ASSISTED = "isa-assisted"


def spec(settings: Optional[ExperimentSettings] = None) -> ExperimentSpec:
    """The Figure 5 grid: both identification policies, no baseline needed."""
    return ExperimentSpec.build(NAME, {
        CONSERVATIVE: WatchdogConfig.conservative_uaf(),
        ISA_ASSISTED: WatchdogConfig.isa_assisted_uaf(),
    }, settings=settings, include_baseline=False)


def run(settings: Optional[ExperimentSettings] = None,
        sweep: Optional[OverheadSweep] = None,
        workers: Optional[int] = None) -> ExperimentResult:
    """Classify every benchmark's memory accesses under both policies."""
    sweep = sweep or OverheadSweep(settings, workers=workers)
    grid = spec(sweep.settings)
    cells = sweep.run_spec(grid)
    result = ExperimentResult(name=grid.name)

    for label, _ in grid.configs:
        for benchmark in sweep.benchmarks:
            result.add_value(label, benchmark,
                             100.0 * cells[benchmark, label].pointer_fraction)

    conservative_avg = arithmetic_mean(list(result.series[CONSERVATIVE].values()))
    isa_avg = arithmetic_mean(list(result.series[ISA_ASSISTED].values()))
    result.add_summary("conservative_avg_percent", conservative_avg)
    result.add_summary("isa_assisted_avg_percent", isa_avg)
    result.notes.append(
        f"paper: conservative {EXPECTED['conservative_avg_percent']:.0f}%, "
        f"ISA-assisted {EXPECTED['isa_assisted_avg_percent']:.0f}% (averages)")
    return result
