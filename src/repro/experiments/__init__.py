"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each module declares itself as an
:class:`~repro.experiments.common.ExperimentDefinition` — name, grid builder,
metric extractor, the paper's expected values with tolerances, and a render
hook — collected here into :data:`REGISTRY`.  One generic runner
(:func:`~repro.experiments.common.run_experiments`) executes any subset: the
grids are merged into a deduplicated super-spec, resolved in a single sweep
batch, and every summary metric is checked against the paper.

| Module | Reproduces |
|---|---|
| ``table1_comparison`` | Table 1 — approach comparison |
| ``table2_config`` | Table 2 — simulated processor configuration |
| ``fig5_pointer_identification`` | Figure 5 — pointer-op classification |
| ``fig7_runtime_overhead`` | Figure 7 — runtime overhead (+ §9.3 ideal-shadow ablation) |
| ``fig8_uop_overhead`` | Figure 8 — µop overhead breakdown |
| ``fig9_lock_cache`` | Figure 9 — lock location cache ablation |
| ``fig10_memory_overhead`` | Figure 10 — shadow memory overhead (words / pages) |
| ``fig11_bounds_checking`` | Figure 11 — bounds-checking configurations |
| ``sec92_juliet`` | §9.2 — Juliet CWE-416/562 detection |
| ``ablations`` | extra ablations (copy elimination, ideal shadow) |
| ``mix_overhead`` | multi-core mixes — overhead & lock-cache contention |
"""

from typing import Dict

from repro.experiments import (
    ablations,
    fig5_pointer_identification,
    fig7_runtime_overhead,
    fig8_uop_overhead,
    fig9_lock_cache,
    fig10_memory_overhead,
    fig11_bounds_checking,
    mix_overhead,
    sec92_juliet,
    table1_comparison,
    table2_config,
)
from repro.experiments.common import (
    ExperimentDefinition,
    ExperimentSettings,
    ExperimentSpec,
    OverheadSweep,
    run_definition,
    run_experiments,
)

#: Every registered experiment, in the order ``repro run --all`` executes
#: them: the grid experiments first (they share one merged sweep batch),
#: then the standalone tables and the Juliet suite.
REGISTRY: Dict[str, ExperimentDefinition] = {
    definition.name: definition
    for definition in (
        fig5_pointer_identification.DEFINITION,
        fig7_runtime_overhead.DEFINITION,
        fig8_uop_overhead.DEFINITION,
        fig9_lock_cache.DEFINITION,
        fig10_memory_overhead.DEFINITION,
        fig11_bounds_checking.DEFINITION,
        mix_overhead.DEFINITION,
        ablations.DEFINITION,
        table1_comparison.DEFINITION,
        table2_config.DEFINITION,
        sec92_juliet.DEFINITION,
    )
}


def get_definition(name: str) -> ExperimentDefinition:
    """Look up a registered experiment by CLI name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"known: {', '.join(REGISTRY)}") from None


__all__ = [
    "ExperimentDefinition",
    "ExperimentSettings",
    "ExperimentSpec",
    "OverheadSweep",
    "REGISTRY",
    "get_definition",
    "run_definition",
    "run_experiments",
    "ablations",
    "fig5_pointer_identification",
    "fig7_runtime_overhead",
    "fig8_uop_overhead",
    "fig9_lock_cache",
    "fig10_memory_overhead",
    "fig11_bounds_checking",
    "mix_overhead",
    "sec92_juliet",
    "table1_comparison",
    "table2_config",
]
