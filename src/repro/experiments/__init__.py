"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.sim.results.ExperimentResult` plus an ``EXPECTED`` mapping
recording the paper's headline numbers, so EXPERIMENTS.md and the benchmark
harness can print paper-vs-measured side by side.

| Module | Reproduces |
|---|---|
| ``table1_comparison`` | Table 1 — approach comparison |
| ``table2_config`` | Table 2 — simulated processor configuration |
| ``fig5_pointer_identification`` | Figure 5 — pointer-op classification |
| ``fig7_runtime_overhead`` | Figure 7 — runtime overhead (+ §9.3 ideal-shadow ablation) |
| ``fig8_uop_overhead`` | Figure 8 — µop overhead breakdown |
| ``fig9_lock_cache`` | Figure 9 — lock location cache ablation |
| ``fig10_memory_overhead`` | Figure 10 — shadow memory overhead (words / pages) |
| ``fig11_bounds_checking`` | Figure 11 — bounds-checking configurations |
| ``sec92_juliet`` | §9.2 — Juliet CWE-416/562 detection |
| ``ablations`` | extra ablations (copy elimination, ideal shadow) |
"""

from repro.experiments import (
    ablations,
    fig5_pointer_identification,
    fig7_runtime_overhead,
    fig8_uop_overhead,
    fig9_lock_cache,
    fig10_memory_overhead,
    fig11_bounds_checking,
    sec92_juliet,
    table1_comparison,
    table2_config,
)
from repro.experiments.common import ExperimentSettings, ExperimentSpec, OverheadSweep

#: Sweep-based experiments: modules exposing ``spec(settings)`` and
#: ``run(settings=…, sweep=…, workers=…)``.  They share one
#: :class:`OverheadSweep`, so configurations appearing in several figures are
#: simulated (or cache-fetched) once per session.
SWEEP_EXPERIMENTS = {
    "fig5": fig5_pointer_identification,
    "fig7": fig7_runtime_overhead,
    "fig8": fig8_uop_overhead,
    "fig9": fig9_lock_cache,
    "fig10": fig10_memory_overhead,
    "fig11": fig11_bounds_checking,
    "ablations": ablations,
}

#: Experiments that do not run the (benchmark × configuration) grid: the
#: derived tables and the Juliet detection suite.
STANDALONE_EXPERIMENTS = {
    "table1": table1_comparison,
    "table2": table2_config,
    "juliet": sec92_juliet,
}

#: Every runnable experiment by CLI name.
EXPERIMENTS = {**SWEEP_EXPERIMENTS, **STANDALONE_EXPERIMENTS}

__all__ = [
    "ExperimentSettings",
    "ExperimentSpec",
    "OverheadSweep",
    "SWEEP_EXPERIMENTS",
    "STANDALONE_EXPERIMENTS",
    "EXPERIMENTS",
    "ablations",
    "fig5_pointer_identification",
    "fig7_runtime_overhead",
    "fig8_uop_overhead",
    "fig9_lock_cache",
    "fig10_memory_overhead",
    "fig11_bounds_checking",
    "sec92_juliet",
    "table1_comparison",
    "table2_config",
]
