"""Tests for the declarative experiment registry and its generic runner.

Covers the three guarantees the registry refactor makes:

* **merge**: ``repro run --all`` resolves every requested grid in one engine
  batch, simulating each distinct (benchmark, configuration) cell exactly
  once (asserted via the engine's batch/cell counters),
* **split**: the merged super-spec run is cell-for-cell identical to running
  each experiment standalone,
* **golden**: every registered experiment, run under the quick §9.1 sampling
  schedule, reproduces pinned summary metrics exactly — the end-to-end
  regression net over workload generation, sampling segmentation, the
  compiled pipeline and metric extraction.
"""

import json

import pytest

from repro.experiments import REGISTRY, get_definition, run_experiments
from repro.experiments.common import (
    ExperimentDefinition,
    ExperimentSettings,
    run_definition,
)
from repro.sim.engine import SweepEngine
from repro.sim.results import ExperimentResult, MetricCheck, SuiteReport
from repro.sim.sampling import SamplingConfig
from repro.sim.spec import MergedGrid, request_content_key

#: Tiny grid shared by the merge/split tests: two benchmarks, short traces.
TINY = ExperimentSettings.quick(benchmarks=("gzip", "mcf"), instructions=1500)

GRID_EXPERIMENTS = [name for name, d in REGISTRY.items() if d.has_grid]
STANDALONE = [name for name, d in REGISTRY.items() if not d.has_grid]


class TestRegistry:
    def test_every_experiment_is_registered(self):
        assert set(REGISTRY) == {"fig5", "fig7", "fig8", "fig9", "fig10",
                                 "fig11", "mix_overhead", "ablations",
                                 "table1", "table2", "juliet"}
        assert set(GRID_EXPERIMENTS) == {"fig5", "fig7", "fig8", "fig9",
                                         "fig10", "fig11", "mix_overhead",
                                         "ablations"}

    def test_definitions_declare_expectations(self):
        for name, definition in REGISTRY.items():
            assert definition.name == name
            assert definition.description
            if name == "mix_overhead":
                # Extends the paper (whose evaluation is single-core)
                # rather than reproducing a figure: no expected values by
                # design, pinned instead by tests/test_multicore.py.
                assert not definition.expected
                continue
            assert definition.expected, f"{name} declares no expected values"

    def test_get_definition_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_definition("fig99")

    def test_evaluate_flags_missing_metric(self):
        definition = REGISTRY["fig7"]
        checks = definition.evaluate(ExperimentResult(name="empty"))
        assert checks and all(not check.ok for check in checks)
        assert all(check.measured is None for check in checks)


class TestMergedSuite:
    @pytest.fixture(scope="class")
    def suite_and_engine(self):
        engine = SweepEngine()
        suite = run_experiments(list(REGISTRY), settings=TINY, engine=engine)
        return suite, engine

    def test_all_experiments_resolve_in_one_simulation_batch(
            self, suite_and_engine):
        suite, engine = suite_and_engine
        merged = MergedGrid.merge([REGISTRY[name].build_spec(TINY)
                                   for name in GRID_EXPERIMENTS])
        assert engine.simulation_batches == 1
        # Each distinct cell simulated exactly once — and the merge genuinely
        # deduplicates (the figures share the baseline and ISA-assisted runs).
        assert engine.simulated_cells == len(merged)
        assert len(merged) < merged.total_grid_cells()
        assert suite.engine["merged_unique_cells"] == len(merged)
        assert suite.engine["grid_cells_total"] == merged.total_grid_cells()

    def test_merged_results_identical_to_standalone_runs(
            self, suite_and_engine):
        suite, _ = suite_and_engine
        by_name = {report.name: report for report in suite.reports}
        for name in GRID_EXPERIMENTS:
            standalone = run_definition(REGISTRY[name], settings=TINY)
            merged = by_name[name].result
            assert merged.series == standalone.series, name
            assert merged.summary == standalone.summary, name

    def test_split_is_cell_for_cell_identical_to_per_spec_runs(self):
        specs = [REGISTRY[name].build_spec(TINY) for name in GRID_EXPERIMENTS]
        merged = MergedGrid.merge(specs)
        engine = SweepEngine()
        grids = merged.split(engine.run_requests(merged.requests()))
        for spec in specs:
            standalone = SweepEngine().run_spec(spec)
            assert grids[spec.name] == standalone, spec.name

    def test_merged_requests_are_content_unique(self):
        merged = MergedGrid.merge([REGISTRY[name].build_spec(TINY)
                                   for name in GRID_EXPERIMENTS])
        keys = [request_content_key(r) for r in merged.requests()]
        assert len(keys) == len(set(keys))

    def test_merge_rejects_label_bound_to_different_configs(self):
        """Same label + different config across specs must fail loudly.

        The merged resolution is keyed by (benchmark, label); a collision
        would silently serve one spec the other's cells, so the merge
        refuses it up front.
        """
        from repro.core.config import WatchdogConfig
        from repro.errors import ConfigurationError
        from repro.sim.spec import ExperimentSpec

        spec_a = ExperimentSpec.build(
            "a", {"watchdog": WatchdogConfig.isa_assisted_uaf()},
            settings=TINY, include_baseline=False)
        spec_b = ExperimentSpec.build(
            "b", {"watchdog": WatchdogConfig.conservative_uaf()},
            settings=TINY, include_baseline=False)
        with pytest.raises(ConfigurationError, match="different config"):
            MergedGrid.merge([spec_a, spec_b]).requests()


class TestQuickTierChecks:
    def test_quick_tier_passes_all_paper_checks(self):
        """The CI gate: `repro run --all --quick` must stay inside tolerance."""
        suite = run_experiments(list(REGISTRY),
                                settings=ExperimentSettings.quick())
        failures = [f"{report.name}: {check.describe()}"
                    for report in suite.reports
                    for check in report.checks if not check.ok]
        assert suite.ok, "\n".join(failures)

    def test_suite_report_round_trips_through_json(self):
        suite = run_experiments(["fig8", "table2"], settings=TINY)
        restored = SuiteReport.from_dict(
            json.loads(json.dumps(suite.to_dict())))
        assert restored.ok == suite.ok
        assert [r.name for r in restored.reports] == \
            [r.name for r in suite.reports]
        assert restored.reports[0].result.summary == \
            suite.reports[0].result.summary
        assert [c.to_dict() for c in restored.reports[0].checks] == \
            [c.to_dict() for c in suite.reports[0].checks]


#: Summary metrics of every registered experiment under the quick §9.1
#: schedule (two benchmarks, 120k-instruction horizon: one genuinely sampled
#: measure window per period).  Pinned from the implementation at the time
#: the registry landed; any drift in workload generation, sampling
#: segmentation, the timing model or metric extraction shows up here.
GOLDEN_SETTINGS = dict(benchmarks=("gzip", "mcf"), instructions=120_000)
GOLDEN = {
    "fig5": {
        "conservative_avg_percent": 38.076848818247434,
        "isa_assisted_avg_percent": 24.54920528365329,
    },
    "fig7": {
        "conservative_geomean_percent": 15.0630267901799,
        "isa-assisted_geomean_percent": 10.778032487658894,
        "ideal-shadow_geomean_percent": 2.5895990092561716,
    },
    "fig8": {
        "total_avg_percent": 44.40331204954086,
        "checks_avg_percent": 29.029529724211834,
        "pointer_loads_avg_percent": 5.2859321577317395,
        "pointer_stores_avg_percent": 2.0883882540180125,
        "other_avg_percent": 7.99946191357927,
    },
    "fig9": {
        "with-lock-cache_geomean_percent": 10.778032487658894,
        "without-lock-cache_geomean_percent": 21.37715267551963,
        "benchmarks_below_1_mpki": 1.0,
    },
    "fig10": {
        "words_geomean_percent": 52.58244673131773,
        "pages_geomean_percent": 110.79756185181768,
    },
    "fig11": {
        "watchdog_geomean_percent": 10.778032487658894,
        "bounds_fused_geomean_percent": 24.480823233970007,
        "bounds_two_uop_geomean_percent": 30.263454651536215,
    },
    "ablations": {
        "isa-assisted_geomean_percent": 10.778032487658894,
        "ideal-shadow_geomean_percent": 2.5895990092561716,
        "no-copy-elimination_geomean_percent": 15.19177375215277,
    },
    "table1": {
        "approaches": 11.0,
        "mismatches_vs_paper": 0.0,
    },
    "table2": {
        "mismatches_vs_paper": 0.0,
    },
    "juliet": {
        "cases": 291.0,
        "detected": 291.0,
        "missed": 0.0,
        "false_positives": 0.0,
    },
}


class TestGoldenQuickSampling:
    @pytest.fixture(scope="class")
    def sampled_suite(self):
        settings = ExperimentSettings(sampling=SamplingConfig.quick(),
                                      **GOLDEN_SETTINGS)
        # mix_overhead is excluded: mixes measure their full horizon
        # unsampled, so at the 120k golden horizon the full mix1-mix7
        # family is a multi-minute run.  The mix family has its own
        # quick-scale golden pin in tests/test_multicore.py.
        return run_experiments([name for name in REGISTRY
                                if name != "mix_overhead"],
                               settings=settings)

    def test_registry_names_match_golden(self, sampled_suite):
        assert {r.name for r in sampled_suite.reports} == set(GOLDEN)

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_sampled_metrics_match_pinned_values(self, sampled_suite, name):
        report = next(r for r in sampled_suite.reports if r.name == name)
        assert report.result.summary == pytest.approx(GOLDEN[name], rel=1e-9)


class TestCliRun:
    def _cli(self, argv):
        from repro import cli

        return cli.main(argv)

    def test_run_writes_report_and_exits_zero(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = self._cli(["run", "fig8", "table2", "--quick", "--no-cache",
                        "--report", str(report_path)])
        assert rc == 0
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["engine"]["simulation_batches"] == 1
        names = [entry["name"] for entry in data["experiments"]]
        assert names == ["fig8", "table2"]
        for entry in data["experiments"]:
            for check in entry["checks"]:
                assert check["ok"] is True
                assert "deviation" in check
        out = capsys.readouterr().out
        assert "[check]" in out and "[engine]" in out

    def test_run_rejects_unknown_experiment(self, capsys):
        rc = self._cli(["run", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_deviation_fails_run_unless_no_check(self, tmp_path, monkeypatch,
                                                 capsys):
        broken = ExperimentDefinition(
            name="broken",
            title="broken-experiment",
            description="deliberately impossible expectation",
            extract=lambda context: _constant_result(),
            expected={"value": 1000.0},
            tolerances={"value": 0.1},
        )
        monkeypatch.setitem(REGISTRY, "broken", broken)
        rc = self._cli(["run", "broken", "--quick", "--no-cache"])
        assert rc == 1
        assert "beyond tolerance" in capsys.readouterr().err
        rc = self._cli(["run", "broken", "--quick", "--no-cache",
                        "--no-check"])
        assert rc == 0


def _constant_result() -> ExperimentResult:
    result = ExperimentResult(name="broken-experiment")
    result.add_summary("value", 1.0)
    return result


class TestMetricCheck:
    def test_ok_within_tolerance(self):
        check = MetricCheck(metric="m", expected=10.0, tolerance=2.0,
                            measured=11.5)
        assert check.ok and check.deviation == pytest.approx(1.5)

    def test_fails_beyond_tolerance_and_when_missing(self):
        assert not MetricCheck(metric="m", expected=10.0, tolerance=2.0,
                               measured=12.5).ok
        missing = MetricCheck(metric="m", expected=10.0, tolerance=2.0)
        assert not missing.ok and missing.deviation is None

    def test_round_trip(self):
        check = MetricCheck(metric="m", expected=10.0, tolerance=2.0,
                            measured=9.0)
        data = json.loads(json.dumps(check.to_dict()))
        assert MetricCheck.from_dict(data) == check
        assert data["ok"] is True and data["deviation"] == -1.0
