"""Tests for the state-evolution / trace-emission generator split.

Covers the three equivalences the refactor must preserve:

* **golden digests** — traces and sampled bundles are bit-identical to the
  pre-split generator (the digests below were recorded from the monolithic
  ``SyntheticWorkload`` before the state core existed, so they pin
  before-vs-after equality permanently, not merely internal consistency);
* **fast-forward ≡ drained generation** — ``fast_forward(n)`` leaves the
  RNG, allocator, working set, cursors and hot set exactly where emitting
  and discarding ``n`` ops would, for arbitrary window sizes including ones
  that split allocation events;
* **native kernel ≡ pure Python** — the optional C kernel and the fallback
  span loop advance state identically.

Plus the satellite behaviours: the bounded per-workload instruction cache,
the ``*-paper`` profiles and horizon-fitted schedule, the paper-scale
validation, and the engine's per-sample fan-out determinism.
"""

import dataclasses
import zlib

import pytest

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.sim.engine import SweepEngine
from repro.sim.sampling import SamplingConfig
from repro.sim.spec import ExperimentSettings, ExperimentSpec, RunRequest
from repro.workloads import _ffcore
from repro.workloads.bundle import (
    MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS,
    TraceBundle,
)
from repro.workloads.profiles import (
    PAPER_HORIZON_INSTRUCTIONS,
    BenchmarkProfile,
    benchmark_names,
    paper_profile_names,
    profile_by_name,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.state_core import MAX_EVENT_OPS


def op_key(op):
    inst = op.instruction
    return (inst.opcode.name, str(inst.dest),
            tuple(str(src) for src in inst.srcs), inst.imm, int(inst.size),
            inst.pointer_hint.name, op.address, op.lock_address,
            op.mispredicted)


def digest_ops(ops):
    crc = 0
    for op in ops:
        crc = zlib.crc32(repr(op_key(op)).encode(), crc)
    return f"{crc:08x}"


def digest_bundle(bundle):
    crc = 0
    for sample in bundle.samples:
        crc = zlib.crc32(digest_ops(sample.warmup).encode(), crc)
        crc = zlib.crc32(digest_ops(sample.measured).encode(), crc)
        crc = zlib.crc32(repr(sample.working_set.lines).encode(), crc)
        crc = zlib.crc32(repr(sample.working_set.locks).encode(), crc)
    if not bundle.samples:
        crc = zlib.crc32(digest_ops(bundle.warmup).encode(), crc)
        crc = zlib.crc32(digest_ops(bundle.measured).encode(), crc)
        crc = zlib.crc32(repr(bundle.working_set.lines).encode(), crc)
    return f"{crc:08x}"


def state_fingerprint(workload):
    """Everything the functional state comprises, hashable for equality."""
    return (
        workload.rng.getstate(),
        tuple(workload._order),
        tuple(workload._hot),
        tuple(workload._slot_cursors),
        bytes(workload._slot_live),
        bytes(workload._slot_rich),
        workload._global_cursor,
        workload._call_depth,
        workload._value_rotation,
        workload._allocation_counter,
        workload.runtime.malloc_calls,
        workload.runtime.free_calls,
        workload.runtime.total_live_bytes(),
        tuple(workload.working_set_lines()),
        tuple(workload.lock_locations()),
    )


class TestGoldenEquality:
    """Digests recorded from the pre-split generator (seed commit 24d7b84)."""

    #: 40k-instruction sampled bundles (seed 7, schedule 2000/500/1500) on
    #: every ``*-long`` profile — the acceptance criterion's target set.
    SAMPLED_LONG = {
        "mcf-long": "e9367782",
        "gcc-long": "5333a50a",
        "lbm-long": "cb03ac95",
        "perl-long": "df71b1dd",
    }
    #: 9k-instruction sampled bundles (seed 3) under a schedule misaligned
    #: with any event structure, so windows split multi-op events.
    SAMPLED_SHORT = {
        "mcf": "2062ab1f",
        "perl": "f97968b8",
        "gcc": "d5eafdb1",
        "twolf": "464bed40",
    }
    #: Conventional (unsampled) bundles, pinning the warm-up/measure
    #: truncation-discard semantics of ``generate()``.
    PLAIN = {
        ("gzip", 7, 3_000): "0696cbb8",
        ("mcf-long", 1, 6_000): "1bcd825c",
    }
    #: Raw continuous traces.
    TRACES = {
        ("gcc", 3, 5_000): "b15d0a39",
        ("perl-long", 2, 5_000): "5418c4a2",
    }

    @pytest.mark.parametrize("name", sorted(SAMPLED_LONG))
    def test_sampled_long_profiles_match_pre_split_generator(self, name):
        bundle = TraceBundle.generate(
            name, seed=7, instructions=40_000,
            sampling=SamplingConfig(fast_forward=2000, warmup=500, sample=1500))
        assert bundle.samples, "schedule must genuinely sample"
        assert digest_bundle(bundle) == self.SAMPLED_LONG[name]

    @pytest.mark.parametrize("name", sorted(SAMPLED_SHORT))
    def test_sampled_event_straddling_windows_match(self, name):
        bundle = TraceBundle.generate(
            name, seed=3, instructions=9_000,
            sampling=SamplingConfig(fast_forward=313, warmup=328, sample=356))
        assert digest_bundle(bundle) == self.SAMPLED_SHORT[name]

    @pytest.mark.parametrize("key", sorted(PLAIN))
    def test_unsampled_bundles_match(self, key):
        name, seed, instructions = key
        bundle = TraceBundle.generate(name, seed=seed,
                                      instructions=instructions)
        assert digest_bundle(bundle) == self.PLAIN[key]

    @pytest.mark.parametrize("key", sorted(TRACES))
    def test_raw_traces_match(self, key):
        name, seed, instructions = key
        workload = SyntheticWorkload(profile_by_name(name), seed=seed)
        assert digest_ops(workload.trace(instructions)) == self.TRACES[key]


class TestFastForwardEquivalence:
    def _pair(self, name, seed, force_python):
        reference = SyntheticWorkload(profile_by_name(name), seed=seed)
        skipper = SyntheticWorkload(profile_by_name(name), seed=seed)
        if force_python:
            skipper._ffcore = None
        return reference, skipper

    @pytest.mark.parametrize("force_python", (False, True))
    @pytest.mark.parametrize("name,seed", (("mcf", 7), ("perl", 3),
                                           ("lbm", 1), ("mcf-long", 7)))
    def test_fast_forward_equals_drained_generation(self, name, seed,
                                                    force_python):
        reference, skipper = self._pair(name, seed, force_python)
        count = 12_000
        reference.emit(count)
        skipper.fast_forward(count)
        assert state_fingerprint(skipper) == state_fingerprint(reference)
        # The continuation — what a measure window would time — matches too.
        assert [op_key(op) for op in skipper.emit(600)] == \
            [op_key(op) for op in reference.emit(600)]

    @pytest.mark.parametrize("force_python", (False, True))
    def test_random_window_partitions(self, force_python):
        """Property-style: any skip/emit partition of the stream is exact.

        The meta-RNG draws window sizes from 1 op (guaranteed to split
        multi-op events, including allocation events on the alloc-heavy
        profile below) up to several thousand.
        """
        import random as random_mod

        alloc_heavy = BenchmarkProfile(
            name="alloc-heavy-test", memory_fraction=0.3, load_fraction=0.6,
            word_integer_fraction=0.4, pointer_fraction=0.3,
            fp_access_fraction=0.05, fp_compute_fraction=0.1,
            branch_fraction=0.15, mispredict_rate=0.05, calls_per_kilo=5.0,
            allocs_per_kilo=60.0, typical_alloc_bytes=96,
            working_set_objects=64, temporal_locality=0.7,
            spatial_locality=0.6)
        meta = random_mod.Random(20260726)
        cases = [(alloc_heavy, 11), (alloc_heavy, 12),
                 (profile_by_name("twolf"), 5), (profile_by_name("gcc"), 9)]
        for profile, seed in cases:
            reference = SyntheticWorkload(profile, seed=seed)
            skipper = SyntheticWorkload(profile, seed=seed)
            if force_python:
                skipper._ffcore = None
            emitted = []
            for _ in range(12):
                skip = meta.choice((1, 2, 3, 7, meta.randrange(1, 40),
                                    meta.randrange(50, 3000)))
                take = meta.randrange(1, 80)
                reference_window = reference.emit(skip + take)[skip:]
                skipper.fast_forward(skip)
                emitted.append((reference_window, skipper.emit(take)))
            for reference_window, skipped_window in emitted:
                assert [op_key(op) for op in skipped_window] == \
                    [op_key(op) for op in reference_window]
            assert state_fingerprint(skipper) == state_fingerprint(reference)

    def test_fast_forward_splits_allocation_events(self):
        """A 1-op fast-forward stream must split runtime-call sequences."""
        profile = dataclasses.replace(
            profile_by_name("perl"), name="alloc-every-op",
            allocs_per_kilo=300.0, working_set_objects=16)
        reference = SyntheticWorkload(profile, seed=2)
        skipper = SyntheticWorkload(profile, seed=2)
        reference_ops = reference.emit(400)
        got = []
        for index in range(400):
            if index % 2 == 0:
                skipper.fast_forward(1)
                got.append(None)
            else:
                got.append(skipper.emit(1)[0])
        for index, op in enumerate(got):
            if op is not None:
                assert op_key(op) == op_key(reference_ops[index])
        assert state_fingerprint(skipper) == state_fingerprint(reference)

    @pytest.mark.skipif(_ffcore.load() is None,
                        reason="native fast-forward kernel unavailable")
    def test_native_kernel_matches_pure_python(self):
        for name, seed, count in (("mcf-long", 7, 30_000),
                                  ("gcc-long", 2, 30_000),
                                  ("lbm", 4, 15_000)):
            native = SyntheticWorkload(profile_by_name(name), seed=seed)
            fallback = SyntheticWorkload(profile_by_name(name), seed=seed)
            assert native._ffcore is not None
            fallback._ffcore = None
            native.fast_forward(count)
            fallback.fast_forward(count)
            assert state_fingerprint(native) == state_fingerprint(fallback)

    def test_generate_refuses_to_drop_pending_ops(self):
        workload = SyntheticWorkload(profile_by_name("perl"), seed=1)
        while not workload._pending:
            workload.emit(1)
        with pytest.raises(ConfigurationError, match="continuous stream"):
            list(workload.generate(10))

    def test_fast_forward_throughput_beats_drained_generation(self):
        """The split's raison d'être: skip windows far cheaper than emission.

        Conservative 2x bound so the test is robust on any machine even on
        the pure-Python fallback; `repro bench` tracks the real ratio
        (>= 10x against the recorded pre-split baseline, ~45x with the
        native kernel on a development machine).
        """
        import time

        workload = SyntheticWorkload(profile_by_name("mcf-long"), seed=7)
        started = time.perf_counter()
        workload.emit(20_000)
        emit_wall = time.perf_counter() - started
        started = time.perf_counter()
        workload.fast_forward(20_000)
        skip_wall = time.perf_counter() - started
        assert skip_wall * 2 < emit_wall


class TestInstructionCache:
    def test_module_level_cache_is_gone(self):
        import repro.workloads.synthetic as synthetic_mod

        assert not hasattr(synthetic_mod, "_INSTRUCTION_CACHE")

    def test_cache_is_per_workload_and_bounded(self):
        from repro.workloads.synthetic import _INSTRUCTION_CACHE_LIMIT

        first = SyntheticWorkload(profile_by_name("gcc"), seed=1)
        second = SyntheticWorkload(profile_by_name("gcc"), seed=1)
        trace_first = first.trace(4_000)
        trace_second = second.trace(4_000)
        assert first._instruction_cache is not second._instruction_cache
        assert 0 < len(first._instruction_cache) <= _INSTRUCTION_CACHE_LIMIT
        # Interning is per workload; instructions still compare by value
        # across workloads (what the tokenizer and golden tests rely on).
        assert all(a.instruction == b.instruction
                   for a, b in zip(trace_first, trace_second))
        assert trace_first[0].instruction is not trace_second[0].instruction

    def test_cache_clears_at_limit_without_changing_traces(self):
        workload = SyntheticWorkload(profile_by_name("gcc"), seed=3)
        workload._instruction_cache.clear()
        # Shrink the effective limit by pre-filling junk keys.
        from repro.workloads import synthetic as synthetic_mod

        original = synthetic_mod._INSTRUCTION_CACHE_LIMIT
        synthetic_mod._INSTRUCTION_CACHE_LIMIT = 8
        try:
            trace = workload.trace(300)
        finally:
            synthetic_mod._INSTRUCTION_CACHE_LIMIT = original
        assert len(workload._instruction_cache) <= 8
        reference = SyntheticWorkload(profile_by_name("gcc"), seed=3).trace(300)
        assert [op_key(op) for op in trace] == [op_key(op) for op in reference]


class TestPaperScale:
    def test_paper_profiles_registered_but_not_in_figure_grids(self):
        names = paper_profile_names()
        assert "mcf-paper" in names
        for name in names:
            assert profile_by_name(name).name == name
            assert name not in benchmark_names()

    def test_paper_scaled_schedule_keeps_the_papers_proportions(self):
        schedule = SamplingConfig.paper_scaled()
        assert schedule.period == 10_000_000
        assert schedule.sampled_fraction == pytest.approx(0.02)
        assert schedule.warmup == schedule.sample
        custom = SamplingConfig.paper_scaled(1_000_000)
        assert custom.period == 1_000_000
        assert custom.sampled_fraction == pytest.approx(0.02)
        with pytest.raises(ConfigurationError):
            SamplingConfig.paper_scaled(10)

    def test_paper_scaled_fits_the_paper_horizon(self):
        from repro.sim.sampling import SamplingSchedule

        schedule = SamplingSchedule(SamplingConfig.paper_scaled())
        measured = schedule.measured_count(PAPER_HORIZON_INSTRUCTIONS)
        assert measured == PAPER_HORIZON_INSTRUCTIONS // 50  # 2%

    def test_spec_rejects_schedule_that_measures_nothing_at_paper_scale(self):
        with pytest.raises(ConfigurationError, match="paper-scale"):
            ExperimentSettings(benchmarks=("mcf-paper",),
                               instructions=PAPER_HORIZON_INSTRUCTIONS,
                               sampling=SamplingConfig.paper())
        with pytest.raises(ConfigurationError, match="paper-scale"):
            RunRequest("mcf-paper", "wd", WatchdogConfig.isa_assisted_uaf(),
                       instructions=PAPER_HORIZON_INSTRUCTIONS,
                       sampling=SamplingConfig.paper())

    def test_bundle_rejects_normalization_at_paper_scale(self):
        with pytest.raises(ConfigurationError, match="paper-scale|unsampled"):
            TraceBundle.generate(
                "mcf-paper", seed=7,
                instructions=MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS + 1,
                sampling=SamplingConfig.paper())

    def test_unsampled_paper_horizon_rejected_everywhere(self):
        # Forgetting --sampling entirely must not materialize 100M ops.
        with pytest.raises(ConfigurationError, match="sampling schedule"):
            TraceBundle.generate(
                "mcf-paper", seed=7,
                instructions=MAX_NORMALIZED_UNSAMPLED_INSTRUCTIONS + 1)
        with pytest.raises(ConfigurationError, match="sampling schedule"):
            ExperimentSettings(benchmarks=("mcf-paper",),
                               instructions=PAPER_HORIZON_INSTRUCTIONS)
        with pytest.raises(ConfigurationError, match="sampling schedule"):
            RunRequest("mcf-paper", "wd", WatchdogConfig.isa_assisted_uaf(),
                       instructions=PAPER_HORIZON_INSTRUCTIONS)

    def test_paper_settings_classmethod(self):
        settings = ExperimentSettings.paper()
        assert settings.instructions == PAPER_HORIZON_INSTRUCTIONS
        assert set(settings.benchmarks) == set(paper_profile_names())
        assert settings.sampling.sampled_fraction == pytest.approx(0.02)

    def test_small_horizons_still_normalize_quietly(self):
        # Below the materialization bound the old normalize-to-unsampled
        # behaviour is unchanged.
        plain = TraceBundle.generate("gzip", seed=7, instructions=3_000)
        short = TraceBundle.generate("gzip", seed=7, instructions=3_000,
                                     sampling=SamplingConfig.quick())
        assert short == plain


class TestEngineSampleFanOut:
    ISA = WatchdogConfig.isa_assisted_uaf()
    SMALL = SamplingConfig(fast_forward=2000, warmup=500, sample=1500)

    def spec(self):
        settings = ExperimentSettings(benchmarks=("mcf",),
                                      instructions=18_000,
                                      sampling=self.SMALL)
        return ExperimentSpec.build(
            "fanout", {"wd": self.ISA}, settings=settings)

    def test_single_job_fans_samples_across_pool_bit_identically(self):
        spec = self.spec()
        serial = SweepEngine(workers=1)
        expected = serial.run_spec(spec)
        parallel = SweepEngine(workers=2)
        try:
            got = parallel.run_spec(spec)
        finally:
            parallel.close()
        assert got == expected
        assert parallel.simulated_cells == len(spec)

    def test_fan_out_only_engages_for_singleton_sampled_jobs(self):
        # Two benchmarks -> two jobs -> ordinary per-job parallelism; the
        # results must still match serial execution exactly.
        settings = ExperimentSettings(benchmarks=("gzip", "mcf"),
                                      instructions=12_000,
                                      sampling=self.SMALL)
        spec = ExperimentSpec.build("pair", {"wd": self.ISA},
                                    settings=settings)
        serial = SweepEngine(workers=1)
        expected = serial.run_spec(spec)
        parallel = SweepEngine(workers=2)
        try:
            got = parallel.run_spec(spec)
        finally:
            parallel.close()
        assert got == expected
