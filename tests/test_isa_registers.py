"""Tests for the architectural register model."""

import pytest

from repro.errors import ProgramError
from repro.isa.registers import (
    ArchReg,
    FP_REGS,
    INT_REGS,
    RegClass,
    RegisterFile,
    STACK_POINTER,
    WORD_MASK,
    fp_reg,
    int_reg,
    parse_reg,
)


class TestArchReg:
    def test_int_register_str(self):
        assert str(int_reg(3)) == "r3"

    def test_fp_register_str(self):
        assert str(fp_reg(5)) == "f5"

    def test_register_classes(self):
        assert int_reg(0).is_int and not int_reg(0).is_fp
        assert fp_reg(0).is_fp and not fp_reg(0).is_int

    def test_register_counts(self):
        assert len(INT_REGS) == 16
        assert len(FP_REGS) == 16

    def test_stack_pointer_is_integer_register(self):
        assert STACK_POINTER.is_int
        assert STACK_POINTER in INT_REGS

    def test_out_of_range_raises(self):
        with pytest.raises(ProgramError):
            int_reg(16)
        with pytest.raises(ProgramError):
            fp_reg(-1)

    def test_registers_are_hashable_and_comparable(self):
        assert int_reg(2) == ArchReg(RegClass.INT, 2)
        assert len({int_reg(1), int_reg(1), int_reg(2)}) == 2


class TestParseReg:
    def test_parse_int(self):
        assert parse_reg("r7") == int_reg(7)

    def test_parse_fp(self):
        assert parse_reg("f2") == fp_reg(2)

    def test_parse_strips_whitespace_and_case(self):
        assert parse_reg(" R4 ") == int_reg(4)

    def test_parse_invalid(self):
        with pytest.raises(ProgramError):
            parse_reg("x9")
        with pytest.raises(ProgramError):
            parse_reg("r")


class TestRegisterFile:
    def test_unwritten_register_reads_zero(self):
        assert RegisterFile().read(int_reg(3)) == 0

    def test_write_read_roundtrip(self):
        regs = RegisterFile()
        regs.write(int_reg(1), 0x1234)
        assert regs.read(int_reg(1)) == 0x1234

    def test_values_masked_to_64_bits(self):
        regs = RegisterFile()
        regs.write(int_reg(1), (1 << 70) + 5)
        assert regs.read(int_reg(1)) == ((1 << 70) + 5) & WORD_MASK

    def test_indexing_syntax(self):
        regs = RegisterFile()
        regs[int_reg(2)] = 99
        assert regs[int_reg(2)] == 99

    def test_copy_is_independent(self):
        regs = RegisterFile()
        regs.write(int_reg(1), 1)
        snapshot = regs.copy()
        regs.write(int_reg(1), 2)
        assert snapshot.read(int_reg(1)) == 1
