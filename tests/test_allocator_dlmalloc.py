"""Tests for the DL-malloc-style heap allocator."""

import pytest

from repro.allocator.dlmalloc import ALIGNMENT, DlMallocAllocator
from repro.errors import AllocatorError, OutOfMemoryError
from repro.memory.address_space import AddressSpace, Segment


@pytest.fixture
def allocator(memory):
    return DlMallocAllocator(memory)


class TestBasicAllocation:
    def test_malloc_returns_heap_address(self, allocator, memory):
        ptr = allocator.malloc(64)
        assert memory.layout.heap.contains(ptr)

    def test_malloc_returns_aligned_addresses(self, allocator):
        for size in (1, 7, 24, 100):
            assert allocator.malloc(size) % ALIGNMENT == 0

    def test_distinct_live_allocations_do_not_overlap(self, allocator):
        a = allocator.malloc(64)
        b = allocator.malloc(64)
        assert abs(a - b) >= 64

    def test_zero_or_negative_size_rejected(self, allocator):
        with pytest.raises(AllocatorError):
            allocator.malloc(0)
        with pytest.raises(AllocatorError):
            allocator.malloc(-8)

    def test_chunk_size_at_least_request(self, allocator):
        ptr = allocator.malloc(100)
        assert allocator.chunk_size(ptr) >= 100

    def test_is_allocated_tracking(self, allocator):
        ptr = allocator.malloc(32)
        assert allocator.is_allocated(ptr)
        allocator.free(ptr)
        assert not allocator.is_allocated(ptr)


class TestFreeAndReuse:
    def test_free_returns_chunk_size(self, allocator):
        ptr = allocator.malloc(48)
        assert allocator.free(ptr) >= 48

    def test_freed_memory_is_reused(self, allocator):
        """The property location-based checkers stumble over (§2.1)."""
        ptr = allocator.malloc(64)
        allocator.free(ptr)
        again = allocator.malloc(64)
        assert again == ptr
        assert allocator.stats.reuses == 1

    def test_double_free_rejected(self, allocator):
        ptr = allocator.malloc(64)
        allocator.free(ptr)
        with pytest.raises(AllocatorError):
            allocator.free(ptr)

    def test_free_of_non_chunk_rejected(self, allocator):
        with pytest.raises(AllocatorError):
            allocator.free(0x123456)

    def test_split_of_large_free_chunk(self, allocator):
        big = allocator.malloc(1024)
        allocator.free(big)
        small = allocator.malloc(64)
        assert small == big
        assert allocator.stats.splits == 1

    def test_coalescing_adjacent_free_chunks(self, allocator):
        a = allocator.malloc(64)
        b = allocator.malloc(64)
        allocator.malloc(64)          # guard so the wilderness is not adjacent
        allocator.free(a)
        allocator.free(b)
        assert allocator.stats.coalesces >= 1
        merged = allocator.malloc(128)
        assert merged == a

    def test_best_fit_prefers_smaller_chunk(self, allocator):
        small = allocator.malloc(64)
        large = allocator.malloc(512)
        allocator.malloc(16)          # guard
        allocator.free(small)
        allocator.free(large)
        assert allocator.malloc(48) == small


class TestStatsAndLimits:
    def test_live_bytes_tracking(self, allocator):
        a = allocator.malloc(64)
        allocator.malloc(64)
        assert allocator.stats.live_bytes >= 128
        allocator.free(a)
        assert allocator.stats.live_bytes >= 64
        assert allocator.stats.peak_live_bytes >= 128

    def test_heap_exhaustion_raises(self, memory):
        tiny_heap = Segment("heap", memory.layout.heap.base,
                            memory.layout.heap.base + 256)
        allocator = DlMallocAllocator(memory, heap=tiny_heap)
        with pytest.raises(OutOfMemoryError):
            for _ in range(10):
                allocator.malloc(64)

    def test_owns_tracks_used_extent(self, allocator, memory):
        ptr = allocator.malloc(64)
        assert allocator.owns(ptr)
        assert not allocator.owns(memory.layout.heap.limit - 8)
