"""Lifecycle and golden-equality tests for the native timing core.

The C kernel (:mod:`repro.native._timecore`) is strictly optional: these
tests pin down the loader lifecycle — the ``REPRO_TIMECORE=0`` kill switch,
the refusal to hand out a kernel whose self-test fails, and on-disk artifact
reuse — and the golden contract that kernel-on and kernel-off produce
bit-identical ``TimingResult``/``HierarchyStats`` across every benchmark
profile and Table 2 configuration, sampled and unsampled.
"""

import pytest

from repro.native import _timecore, build
from repro.sim.results import CellResult
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import Simulator
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import benchmark_names

from tests.test_compiled_pipeline import CONFIGURATIONS, INSTRUCTIONS, SEED

KERNEL_AVAILABLE = _timecore.load() is not None

needs_kernel = pytest.mark.skipif(not KERNEL_AVAILABLE,
                                  reason="native timing core unavailable")


@pytest.fixture
def reload_kernel():
    """Drop the process-wide load decision around a test, restoring after.

    ``build._LOADED`` memoizes one decision per kernel per process; tests
    that change the environment or break the self-test must clear it to
    force a fresh load, and clear it again afterwards so later tests get
    the normal kernel back.
    """
    build._LOADED.pop("timecore", None)
    yield
    build._LOADED.pop("timecore", None)


class TestLoaderLifecycle:
    def test_kill_switch_forces_python_fallback(self, monkeypatch,
                                                reload_kernel):
        monkeypatch.setenv("REPRO_TIMECORE", "0")
        assert _timecore.load() is None
        # The pipeline still runs (pure Python), end to end.
        bundle = TraceBundle.generate("gzip", seed=3, instructions=400)
        config = CONFIGURATIONS["isa-assisted"]
        outcome = Simulator(pipeline="compiled").run_bundle(bundle, config)
        assert outcome.timing.total_uops > 0

    def test_failed_self_test_refuses_kernel(self, monkeypatch,
                                             reload_kernel):
        monkeypatch.delenv("REPRO_TIMECORE", raising=False)
        monkeypatch.setattr(_timecore, "_self_test", lambda lib: False)
        assert _timecore.load() is None

    def test_crashing_self_test_refuses_kernel(self, monkeypatch,
                                               reload_kernel):
        def boom(lib):
            raise RuntimeError("corrupted artifact")

        monkeypatch.delenv("REPRO_TIMECORE", raising=False)
        monkeypatch.setattr(_timecore, "_self_test", boom)
        assert _timecore.load() is None

    @needs_kernel
    def test_cached_artifact_is_reused(self, tmp_path, monkeypatch,
                                       reload_kernel):
        monkeypatch.delenv("REPRO_TIMECORE", raising=False)
        monkeypatch.setenv("REPRO_TIMECORE_DIR", str(tmp_path))
        assert _timecore.load() is not None
        artifacts = list(tmp_path.glob("timecore-*.so"))
        assert len(artifacts) == 1
        # A second load (fresh decision, same directory) must bind the
        # existing artifact without invoking the compiler.
        build._LOADED.pop("timecore", None)

        def no_compile(source, so_path):
            raise AssertionError("compile_source called despite cached .so")

        monkeypatch.setattr(build, "compile_source", no_compile)
        assert _timecore.load() is not None

    @needs_kernel
    def test_load_decision_is_memoized(self, reload_kernel):
        first = _timecore.load()
        assert _timecore.load() is first


class TestSimulatorKnob:
    @needs_kernel
    def test_timecore_false_forces_python_loops(self):
        simulator = Simulator(pipeline="compiled", timecore=False)
        bundle = TraceBundle.generate("mcf", seed=5, instructions=400)
        config = CONFIGURATIONS["conservative"]
        forced_off = simulator.run_bundle(bundle, config)
        forced_on = Simulator(pipeline="compiled",
                              timecore=True).run_bundle(bundle, config)
        assert forced_off.timing == forced_on.timing

    def test_knob_reaches_the_core(self):
        from repro.pipeline.core import OutOfOrderCore

        core = OutOfOrderCore(timecore=False)
        assert core.hierarchy.native_override is False
        core = OutOfOrderCore(timecore=True)
        assert core.hierarchy.native_override is True


@needs_kernel
class TestGoldenEquality:
    """Kernel on vs off: every profile x every Table 2 configuration."""

    @pytest.mark.parametrize("profile_name", benchmark_names())
    def test_profile_matches_python_under_all_configurations(
            self, profile_name):
        bundle = TraceBundle.generate(profile_name, seed=SEED,
                                      instructions=INSTRUCTIONS)
        kernel_sim = Simulator(pipeline="compiled", timecore=True)
        python_sim = Simulator(pipeline="compiled", timecore=False)
        for label, config in CONFIGURATIONS.items():
            kernel = kernel_sim.run_bundle(bundle, config)
            python = python_sim.run_bundle(bundle, config)
            assert kernel.timing == python.timing, \
                f"{profile_name}/{label}: timing diverged"
            assert CellResult.from_outcome(kernel, label=label) == \
                CellResult.from_outcome(python, label=label), \
                f"{profile_name}/{label}: statistics diverged"

    @pytest.mark.parametrize("profile_name", ("mcf-long", "gcc-long"))
    def test_sampled_long_profile_matches_python(self, profile_name):
        sampling = SamplingConfig(fast_forward=313, warmup=328, sample=356)
        bundle = TraceBundle.generate(profile_name, seed=SEED,
                                      instructions=4_000, sampling=sampling)
        assert bundle.samples, "schedule must genuinely sample at this scale"
        for label in ("baseline", "isa-assisted", "ideal-shadow"):
            config = CONFIGURATIONS[label]
            kernel = Simulator(pipeline="compiled",
                               timecore=True).run_bundle(bundle, config)
            python = Simulator(pipeline="compiled",
                               timecore=False).run_bundle(bundle, config)
            assert kernel.timing == python.timing, \
                f"{profile_name}/{label}: sampled timing diverged"
            assert CellResult.from_outcome(kernel, label=label) == \
                CellResult.from_outcome(python, label=label), \
                f"{profile_name}/{label}: sampled statistics diverged"

    def test_hierarchy_batch_state_and_stats_match(self):
        """Direct batch-level check including full LRU state and stats."""
        import random

        from repro.pipeline.core import OutOfOrderCore

        rng = random.Random(99)
        addrs, specs, positions = [], [], []
        for _ in range(3_000):
            addrs.append(rng.randrange(1 << 22))
            specs.append(rng.randrange(3) | rng.randrange(2) << 2 | 8)
            positions.append(len(positions))
        config = CONFIGURATIONS["isa-assisted"]
        kernel_h = OutOfOrderCore(watchdog=config, timecore=True).hierarchy
        python_h = OutOfOrderCore(watchdog=config, timecore=False).hierarchy
        for hierarchy in (kernel_h, python_h):
            hierarchy.warm_batch(addrs[:500], 0)
            lats = [0] * len(addrs)
            hierarchy.access_batch(addrs, specs, positions, lats)
        assert kernel_h.stats == python_h.stats
        assert kernel_h.stats.accesses == python_h.stats.accesses
        assert kernel_h.stats.total_latency == python_h.stats.total_latency
        assert _timecore._same_hierarchy(kernel_h, python_h)
